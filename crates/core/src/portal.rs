//! The Portal: SkyQuery's mediator (paper §5.1, §5.3).
//!
//! The Portal provides two services. **Registration** lets archives join
//! the federation: the Portal calls the new node's Meta-data and
//! Information services and catalogs what they return. **SkyQuery**
//! accepts a cross-match query, decomposes it, probes the mandatory
//! archives with count-star performance queries, builds the federated
//! execution plan (drop-outs first, then mandatory archives in decreasing
//! count order), fires the daisy chain, applies the final projection, and
//! relays the result to the client.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use skyquery_net::{
    Endpoint, HttpRequest, HttpResponse, ServiceRecord, ServiceRegistry, SimNetwork, Url,
};
use skyquery_soap::{RpcCall, RpcResponse, SoapValue};
use skyquery_sql::{decompose, parse_query, DecomposedQuery, Expr};
use skyquery_storage::{DataType, Value};

use crate::error::{FederationError, Result};
use crate::meta::{catalog_from_element, ArchiveInfo, RegisteredNode, Registration, ZoneExtent};
use crate::plan::{
    ExecutionPlan, PlanShard, PlanStep, DEFAULT_LEASE_TTL_S, DEFAULT_MAX_MESSAGE_BYTES,
};
use crate::region::Region;
use crate::result::{ResultColumn, ResultSet};
use crate::result_cache::{CacheCounters, CacheEntry, CachedStep, ResultCache, StepVersion};
use crate::retry::RetryPolicy;
use crate::shard;
use crate::skynode::invoke_cross_match;
use crate::trace::{ExecutionTrace, StatsChain};
use crate::transfer::{
    invoke_delta_step, invoke_scatter_step, open_checkpoint, release_checkpoint, renew_lease,
    send_rpc_with, IncomingPartial,
};
use crate::xmatch::MatchKernel;
use crate::xmatch::{PartialSet, PartialTuple, StepStats, TupleBindings};
use skyquery_htm::SkyPoint;

/// How the Portal orders the mandatory archives in the plan list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingStrategy {
    /// The paper's strategy: decreasing count-star estimates, so the
    /// smallest archive seeds the chain and partial results shrink early.
    CountStarDescending,
    /// Adversarial baseline: increasing count estimates.
    CountStarAscending,
    /// Ignore statistics; use the query's FROM order.
    DeclarationOrder,
    /// Random order from a seeded generator (experiment baseline).
    Random(u64),
}

/// How the Portal drives the federated cross-match chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChainMode {
    /// The paper's daisy chain: one recursive Cross match call that
    /// unwinds from the seed back to the Portal. A mid-chain failure
    /// aborts the whole submission.
    #[default]
    Recursive,
    /// Portal-driven checkpointed execution: one `ExecuteStep` call per
    /// archive, each committing its partial set as a leased checkpoint
    /// on the executing node. A mid-chain failure re-plans the remaining
    /// steps around the failed node and resumes from the last good
    /// checkpoint instead of re-running the committed prefix.
    Checkpointed,
}

/// Observation state of a host the Portal has marked unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostState {
    /// The host exhausted a retry budget and has not answered since.
    Unhealthy,
    /// Half-open: a cheap Information-service probe succeeded, so the
    /// host is trusted for real traffic again — but its strike history
    /// is retained until a real call clears it entirely.
    Probation,
}

/// Health book-keeping the Portal maintains for one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostHealth {
    /// How many times the host exhausted a retry budget.
    pub strikes: u64,
    /// The current observation state.
    pub state: HostState,
}

/// Federation-wide execution knobs.
#[derive(Debug, Clone, Copy)]
pub struct FederationConfig {
    /// SOAP parser limit every participant enforces.
    pub max_message_bytes: usize,
    /// Whether oversized partial results are chunked (§6 workaround).
    pub chunking: bool,
    /// Plan-ordering strategy.
    pub ordering: OrderingStrategy,
    /// Issue performance queries concurrently (the paper sends them as
    /// asynchronous SOAP messages).
    pub parallel_performance_queries: bool,
    /// Worker threads each SkyNode may use for a cross-match step. `1`
    /// preserves the sequential engine; larger values enable the
    /// zone-partitioned parallel engine where one is installed.
    pub xmatch_workers: usize,
    /// Declination height (degrees) of each zone in the parallel engine.
    pub zone_height_deg: f64,
    /// Whether oversized partial results are split on zone boundaries so
    /// downstream nodes can pipeline zone processing with the transfer.
    pub zone_chunking: bool,
    /// Candidate-probe kernel the nodes use for match/drop-out steps
    /// (columnar zone buckets by default; HTM as the legacy fallback).
    pub kernel: MatchKernel,
    /// Retry policy for every federation RPC the Portal issues and, via
    /// the plan, every onward call along the daisy chain.
    pub retry: RetryPolicy,
    /// How the chain is driven: the paper's recursive daisy chain, or
    /// portal-driven checkpointed execution with failover re-planning.
    pub chain_mode: ChainMode,
    /// Lease TTL (simulated seconds) granted on every transfer session,
    /// exchange transaction, and checkpoint created for this
    /// federation's queries; node janitors reclaim anything older.
    pub lease_ttl_s: f64,
    /// Maximum number of entries in the Portal's cross-match result
    /// cache ([`crate::result_cache`]). `0` (the default) disables
    /// caching entirely — every submission runs the full chain.
    pub result_cache_capacity: usize,
    /// Lease TTL (simulated seconds) on each result-cache entry. An
    /// expired entry is evicted at the next lookup, forcing a clean
    /// cold re-run.
    pub result_cache_ttl_s: f64,
    /// Hedge delay in simulated seconds for replica-aware scatter:
    /// when a picked replica's probe runs longer than this, the Portal
    /// re-issues the probe to a sibling replica and the first response
    /// wins (duplicates are reconciled by the deterministic gather).
    /// `0.0` (the default) disables hedging; failover on unhealthy
    /// replicas is always on.
    pub hedge_delay_s: f64,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            max_message_bytes: DEFAULT_MAX_MESSAGE_BYTES,
            chunking: true,
            ordering: OrderingStrategy::CountStarDescending,
            parallel_performance_queries: true,
            xmatch_workers: 1,
            zone_height_deg: crate::plan::DEFAULT_ZONE_HEIGHT_DEG,
            zone_chunking: true,
            kernel: MatchKernel::default(),
            retry: RetryPolicy::default(),
            chain_mode: ChainMode::default(),
            lease_ttl_s: DEFAULT_LEASE_TTL_S,
            result_cache_capacity: 0,
            result_cache_ttl_s: DEFAULT_LEASE_TTL_S,
            hedge_delay_s: 0.0,
        }
    }
}

/// Partial-result honesty: what a degraded execution dropped. Returned
/// alongside every executed plan and stamped onto the client-facing
/// result header, so a caller can always tell a complete answer from a
/// partial one without scraping trace events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Degradation {
    /// Whether any archive (or shard of one) was dropped from the
    /// answer.
    pub degraded: bool,
    /// What was dropped: the archive name for a wholly-skipped drop-out
    /// step, `archive@host` for individual shards lost mid-scatter.
    pub dropped: Vec<String>,
}

impl Degradation {
    /// Folds another degradation record into this one.
    pub fn absorb(&mut self, other: Degradation) {
        self.degraded |= other.degraded;
        self.dropped.extend(other.dropped);
    }
}

/// Outcome of serving one extent from its replica group during a
/// scatter: the winning reply (or final error) plus the failover/hedge
/// book-keeping the Portal folds into the step's statistics.
#[derive(Default)]
struct ExtentOutcome {
    result: Option<Result<(PartialSet, StatsChain)>>,
    failovers: usize,
    hedges: usize,
    hedge_wins: usize,
}

/// The mediator.
pub struct Portal {
    host: String,
    net: SimNetwork,
    config: Mutex<FederationConfig>,
    /// Shard groups keyed by upper-cased logical archive name. Each
    /// group holds the archive's physical shards sorted by the zone
    /// range they own (then by host); an unsharded archive is a group of
    /// one full-sky node.
    nodes: Mutex<HashMap<String, Vec<RegisteredNode>>>,
    /// UDDI-style repository of the federation's services (§3.1:
    /// "services can register themselves and be discovered").
    registry: ServiceRegistry,
    /// Hosts that exhausted a retry budget, with strike counts and a
    /// half-open probation state. A successful real contact clears the
    /// host — unhealthiness is an observation, not a ban; the autonomous
    /// archive may come back any time.
    health: Mutex<HashMap<String, HostHealth>>,
    /// Cross-match result cache: committed per-step partial sets keyed
    /// by plan signature and per-table version vector
    /// ([`crate::result_cache`]). Inert until
    /// [`FederationConfig::result_cache_capacity`] is raised above 0.
    cache: Mutex<ResultCache>,
}

/// How often a failing mandatory step may be deferred (moved to the
/// earliest mandatory slot) before the Portal gives up on the query.
const MAX_STEP_DEFERRALS: u64 = 2;

impl Portal {
    /// Creates a Portal and binds it to `host` on the network.
    pub fn start(
        net: &SimNetwork,
        host: impl Into<String>,
        config: FederationConfig,
    ) -> Arc<Portal> {
        let host = host.into();
        let registry = ServiceRegistry::new();
        registry.register(ServiceRecord {
            provider: "SkyQuery Portal".into(),
            category: "Portal".into(),
            url: Url::new(host.clone(), "/soap"),
            description: "Registration and SkyQuery services".into(),
        });
        let portal = Arc::new(Portal {
            host: host.clone(),
            net: net.clone(),
            config: Mutex::new(config),
            nodes: Mutex::new(HashMap::new()),
            registry,
            health: Mutex::new(HashMap::new()),
            cache: Mutex::new(ResultCache::new()),
        });
        net.bind(host, portal.clone());
        portal
    }

    /// UDDI-style discovery: all registered services in a category
    /// ("Portal", "SkyNode").
    pub fn discover(&self, category: &str) -> Vec<ServiceRecord> {
        self.registry.discover(category)
    }

    /// The Portal's network host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The Portal's SOAP endpoint URL.
    pub fn url(&self) -> Url {
        Url::new(self.host.clone(), "/soap")
    }

    /// Replaces the execution configuration (experiments switch ordering
    /// strategies and message limits between runs).
    pub fn set_config(&self, config: FederationConfig) {
        *self.config.lock() = config;
    }

    /// The current execution configuration.
    pub fn config(&self) -> FederationConfig {
        *self.config.lock()
    }

    /// Hosts currently considered unhealthy (they exhausted a retry
    /// budget more recently than they answered or passed a probe),
    /// sorted. Hosts in probation are excluded.
    pub fn unhealthy_hosts(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .health
            .lock()
            .iter()
            .filter(|(_, h)| h.state == HostState::Unhealthy)
            .map(|(host, _)| host.clone())
            .collect();
        v.sort();
        v
    }

    /// The full health book, sorted by host — for the REPL's `\health`
    /// view. Healthy hosts (no strikes on record) do not appear.
    pub fn health_report(&self) -> Vec<(String, HostHealth)> {
        let mut v: Vec<(String, HostHealth)> = self
            .health
            .lock()
            .iter()
            .map(|(host, h)| (host.clone(), *h))
            .collect();
        v.sort_by(|(a, _), (b, _)| a.cmp(b));
        v
    }

    /// Records one failure in the health book-keeping: exhausting a
    /// retry budget adds a strike and (re)marks the host unhealthy.
    fn note_failure(&self, e: &FederationError) {
        if let FederationError::NodeUnhealthy { host, .. } = e {
            let mut health = self.health.lock();
            let h = health.entry(host.clone()).or_insert(HostHealth {
                strikes: 0,
                state: HostState::Unhealthy,
            });
            h.strikes += 1;
            h.state = HostState::Unhealthy;
        }
    }

    /// Folds one RPC outcome into the health book-keeping.
    fn note_health<T>(&self, result: &Result<T>) {
        if let Err(e) = result {
            self.note_failure(e);
        }
    }

    /// Records a successful contact with `host`, clearing any unhealthy
    /// mark (and its strike history).
    fn note_healthy(&self, host: &str) {
        self.health.lock().remove(host);
    }

    /// Whether `host` is currently marked unhealthy (probation counts as
    /// healthy: real traffic may flow again). Replica selection prefers
    /// the first healthy candidate of a group.
    fn host_is_unhealthy(&self, host: &str) -> bool {
        self.health
            .lock()
            .get(host)
            .is_some_and(|h| h.state == HostState::Unhealthy)
    }

    /// Half-open recovery probe: one cheap Information-service call with
    /// no retries. Success moves an unhealthy host to probation (real
    /// traffic may flow again); failure adds a strike. Returns whether
    /// the probe succeeded. Probing an unknown host returns `false`.
    pub fn probe_host(&self, host: &str) -> bool {
        let url = self
            .nodes
            .lock()
            .values()
            .flatten()
            .find(|n| n.url.host == host)
            .map(|n| n.url.clone());
        let Some(url) = url else { return false };
        let ok = send_rpc_with(
            &self.net,
            &self.host,
            &url,
            &RpcCall::new("Information"),
            RetryPolicy::none(),
        )
        .is_ok();
        let mut health = self.health.lock();
        if ok {
            if let Some(h) = health.get_mut(host) {
                h.state = HostState::Probation;
            }
        } else {
            let h = health.entry(host.to_string()).or_insert(HostHealth {
                strikes: 0,
                state: HostState::Unhealthy,
            });
            h.strikes += 1;
            h.state = HostState::Unhealthy;
        }
        ok
    }

    /// Probes every currently unhealthy host once; returns each host with
    /// its probe outcome.
    pub fn probe_unhealthy_hosts(&self) -> Vec<(String, bool)> {
        self.unhealthy_hosts()
            .into_iter()
            .map(|h| {
                let ok = self.probe_host(&h);
                (h, ok)
            })
            .collect()
    }

    /// Sends one RPC under the configured retry policy, updating the
    /// health book-keeping from the outcome.
    fn call(&self, url: &Url, call: &RpcCall) -> Result<RpcResponse> {
        let result = send_rpc_with(&self.net, &self.host, url, call, self.config().retry);
        self.note_health(&result);
        if result.is_ok() {
            self.note_healthy(&url.host);
        }
        result
    }

    /// Registered archive names, sorted.
    pub fn archives(&self) -> Vec<String> {
        let mut v: Vec<String> = self.nodes.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// The catalog entry for a logical archive: its primary shard (the
    /// one owning the lowest declination range). Metadata — schema, σ,
    /// primary table — is identical across a shard group, so this is the
    /// right entry point for planning lookups; use
    /// [`Portal::shards_of`] for the physical membership.
    pub fn node(&self, archive: &str) -> Option<RegisteredNode> {
        self.nodes
            .lock()
            .get(&archive.to_ascii_uppercase())
            .and_then(|group| group.first().cloned())
    }

    /// All physical shards of a logical archive, in a **deterministic**
    /// order: ascending zone range, then host name within a range — so
    /// replicas of the same extent are adjacent, with the primary
    /// (lowest host) first. Replica selection and gather order both key
    /// off this ordering, so it is re-established here explicitly
    /// rather than trusted to registration-time bookkeeping. Empty if
    /// the archive is not registered.
    pub fn shards_of(&self, archive: &str) -> Vec<RegisteredNode> {
        let mut group = self
            .nodes
            .lock()
            .get(&archive.to_ascii_uppercase())
            .cloned()
            .unwrap_or_default();
        group.sort_by(|a, b| {
            a.extent()
                .dec_lo_deg
                .total_cmp(&b.extent().dec_lo_deg)
                .then_with(|| a.url.host.cmp(&b.url.host))
        });
        group
    }

    /// The UDDI provider name one shard registers under: the archive
    /// name for the group's primary shard, `name@host` for the rest.
    fn provider_name(index: usize, node: &RegisteredNode) -> String {
        if index == 0 {
            node.info.name.clone()
        } else {
            format!("{}@{}", node.info.name, node.url.host)
        }
    }

    /// Rewrites the registry records of one shard group from scratch:
    /// membership and ordering may both have changed, so stale provider
    /// names are dropped before the group re-registers.
    fn sync_registry(&self, name: &str, group: &[RegisteredNode]) {
        self.registry.unregister(name);
        for n in group {
            self.registry
                .unregister(&format!("{}@{}", n.info.name, n.url.host));
        }
        for (i, n) in group.iter().enumerate() {
            let extent = n.extent();
            let range = if extent.is_full_sky() {
                String::new()
            } else {
                format!(", dec [{}, {})", extent.dec_lo_deg, extent.dec_hi_deg)
            };
            self.registry.register(ServiceRecord {
                provider: Self::provider_name(i, n),
                category: "SkyNode".into(),
                url: n.url.clone(),
                description: format!(
                    "σ={}\" archive, primary table {}{range}",
                    n.info.sigma_arcsec, n.info.primary_table
                ),
            });
        }
    }

    /// Registers the SkyNode at `url`: calls its Meta-data and Information
    /// services and catalogs the results (§5.1 registration flow). A node
    /// publishing a [`crate::meta::ZoneExtent`] joins its archive's shard
    /// group as the owner of that zone range; re-registering from the
    /// same host replaces the previous entry. Returns a [`Registration`]
    /// summary of what the Portal now knows about the archive.
    pub fn register_node(&self, url: &Url) -> Result<Registration> {
        let info_resp = self.call(url, &RpcCall::new("Information"))?;
        let info = ArchiveInfo::from_element(
            info_resp
                .require("info")?
                .as_xml()
                .ok_or_else(|| FederationError::protocol("info must be xml"))?,
        )?;
        let meta_resp = self.call(url, &RpcCall::new("Metadata"))?;
        let catalog = catalog_from_element(
            meta_resp
                .require("catalog")?
                .as_xml()
                .ok_or_else(|| FederationError::protocol("catalog must be xml"))?,
        )?;
        let table_count = catalog.tables.len();
        let node = RegisteredNode {
            info: info.clone(),
            url: url.clone(),
            catalog,
        };
        let group = {
            let mut nodes = self.nodes.lock();
            let group = nodes.entry(info.name.to_ascii_uppercase()).or_default();
            group.retain(|n| n.url.host != url.host);
            group.push(node);
            group.sort_by(|a, b| {
                a.extent()
                    .dec_lo_deg
                    .total_cmp(&b.extent().dec_lo_deg)
                    .then_with(|| a.url.host.cmp(&b.url.host))
            });
            group.clone()
        };
        self.sync_registry(&info.name, &group);
        let extent = info.owned_extent();
        // The registering node's replica group: every group member
        // serving exactly the same zone range, itself included.
        let replica_count = group
            .iter()
            .filter(|n| {
                let e = n.extent();
                e.dec_lo_deg == extent.dec_lo_deg && e.dec_hi_deg == extent.dec_hi_deg
            })
            .count();
        Ok(Registration {
            archive: info.name.clone(),
            extent,
            shard_count: group.len(),
            replica_count,
            table_count,
        })
    }

    /// Removes a logical archive — every shard of it — from the
    /// federation.
    pub fn unregister(&self, archive: &str) -> bool {
        let removed = self.nodes.lock().remove(&archive.to_ascii_uppercase());
        if let Some(group) = &removed {
            for (i, n) in group.iter().enumerate() {
                self.registry.unregister(&Self::provider_name(i, n));
            }
        }
        removed.is_some()
    }

    /// EXPLAIN: decomposes and plans the query — running the performance
    /// queries, exactly as a real submission would — but stops before
    /// firing the cross-match chain. Returns a human-readable rendering
    /// of the federated execution plan.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let query = parse_query(sql).map_err(FederationError::Sql)?;
        let dq = decompose(query).map_err(FederationError::Sql)?;
        let mut trace = ExecutionTrace::new();
        let counts = self.run_performance_queries(&dq, &mut trace)?;
        let plan = self.build_plan(&dq, &counts)?;

        let mut out = String::new();
        out.push_str(&format!(
            "Federated cross-match plan (threshold {}\u{3c3})\n",
            plan.threshold
        ));
        match &plan.region {
            Some(r) => out.push_str(&format!("  region: {}\n", r.to_spec())),
            None => out.push_str("  region: whole sky\n"),
        }
        out.push_str("  performance queries:\n");
        for pq in &dq.performance_queries {
            let n = counts.get(&pq.alias).copied().unwrap_or(0);
            out.push_str(&format!("    {}  -> {n}\n", pq.to_sql()));
        }
        out.push_str("  chain (list order; execution starts at the last step):\n");
        for (i, step) in plan.steps.iter().enumerate() {
            out.push_str(&format!(
                "    [{i}] {}{} @ {}  table {}  sigma={}\"  count={}\n",
                if step.dropout { "!" } else { "" },
                step.alias,
                step.url,
                step.table,
                step.sigma_arcsec,
                step.count_estimate
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "-".into()),
            ));
            if let Some(p) = &step.local_sql {
                out.push_str(&format!("         local:    {p}\n"));
            }
            if !step.carried.is_empty() {
                out.push_str(&format!("         carries:  {}\n", step.carried.join(", ")));
            }
            for r in &step.residual_sql {
                out.push_str(&format!("         residual: {r}\n"));
            }
        }
        out.push_str(&format!(
            "  select: {}\n",
            plan.select
                .iter()
                .map(|(e, a)| match a {
                    Some(a) => format!("{e} AS {a}"),
                    None => e.clone(),
                })
                .collect::<Vec<_>>()
                .join(", ")
        ));
        if !plan.order_by.is_empty() {
            out.push_str(&format!(
                "  order by: {}\n",
                plan.order_by
                    .iter()
                    .map(|(e, d)| format!("{e}{}", if *d { " DESC" } else { "" }))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        if let Some(n) = plan.limit {
            out.push_str(&format!("  limit: {n}\n"));
        }
        Ok(out)
    }

    /// Plans a query without firing the chain: parse, decompose, run the
    /// count-star performance queries (steps 2–4 of Figure 3), and build
    /// the federated execution plan (step 5), recording the same trace
    /// events a full submission would. The job service plans here once at
    /// admission, then drives [`Portal::execute_plan`] (or a stepwise
    /// [`CheckpointedWalk`]) separately.
    pub fn plan_query(&self, sql: &str, trace: &mut ExecutionTrace) -> Result<ExecutionPlan> {
        let query = parse_query(sql).map_err(FederationError::Sql)?;
        let dq = decompose(query).map_err(FederationError::Sql)?;

        // Step 2 (Figure 3): create performance queries.
        trace.push(
            "Portal",
            "decompose",
            format!(
                "{} archives, {} performance queries",
                dq.archives.len(),
                dq.performance_queries.len()
            ),
        );

        // Steps 3–4: run performance queries against the Query services.
        let counts = self.run_performance_queries(&dq, trace)?;

        // Step 5: build the plan.
        let plan = self.build_plan(&dq, &counts)?;
        trace.push(
            "Portal",
            "plan",
            format!(
                "chain order: {}",
                plan.steps
                    .iter()
                    .map(|s| {
                        format!(
                            "{}{}({})",
                            if s.dropout { "!" } else { "" },
                            s.alias,
                            s.count_estimate
                                .map(|c| c.to_string())
                                .unwrap_or_else(|| "-".into())
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(" -> ")
            ),
        );
        Ok(plan)
    }

    /// Fires the chain for a prepared plan (steps 6–7 of Figure 3) under
    /// the configured chain mode — the paper's recursive daisy chain, or
    /// the portal-driven checkpointed walk (per-step health book-keeping
    /// happens inside the walk).
    pub fn execute_plan(
        &self,
        plan: &ExecutionPlan,
        trace: &mut ExecutionTrace,
    ) -> Result<(PartialSet, StatsChain, Degradation)> {
        let config = self.config();
        if config.result_cache_capacity > 0 {
            if let Some((set, stats)) = self.cached_result(plan, trace) {
                // Cached entries are only written by complete (never
                // degraded) walks, so a hit is always a complete answer.
                return Ok((set, stats, Degradation::default()));
            }
            // Miss: run a caching walk so the next repeat of this plan
            // can be served from the cache. On an unhealthy-node
            // failure fall back to the configured chain mode, which
            // can re-plan around the failure; anything else is fatal
            // either way.
            match self.run_caching_chain(plan, trace, &config) {
                Ok(mut r) => {
                    self.stamp_cache_counters(&mut r.1);
                    return Ok((r.0, r.1, Degradation::default()));
                }
                Err(FederationError::NodeUnhealthy { .. }) => {
                    trace.push(
                        "Portal",
                        "cache",
                        "caching walk hit an unhealthy node; falling back to direct execution"
                            .to_string(),
                    );
                }
                Err(e) => return Err(e),
            }
            let mut r = self.execute_plan_direct(plan, trace)?;
            self.stamp_cache_counters(&mut r.1);
            return Ok(r);
        }
        self.execute_plan_direct(plan, trace)
    }

    /// The cache-oblivious execution path: the configured chain mode
    /// over the daisy chain or the scatter-gather executor.
    fn execute_plan_direct(
        &self,
        plan: &ExecutionPlan,
        trace: &mut ExecutionTrace,
    ) -> Result<(PartialSet, StatsChain, Degradation)> {
        let mode = self.config().chain_mode;
        if plan.has_shards() {
            // A plan addressing any sharded or replicated archive is
            // driven step by step from the Portal, scattering each step
            // to the owning shards with replica failover; the
            // node-to-node daisy chain cannot express a scatter.
            return self.run_scatter_chain(plan, trace, mode);
        }
        match mode {
            ChainMode::Recursive => {
                let r = invoke_cross_match(&self.net, &self.host, &plan.steps[0].url, plan, 0);
                self.note_health(&r);
                if r.is_ok() {
                    self.note_healthy(&plan.steps[0].url.host);
                }
                r.map(|(set, stats)| (set, stats, Degradation::default()))
            }
            ChainMode::Checkpointed => self.run_checkpointed_chain(plan, trace),
        }
    }

    /// Applies the plan's final ORDER BY / LIMIT / SELECT projection
    /// (step 8 of Figure 3) to a matched partial set.
    pub fn project_result(plan: &ExecutionPlan, set: PartialSet) -> Result<ResultSet> {
        project(plan, set)
    }

    /// Submits a cross-match query; returns the result set and the
    /// execution trace (the Figure-3 record).
    pub fn submit(&self, sql: &str) -> Result<(ResultSet, ExecutionTrace)> {
        let mut trace = ExecutionTrace::new();
        trace.push("Client", "submit", format!("query: {sql}"));
        // Retries and injected faults anywhere in the submission —
        // performance queries or the daisy chain — show up as metric
        // deltas; surface them in the trace so recovery is visible.
        let before = self.net.metrics();
        let (retries_before, backoff_before, faults_before) = (
            before.retry_total().retries,
            before.retry_total().backoff_seconds,
            before.fault_total(),
        );
        let plan = self.plan_query(sql, &mut trace)?;
        let chain = self.execute_plan(&plan, &mut trace);
        let after = self.net.metrics();
        let (retries, backoff, faults) = (
            after.retry_total().retries - retries_before,
            after.retry_total().backoff_seconds - backoff_before,
            after.fault_total() - faults_before,
        );
        if retries > 0 || faults > 0 {
            trace.push(
                "Portal",
                "recovery",
                format!(
                    "{retries} retries ({backoff:.3}s backoff), {faults} fault events \
                     during submission"
                ),
            );
        }
        let (set, stats, degradation) = chain?;
        for (alias, s) in &stats.entries {
            trace.push(
                alias.clone(),
                "cross match step",
                format!(
                    "tuples in {}, candidates probed {}, examined {}, chi2 accepted {}, scratch reuse {}, tuples out {}, tile builds {}, tile decodes {}, tile hits {}, cache hits {}, cache misses {}, cache repairs {}, cache evictions {}, failovers {}, hedges {}, hedge wins {}, shards pruned {}",
                    s.tuples_in,
                    s.candidates_probed,
                    s.candidates_examined,
                    s.chi2_accepted,
                    s.scratch_reuse,
                    s.tuples_out,
                    s.tile_builds,
                    s.tile_decodes,
                    s.tile_hits,
                    s.cache_hits,
                    s.cache_misses,
                    s.cache_repairs,
                    s.cache_evictions,
                    s.failovers,
                    s.hedges,
                    s.hedge_wins,
                    s.shards_pruned
                ),
            );
        }

        // Step 8: final projection and relay, with partial-result
        // honesty stamped on the header: a degraded answer says so, and
        // names what it lost, without the client scraping the trace.
        let mut result = project(&plan, set)?;
        result.degraded = degradation.degraded;
        result.dropped_archives = degradation.dropped.clone();
        if degradation.degraded {
            trace.push(
                "Portal",
                "partial result",
                format!(
                    "answer degraded; dropped: {}",
                    degradation.dropped.join(", ")
                ),
            );
        }
        trace.push(
            "Portal",
            "relay",
            format!("{} matched tuples to client", result.row_count()),
        );
        Ok((result, trace))
    }

    /// Drives the plan step by step from the Portal
    /// ([`ChainMode::Checkpointed`]). Each `ExecuteStep` call commits the
    /// step's partial set as a leased checkpoint on the executing node;
    /// only the checkpoint id, row count, and statistics travel back. On
    /// a mid-chain `NodeUnhealthy` failure the Portal re-plans: a failing
    /// drop-out archive is skipped (`degraded`), a failing mandatory
    /// archive is deferred behind the other mandatory steps (`replan`) —
    /// in both cases execution resumes from the last good checkpoint
    /// without re-running any committed step.
    fn run_checkpointed_chain(
        &self,
        plan: &ExecutionPlan,
        trace: &mut ExecutionTrace,
    ) -> Result<(PartialSet, StatsChain, Degradation)> {
        let mut walk = CheckpointedWalk::new(plan);
        while !walk.is_done() {
            if let Err(e) = walk.step(self, trace) {
                // The last good checkpoint will never be resumed: free it
                // now instead of waiting for the holder's janitor.
                walk.release(self);
                return Err(e);
            }
        }
        let degradation = walk.degradation().clone();
        let (set, stats) = walk.finish(self)?;
        Ok((set, stats, degradation))
    }

    /// Attempts to serve `plan` from the result cache: a **hit** (the
    /// registry's table versions match the entry's version vector
    /// exactly) returns the cached final set with zero chain steps
    /// executed; a **monotonically stale** unsharded entry (every
    /// table at or past its cached version) is repaired incrementally
    /// by probing only the delta rows through the node `DeltaStep`
    /// service; anything else — a version regression, a vanished
    /// archive, a stale sharded entry — evicts the entry and returns
    /// `None` so the caller runs the chain cold. Used by
    /// [`Portal::execute_plan`] and by the job service before it
    /// starts a chain walk.
    pub fn cached_result(
        &self,
        plan: &ExecutionPlan,
        trace: &mut ExecutionTrace,
    ) -> Option<(PartialSet, StatsChain)> {
        let config = self.config();
        if config.result_cache_capacity == 0 {
            return None;
        }
        let signature = plan.cache_signature();
        let now = self.net.now_s();
        let current = self.current_versions(plan);
        // Classify under the cache lock; run any repair RPCs outside it.
        let stale = {
            let mut cache = self.cache.lock();
            cache.sweep(now);
            let id = match cache.lookup(&signature) {
                Some(id) => id,
                None => {
                    cache.counters_mut().misses += 1;
                    return None;
                }
            };
            let Some(current) = current.as_ref() else {
                // An archive or table left the registry: the entry can
                // never validate again.
                cache.evict(id);
                cache.counters_mut().misses += 1;
                return None;
            };
            let entry = cache.get(id).expect("looked up above");
            if &entry.versions == current {
                cache.renew(id, now);
                cache.counters_mut().hits += 1;
                let entry = cache.get(id).expect("present");
                let head = entry
                    .steps
                    .first()
                    .expect("a cached entry holds every plan step");
                let set = head.set.clone();
                let mut stats = StatsChain::new();
                for s in entry.steps.iter().rev() {
                    stats.push(s.alias.clone(), s.stats);
                }
                stamp_cache_counters(&mut stats, cache.counters());
                drop(cache);
                trace.push(
                    "Portal",
                    "cache hit",
                    format!(
                        "served {} tuples from the result cache; no chain step executed",
                        set.len()
                    ),
                );
                return Some((set, stats));
            }
            let monotone = entry.versions.len() == current.len()
                && entry.versions.iter().zip(current).all(|(old, new)| {
                    old.len() == new.len()
                        && old.iter().zip(new).all(|(o, c)| {
                            o.host == c.host && o.table == c.table && c.version >= o.version
                        })
                });
            if !monotone || plan.has_shards() {
                // A regression means the provenance no longer describes
                // the tables; a sharded entry keeps no per-shard delta
                // provenance. Either way the entry is unrepairable.
                cache.evict(id);
                cache.counters_mut().misses += 1;
                drop(cache);
                trace.push(
                    "Portal",
                    "cache evict",
                    "stale entry is not incrementally repairable; running the chain cold"
                        .to_string(),
                );
                return None;
            }
            entry.clone()
        };
        let current = current.expect("repair requires current versions");
        match self.repair_entry(plan, &stale, &current) {
            Ok(repaired) => {
                // The delta probes observed authoritative versions:
                // publish them so the next lookup validates as a hit.
                for vs in &repaired.versions {
                    for v in vs {
                        self.update_registry_version(&v.host, &v.table, v.version);
                    }
                }
                let head = repaired
                    .steps
                    .first()
                    .expect("a repaired entry holds every plan step");
                let set = head.set.clone();
                let mut stats = StatsChain::new();
                for s in repaired.steps.iter().rev() {
                    stats.push(s.alias.clone(), s.stats);
                }
                let mut cache = self.cache.lock();
                cache.counters_mut().repairs += 1;
                match cache.lookup(&signature) {
                    Some(id) => {
                        if let Some(slot) = cache.get_mut(id) {
                            *slot = repaired;
                        }
                        cache.renew(id, now);
                    }
                    None => {
                        cache.insert(
                            repaired,
                            now,
                            config.result_cache_ttl_s,
                            config.result_cache_capacity,
                        );
                    }
                }
                stamp_cache_counters(&mut stats, cache.counters());
                drop(cache);
                trace.push(
                    "Portal",
                    "cache repair",
                    format!(
                        "stale entry repaired incrementally ({} tuples); only delta rows probed",
                        set.len()
                    ),
                );
                Some((set, stats))
            }
            Err(e) => {
                let mut cache = self.cache.lock();
                if let Some(id) = cache.lookup(&signature) {
                    cache.evict(id);
                }
                cache.counters_mut().misses += 1;
                drop(cache);
                trace.push(
                    "Portal",
                    "cache evict",
                    format!("incremental repair failed ({e}); running the chain cold"),
                );
                None
            }
        }
    }

    /// The registry's view of each `(host, table)` version the plan
    /// touches — no round trips. `None` when any addressed host or
    /// table is no longer registered.
    fn current_versions(&self, plan: &ExecutionPlan) -> Option<Vec<Vec<StepVersion>>> {
        let nodes = self.nodes.lock();
        let mut out = Vec::with_capacity(plan.steps.len());
        for step in &plan.steps {
            let hosts: Vec<&str> = if step.shards.is_empty() {
                vec![step.url.host.as_str()]
            } else {
                step.shards.iter().map(|s| s.url.host.as_str()).collect()
            };
            let mut vs = Vec::with_capacity(hosts.len());
            for host in hosts {
                let node = nodes.values().flatten().find(|n| n.url.host == host)?;
                let version = node
                    .catalog
                    .tables
                    .iter()
                    .find(|t| t.schema.name.eq_ignore_ascii_case(&step.table))
                    .map(|t| t.version)?;
                vs.push(StepVersion {
                    host: host.to_string(),
                    table: step.table.clone(),
                    version,
                });
            }
            out.push(vs);
        }
        Some(out)
    }

    /// Authoritative `(host, table)` versions for every step target,
    /// fetched through each node's Metadata service. The caching walk
    /// brackets its execution with two of these: if any version moved
    /// mid-walk, the walk's provenance is torn and the result is not
    /// cached.
    fn fetch_versions(&self, plan: &ExecutionPlan) -> Result<Vec<Vec<StepVersion>>> {
        let mut out = Vec::with_capacity(plan.steps.len());
        for step in &plan.steps {
            let targets: Vec<Url> = if step.shards.is_empty() {
                vec![step.url.clone()]
            } else {
                step.shards.iter().map(|s| s.url.clone()).collect()
            };
            let mut vs = Vec::with_capacity(targets.len());
            for url in &targets {
                let resp = self.call(url, &RpcCall::new("Metadata"))?;
                let catalog = catalog_from_element(
                    resp.require("catalog")?
                        .as_xml()
                        .ok_or_else(|| FederationError::protocol("catalog must be xml"))?,
                )?;
                let version = catalog
                    .tables
                    .iter()
                    .find(|t| t.schema.name.eq_ignore_ascii_case(&step.table))
                    .map(|t| t.version)
                    .ok_or_else(|| {
                        FederationError::protocol(format!(
                            "table {} missing from the {} catalog",
                            step.table, url.host
                        ))
                    })?;
                vs.push(StepVersion {
                    host: url.host.clone(),
                    table: step.table.clone(),
                    version,
                });
            }
            out.push(vs);
        }
        Ok(out)
    }

    /// Updates the registry's version snapshot for one `(host, table)`
    /// pair — called when an authoritative version is learned outside a
    /// full re-registration (delta probes, table transfers, caching
    /// walks).
    pub(crate) fn update_registry_version(&self, host: &str, table: &str, version: u64) {
        let mut nodes = self.nodes.lock();
        for group in nodes.values_mut() {
            for n in group.iter_mut() {
                if n.url.host == host {
                    for t in &mut n.catalog.tables {
                        if t.schema.name.eq_ignore_ascii_case(table) {
                            t.version = version;
                        }
                    }
                }
            }
        }
    }

    /// Re-reads every shard catalog of `archive` through the Metadata
    /// service, refreshing the registry's table-version snapshot (and
    /// schemas) without a full re-registration. Returns the number of
    /// shards refreshed.
    pub fn refresh_table_versions(&self, archive: &str) -> Result<usize> {
        let shards = self.shards_of(archive);
        if shards.is_empty() {
            return Err(FederationError::planning(format!(
                "archive {archive} is not registered"
            )));
        }
        let mut refreshed = 0;
        for shard in &shards {
            let resp = self.call(&shard.url, &RpcCall::new("Metadata"))?;
            let catalog = catalog_from_element(
                resp.require("catalog")?
                    .as_xml()
                    .ok_or_else(|| FederationError::protocol("catalog must be xml"))?,
            )?;
            let mut nodes = self.nodes.lock();
            if let Some(group) = nodes.get_mut(&archive.to_ascii_uppercase()) {
                if let Some(n) = group.iter_mut().find(|n| n.url.host == shard.url.host) {
                    n.catalog = catalog;
                    refreshed += 1;
                }
            }
        }
        Ok(refreshed)
    }

    /// Result-cache effectiveness counters and live entry count — the
    /// REPL's `\cache` view.
    pub fn cache_report(&self) -> (CacheCounters, usize) {
        let cache = self.cache.lock();
        (cache.counters(), cache.len())
    }

    /// Stamps the current cache counters into the first entry of a
    /// stats chain (see [`stamp_cache_counters`]).
    fn stamp_cache_counters(&self, stats: &mut StatsChain) {
        let c = self.cache.lock().counters();
        stamp_cache_counters(stats, c);
    }

    /// Runs the plan step by step from the Portal — reusing the
    /// scatter executor, which degenerates to one call per step for an
    /// unsharded plan — while recording every step's committed partial
    /// set and per-tuple provenance for the result cache. Each step's
    /// input is tagged with a [`CACHE_SRC_COL`] provenance column
    /// (stripped from the output) so a later incremental repair knows
    /// which upstream tuple every output row extends. The walk is
    /// bracketed by two authoritative version fetches; if any table
    /// moved mid-walk the result is returned but not cached.
    fn run_caching_chain(
        &self,
        plan: &ExecutionPlan,
        trace: &mut ExecutionTrace,
        config: &FederationConfig,
    ) -> Result<(PartialSet, StatsChain)> {
        let before = self.fetch_versions(plan)?;
        let n = plan.steps.len();
        let mut steps: Vec<Option<CachedStep>> = (0..n).map(|_| None).collect();
        let mut stats = StatsChain::new();
        let mut current: Option<PartialSet> = None;
        for idx in (0..n).rev() {
            let input_tagged = current.as_ref().map(|set| {
                let all: Vec<usize> = (0..set.tuples.len()).collect();
                tag_with_cache_src(set, &all)
            });
            let (set, st, _) = self.scatter_step(
                plan,
                idx,
                input_tagged.as_ref(),
                ChainMode::Recursive,
                trace,
            )?;
            let (clean, src) = match &current {
                Some(_) => strip_cache_src(set)?,
                None => {
                    let src = (0..set.len() as u64).collect();
                    (set, src)
                }
            };
            stats.push(plan.steps[idx].alias.clone(), st);
            steps[idx] = Some(CachedStep {
                alias: plan.steps[idx].alias.clone(),
                set: clean.clone(),
                src,
                stats: st,
            });
            current = Some(clean);
        }
        let final_set =
            current.ok_or_else(|| FederationError::planning("caching chain committed no steps"))?;
        let after = self.fetch_versions(plan)?;
        if before == after {
            for vs in &after {
                for v in vs {
                    self.update_registry_version(&v.host, &v.table, v.version);
                }
            }
            let entry = CacheEntry {
                signature: plan.cache_signature(),
                versions: after,
                steps: steps
                    .into_iter()
                    .map(|s| s.expect("every step executed"))
                    .collect(),
            };
            let now = self.net.now_s();
            let mut cache = self.cache.lock();
            cache.insert(
                entry,
                now,
                config.result_cache_ttl_s,
                config.result_cache_capacity,
            );
            drop(cache);
            trace.push(
                "Portal",
                "cache populate",
                format!(
                    "cached all {n} step partial sets under a {:.0}s lease",
                    config.result_cache_ttl_s
                ),
            );
        } else {
            trace.push(
                "Portal",
                "cache",
                "table versions moved during execution; result not cached".to_string(),
            );
        }
        Ok((final_set, stats))
    }

    /// Repairs a monotonically stale cache entry in place of a cold
    /// run: walking the chain in execution order, each step keeps the
    /// cached outputs whose upstream tuples survived, probes **only
    /// the rows inserted since the cached version** (plus any
    /// freshly-appended upstream tuples, which must see the whole
    /// table) through the node `DeltaStep` service, and splices the
    /// delta results into the cached partial set. Because tables are
    /// append-only and kernels emit candidates in row order within
    /// each match group, the spliced set is byte-identical to a cold
    /// run over the same data (proven by the repair proptests).
    fn repair_entry(
        &self,
        plan: &ExecutionPlan,
        entry: &CacheEntry,
        current: &[Vec<StepVersion>],
    ) -> Result<CacheEntry> {
        let n = plan.steps.len();
        if entry.steps.len() != n || entry.versions.len() != n || current.len() != n {
            return Err(FederationError::protocol(
                "cache entry shape does not match the plan",
            ));
        }
        let mut new_steps: Vec<Option<CachedStep>> = (0..n).map(|_| None).collect();
        let mut new_versions = entry.versions.clone();
        let mut up: Option<RepairedUpstream> = None;
        for idx in (0..n).rev() {
            let cached = &entry.steps[idx];
            if cached.src.len() != cached.set.tuples.len() {
                return Err(FederationError::protocol(
                    "cached step provenance is out of sync with its tuples",
                ));
            }
            let v_old = entry.versions[idx]
                .first()
                .map(|v| v.version)
                .ok_or_else(|| FederationError::protocol("cached step has no version record"))?;
            let v_reg = current[idx].first().map(|v| v.version).unwrap_or(v_old);
            let needs_delta = v_reg > v_old;
            let (repaired, src, stats) = match up.take() {
                None => self.repair_seed(
                    plan,
                    idx,
                    cached,
                    v_old,
                    needs_delta,
                    &mut new_versions[idx],
                )?,
                Some(upstream) => {
                    if plan.steps[idx].dropout {
                        self.repair_dropout(
                            plan,
                            idx,
                            cached,
                            upstream,
                            v_old,
                            v_reg,
                            needs_delta,
                            &mut new_versions[idx],
                        )?
                    } else {
                        self.repair_match(
                            plan,
                            idx,
                            cached,
                            upstream,
                            v_old,
                            v_reg,
                            needs_delta,
                            &mut new_versions[idx],
                        )?
                    }
                }
            };
            new_steps[idx] = Some(CachedStep {
                alias: cached.alias.clone(),
                set: repaired.set.clone(),
                src,
                stats,
            });
            up = Some(repaired);
        }
        Ok(CacheEntry {
            signature: entry.signature.clone(),
            versions: new_versions,
            steps: new_steps
                .into_iter()
                .map(|s| s.expect("every step repaired"))
                .collect(),
        })
    }

    /// Repairs the seed step: cached rows keep their positions (the
    /// seed scans its table in row order, so new rows sort after old
    /// ones) and the delta rows are probed and appended.
    fn repair_seed(
        &self,
        plan: &ExecutionPlan,
        idx: usize,
        cached: &CachedStep,
        v_old: u64,
        needs_delta: bool,
        versions: &mut [StepVersion],
    ) -> Result<(RepairedUpstream, Vec<u64>, StepStats)> {
        let step = &plan.steps[idx];
        let mut set = cached.set.clone();
        let mut stats = cached.stats;
        let old_len = set.tuples.len();
        if needs_delta {
            let (delta, chain, version) =
                invoke_delta_step(&self.net, &self.host, &step.url, plan, idx, v_old, None)?;
            if delta.columns != set.columns {
                return Err(FederationError::protocol(
                    "delta seed schema diverged from the cached set",
                ));
            }
            stats = combine_delta_stats(stats, first_stats(&chain));
            set.tuples.extend(delta.tuples);
            if let Some(v) = versions.first_mut() {
                v.version = version;
            }
        }
        stats.tuples_out = set.tuples.len();
        let src: Vec<u64> = (0..set.tuples.len() as u64).collect();
        let map = (0..old_len).map(Some).collect();
        let fresh = (old_len..set.tuples.len()).collect();
        Ok((RepairedUpstream { set, map, fresh }, src, stats))
    }

    /// Repairs one match step. Surviving cached outputs are remapped to
    /// their inputs' new positions; kept inputs are probed against only
    /// the delta rows (their new extensions splice onto the end of
    /// their match groups — within a group candidates come out in row
    /// order, and delta rows have the highest row ids); fresh inputs
    /// are probed against the whole table.
    #[allow(clippy::too_many_arguments)]
    fn repair_match(
        &self,
        plan: &ExecutionPlan,
        idx: usize,
        cached: &CachedStep,
        upstream: RepairedUpstream,
        v_old: u64,
        v_reg: u64,
        needs_delta: bool,
        versions: &mut [StepVersion],
    ) -> Result<(RepairedUpstream, Vec<u64>, StepStats)> {
        let step = &plan.steps[idx];
        let up_len = upstream.set.tuples.len();
        let mut old_of_new: Vec<Option<usize>> = vec![None; up_len];
        for (s, m) in upstream.map.iter().enumerate() {
            if let Some(u) = m {
                old_of_new[*u] = Some(s);
            }
        }
        let kept: Vec<usize> = (0..up_len).filter(|u| old_of_new[*u].is_some()).collect();
        let mut old_groups: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, s) in cached.src.iter().enumerate() {
            old_groups.entry(*s).or_default().push(i);
        }

        let mut stats = cached.stats;
        let mut observed: Option<u64> = None;
        let delta_groups = if needs_delta && !kept.is_empty() {
            let input = tag_with_cache_src(&upstream.set, &kept);
            let (reply, chain, version) = invoke_delta_step(
                &self.net,
                &self.host,
                &step.url,
                plan,
                idx,
                v_old,
                Some(&input.to_votable()),
            )?;
            observed = Some(version);
            stats = combine_delta_stats(stats, first_stats(&chain));
            group_delta_reply(reply, &cached.set.columns)?
        } else {
            HashMap::new()
        };
        let full_groups = if !upstream.fresh.is_empty() {
            let input = tag_with_cache_src(&upstream.set, &upstream.fresh);
            let (reply, chain, version) = invoke_delta_step(
                &self.net,
                &self.host,
                &step.url,
                plan,
                idx,
                0,
                Some(&input.to_votable()),
            )?;
            if observed.is_none() && needs_delta {
                observed = Some(version);
            }
            stats = combine_delta_stats(stats, first_stats(&chain));
            group_delta_reply(reply, &cached.set.columns)?
        } else {
            HashMap::new()
        };
        if needs_delta {
            if let Some(v) = versions.first_mut() {
                v.version = observed.unwrap_or(v_reg);
            }
        }

        let mut tuples = Vec::new();
        let mut src: Vec<u64> = Vec::new();
        let mut map = vec![None; cached.set.tuples.len()];
        let mut fresh = Vec::new();
        for (u, s_old) in old_of_new.iter().enumerate() {
            match s_old {
                Some(s_old) => {
                    if let Some(group) = old_groups.get(&(*s_old as u64)) {
                        for &i in group {
                            map[i] = Some(tuples.len());
                            src.push(u as u64);
                            tuples.push(cached.set.tuples[i].clone());
                        }
                    }
                    if let Some(extra) = delta_groups.get(&(u as u64)) {
                        for t in extra {
                            fresh.push(tuples.len());
                            src.push(u as u64);
                            tuples.push(t.clone());
                        }
                    }
                }
                None => {
                    if let Some(group) = full_groups.get(&(u as u64)) {
                        for t in group {
                            fresh.push(tuples.len());
                            src.push(u as u64);
                            tuples.push(t.clone());
                        }
                    }
                }
            }
        }
        let set = PartialSet {
            columns: cached.set.columns.clone(),
            tuples,
        };
        stats.tuples_in = up_len;
        stats.tuples_out = set.tuples.len();
        Ok((RepairedUpstream { set, map, fresh }, src, stats))
    }

    /// Repairs one drop-out step. Drop-out is monotone — new rows can
    /// only drop more tuples — so cached survivors need re-probing
    /// against only the delta rows, tuples the cache already dropped
    /// stay dropped, and fresh upstream tuples are filtered against the
    /// whole table.
    #[allow(clippy::too_many_arguments)]
    fn repair_dropout(
        &self,
        plan: &ExecutionPlan,
        idx: usize,
        cached: &CachedStep,
        upstream: RepairedUpstream,
        v_old: u64,
        v_reg: u64,
        needs_delta: bool,
        versions: &mut [StepVersion],
    ) -> Result<(RepairedUpstream, Vec<u64>, StepStats)> {
        let step = &plan.steps[idx];
        let up_len = upstream.set.tuples.len();
        let mut old_of_new: Vec<Option<usize>> = vec![None; up_len];
        for (s, m) in upstream.map.iter().enumerate() {
            if let Some(u) = m {
                old_of_new[*u] = Some(s);
            }
        }
        // A drop-out step passes each input through at most once.
        let mut old_out_of_src: HashMap<u64, usize> = HashMap::new();
        for (i, s) in cached.src.iter().enumerate() {
            old_out_of_src.insert(*s, i);
        }
        let candidates: Vec<usize> = (0..up_len)
            .filter(|u| old_of_new[*u].is_some_and(|s| old_out_of_src.contains_key(&(s as u64))))
            .collect();

        let mut stats = cached.stats;
        let mut observed: Option<u64> = None;
        let survivors_delta: Option<std::collections::HashSet<u64>> =
            if needs_delta && !candidates.is_empty() {
                let input = tag_with_cache_src(&upstream.set, &candidates);
                let (reply, chain, version) = invoke_delta_step(
                    &self.net,
                    &self.host,
                    &step.url,
                    plan,
                    idx,
                    v_old,
                    Some(&input.to_votable()),
                )?;
                observed = Some(version);
                stats = combine_delta_stats(stats, first_stats(&chain));
                let (_, srcs) = strip_cache_src(reply)?;
                Some(srcs.into_iter().collect())
            } else {
                None
            };
        let survivors_full: std::collections::HashSet<u64> = if !upstream.fresh.is_empty() {
            let input = tag_with_cache_src(&upstream.set, &upstream.fresh);
            let (reply, chain, version) = invoke_delta_step(
                &self.net,
                &self.host,
                &step.url,
                plan,
                idx,
                0,
                Some(&input.to_votable()),
            )?;
            if observed.is_none() && needs_delta {
                observed = Some(version);
            }
            stats = combine_delta_stats(stats, first_stats(&chain));
            let (_, srcs) = strip_cache_src(reply)?;
            srcs.into_iter().collect()
        } else {
            std::collections::HashSet::new()
        };
        if needs_delta {
            if let Some(v) = versions.first_mut() {
                v.version = observed.unwrap_or(v_reg);
            }
        }

        let mut tuples = Vec::new();
        let mut src: Vec<u64> = Vec::new();
        let mut map = vec![None; cached.set.tuples.len()];
        let mut fresh = Vec::new();
        for (u, s_old) in old_of_new.iter().enumerate() {
            match s_old {
                Some(s_old) => {
                    if let Some(&i) = old_out_of_src.get(&(*s_old as u64)) {
                        let survives = survivors_delta
                            .as_ref()
                            .is_none_or(|s| s.contains(&(u as u64)));
                        if survives {
                            map[i] = Some(tuples.len());
                            src.push(u as u64);
                            tuples.push(cached.set.tuples[i].clone());
                        }
                    }
                }
                None => {
                    if survivors_full.contains(&(u as u64)) {
                        fresh.push(tuples.len());
                        src.push(u as u64);
                        tuples.push(upstream.set.tuples[u].clone());
                    }
                }
            }
        }
        let set = PartialSet {
            columns: cached.set.columns.clone(),
            tuples,
        };
        stats.tuples_in = up_len;
        stats.tuples_out = set.tuples.len();
        Ok((RepairedUpstream { set, map, fresh }, src, stats))
    }

    /// Drives a plan with sharded steps from the Portal, seed to head.
    /// Each step is scattered in parallel to the shards that own it
    /// (`ScatterStep` calls), the shard outputs are merged
    /// deterministically ([`crate::shard`]), and the merged set — held
    /// in Portal memory — is both the next step's input and the chain's
    /// checkpoint; shards retain no per-query state between steps.
    ///
    /// Under [`ChainMode::Recursive`] any failure aborts the submission
    /// (the daisy chain's semantics). Under [`ChainMode::Checkpointed`]
    /// the executor re-plans exactly like [`CheckpointedWalk`]: a
    /// drop-out step that lost *some* shards degrades to the shards
    /// that answered, a drop-out step that lost *all* shards is skipped
    /// (unless residuals or carried columns route through it), and a
    /// failing mandatory step is deferred behind the other mandatory
    /// steps — resuming from the in-memory merged set without
    /// re-running any committed step.
    fn run_scatter_chain(
        &self,
        plan: &ExecutionPlan,
        trace: &mut ExecutionTrace,
        mode: ChainMode,
    ) -> Result<(PartialSet, StatsChain, Degradation)> {
        let mut remaining = plan.steps.clone();
        let mut executed: Vec<String> = Vec::new();
        let mut deferrals: HashMap<String, u64> = HashMap::new();
        let mut current: Option<PartialSet> = None;
        let mut stats = StatsChain::new();
        let mut degradation = Degradation::default();
        let mut recovering = false;
        while let Some(idx) = remaining.len().checked_sub(1) {
            let step = remaining[idx].clone();
            let mut sub_plan = plan.clone();
            sub_plan.steps = remaining.clone();
            match self.scatter_step(&sub_plan, idx, current.as_ref(), mode, trace) {
                Ok((set, st, deg)) => {
                    stats.push(step.alias.clone(), st);
                    let degraded = deg.degraded;
                    degradation.absorb(deg);
                    if recovering && !degraded {
                        recovering = false;
                        trace.push(
                            "Portal",
                            "resume",
                            format!("chain resumed at {} ({} rows)", step.alias, set.len()),
                        );
                        self.net.record_node_event(&self.host, "resume");
                    }
                    if degraded {
                        recovering = true;
                    }
                    current = Some(set);
                    executed.push(step.alias.clone());
                    remaining.pop();
                }
                Err(e) => {
                    if mode == ChainMode::Recursive
                        || !matches!(e, FederationError::NodeUnhealthy { .. })
                    {
                        return Err(e);
                    }
                    if step.dropout {
                        // Optional archive entirely unreachable:
                        // continue without its filter — unless the plan
                        // routed residuals or carried columns through
                        // it, where skipping would change the query's
                        // meaning rather than its completeness.
                        if !step.residual_sql.is_empty() || !step.carried.is_empty() {
                            return Err(e);
                        }
                        trace.push(
                            "Portal",
                            "degraded",
                            format!(
                                "optional archive {} unreachable; continuing without its \
                                 drop-out filter",
                                step.alias
                            ),
                        );
                        self.net.record_node_event(&self.host, "degraded");
                        degradation.absorb(Degradation {
                            degraded: true,
                            dropped: vec![step.archive.clone()],
                        });
                        remaining.pop();
                        recovering = true;
                    } else {
                        let first_mandatory = remaining
                            .iter()
                            .position(|s| !s.dropout)
                            .expect("the failing step itself is mandatory");
                        let tries = deferrals.entry(step.alias.clone()).or_insert(0);
                        if *tries >= MAX_STEP_DEFERRALS || remaining.len() - first_mandatory < 2 {
                            return Err(e);
                        }
                        *tries += 1;
                        let failed = remaining.pop().expect("indexed above");
                        remaining.insert(first_mandatory, failed);
                        replace_residuals(&mut remaining, &executed)?;
                        trace.push(
                            "Portal",
                            "replan",
                            format!(
                                "deferred {} after failure; new order: {}",
                                step.alias,
                                remaining
                                    .iter()
                                    .rev()
                                    .map(|s| s.alias.as_str())
                                    .collect::<Vec<_>>()
                                    .join(" -> ")
                            ),
                        );
                        self.net.record_node_event(&self.host, "replan");
                        recovering = true;
                    }
                }
            }
        }
        let set =
            current.ok_or_else(|| FederationError::planning("scatter chain committed no steps"))?;
        Ok((set, stats, degradation))
    }

    /// Scatters one step (`idx`, the tail of `plan.steps`) to its owning
    /// shards in parallel and gathers the replies into one merged
    /// partial set plus the step's merged statistics. Each extent is
    /// served by one replica of its group: the first healthy candidate
    /// in deterministic `(extent, host)` order is probed, a reply slower
    /// than the configured hedge delay races a duplicate probe against
    /// the first untried sibling (first response wins; the loser is
    /// discarded before the gather, so no duplicate rows can merge), and
    /// an unhealthy verdict fails over through the remaining siblings
    /// before the step is allowed to fail. The third return records
    /// partial-result honesty: `degraded` with the lost shards named
    /// `archive@host` when a drop-out step lost whole extents but was
    /// answered from the rest (Checkpointed mode only).
    fn scatter_step(
        &self,
        plan: &ExecutionPlan,
        idx: usize,
        input: Option<&PartialSet>,
        mode: ChainMode,
        trace: &mut ExecutionTrace,
    ) -> Result<(PartialSet, StepStats, Degradation)> {
        let step = &plan.steps[idx];
        // One entry per extent: the primary scatter target plus its
        // same-extent replicas (failover/hedge candidates).
        let mut targets: Vec<(Url, Vec<Url>)> = if step.shards.is_empty() {
            vec![(step.url.clone(), Vec::new())]
        } else {
            step.shards
                .iter()
                .map(|s| (s.url.clone(), s.replicas.clone()))
                .collect()
        };
        let multi = targets.len() > 1;
        let dropout = step.dropout;

        // Extent-prune the fan-out: a shard whose declination range
        // cannot intersect any of the input tuples' probe balls is
        // guaranteed to contribute nothing — no extensions on a match
        // step, no dropped tuples on a drop-out step — so skipping the
        // call is byte-identical. Seed steps (no input) always scatter
        // to every shard. At least one target is always kept so the
        // merge sees a well-formed (possibly empty) shard reply.
        let mut shards_pruned = 0usize;
        if multi {
            if let Some(input) = input {
                let span = probe_dec_span(input, plan.threshold, step.sigma_arcsec);
                let mut keep = Vec::with_capacity(targets.len());
                for shard in &step.shards {
                    keep.push(span.is_some_and(|(lo, hi)| {
                        shard.extent.dec_lo_deg <= hi && shard.extent.dec_hi_deg >= lo
                    }));
                }
                if keep.iter().all(|k| !k) {
                    keep[0] = true;
                }
                let mut it = keep.iter();
                targets.retain(|_| *it.next().expect("keep covers targets"));
                shards_pruned = keep.iter().filter(|k| !**k).count();
            }
        }

        // When scattered, a non-drop-out step additionally carries the
        // shard table's rank column so the gather can restore the
        // single-node output order; the input set is tagged with each
        // tuple's index for the same reason.
        let mut wire_plan = plan.clone();
        if multi && !dropout {
            wire_plan.steps[idx]
                .carried
                .push(shard::RANK_COL.to_string());
        }
        let input_table = input.map(|set| {
            if multi {
                shard::tag_with_src(set).to_votable()
            } else {
                set.to_votable()
            }
        });

        let net = &self.net;
        let host = &self.host;
        let wire = &wire_plan;
        let tbl = input_table.as_ref();
        let hedge_delay = self.config().hedge_delay_s;

        // One probe attempt against one replica, with health
        // book-keeping and the simulated-time cost of the exchange
        // (what the hedge decision races against).
        let probe = |url: &Url| -> (Result<(PartialSet, StatsChain)>, f64) {
            let t0 = net.now_s();
            let r = invoke_scatter_step(net, host, url, wire, idx, tbl);
            let elapsed = net.now_s() - t0;
            self.note_health(&r);
            if r.is_ok() {
                self.note_healthy(&url.host);
            }
            (r, elapsed)
        };

        // Serves one extent from its replica group: healthy-first pick,
        // optional hedge, then failover through the untried siblings on
        // unhealthy verdicts. Replicas hold identical data, so whichever
        // one answers yields byte-identical rows. Non-unhealthy errors
        // (a malformed body surviving its retry budget, a planning
        // error) stay fatal: failing over past a poisoned reply would
        // mask corruption, not route around an outage.
        let serve_extent = |primary: &Url, replicas: &[Url]| -> ExtentOutcome {
            let mut candidates: Vec<&Url> = Vec::with_capacity(1 + replicas.len());
            candidates.push(primary);
            candidates.extend(replicas.iter());
            let pick = candidates
                .iter()
                .position(|u| !self.host_is_unhealthy(&u.host))
                .unwrap_or(0);
            let picked = candidates.remove(pick);
            candidates.insert(0, picked);

            let mut out = ExtentOutcome::default();
            let (mut r, elapsed) = probe(candidates[0]);
            let mut tried = 1;
            if hedge_delay > 0.0 && elapsed >= hedge_delay && candidates.len() > 1 {
                // The picked replica was slower than the hedge delay:
                // model a duplicate probe issued at `hedge_delay` racing
                // the (already-measured) straggler; first response wins
                // and the loser is dropped here, before the gather.
                out.hedges += 1;
                net.record_node_event(host, "hedge");
                let sibling = candidates[1];
                tried = 2;
                let (r2, sibling_elapsed) = probe(sibling);
                let sibling_wins = match (&r, &r2) {
                    (Err(_), Ok(_)) => true,
                    (Ok(_), Ok(_)) => hedge_delay + sibling_elapsed < elapsed,
                    _ => false,
                };
                if sibling_wins {
                    r = r2;
                    out.hedge_wins += 1;
                }
            }
            while matches!(r, Err(FederationError::NodeUnhealthy { .. }))
                && tried < candidates.len()
            {
                let next = candidates[tried];
                tried += 1;
                out.failovers += 1;
                net.record_node_event(host, "failover");
                r = probe(next).0;
            }
            out.result = Some(r);
            out
        };
        let serve_extent = &serve_extent;

        let outcomes: Vec<ExtentOutcome> = if multi {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = targets
                    .iter()
                    .map(|(primary, replicas)| {
                        scope.spawn(move |_| serve_extent(primary, replicas))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panics"))
                    .collect()
            })
            .expect("scope does not panic")
        } else {
            targets
                .iter()
                .map(|(primary, replicas)| serve_extent(primary, replicas))
                .collect()
        };

        let mut parts: Vec<(PartialSet, StepStats)> = Vec::new();
        let mut errs: Vec<(String, FederationError)> = Vec::new();
        let (mut failovers, mut hedges, mut hedge_wins) = (0usize, 0usize, 0usize);
        for ((primary, _), o) in targets.iter().zip(outcomes) {
            failovers += o.failovers;
            hedges += o.hedges;
            hedge_wins += o.hedge_wins;
            match o.result.expect("every extent produced an outcome") {
                Ok((set, chain)) => {
                    let st = chain
                        .entries
                        .into_iter()
                        .next()
                        .map(|(_, s)| s)
                        .unwrap_or_default();
                    parts.push((set, st));
                }
                // A failed extent is named by its primary host — the
                // stable group identity — not whichever replica happened
                // to answer last.
                Err(e) => errs.push((primary.host.clone(), e)),
            }
        }

        if !errs.is_empty() {
            let all_unhealthy = errs
                .iter()
                .all(|(_, e)| matches!(e, FederationError::NodeUnhealthy { .. }));
            // A drop-out step may degrade to the shards that answered:
            // intersecting over fewer shards only weakens the filter,
            // which is a completeness loss, not a correctness one.
            let degradable =
                mode == ChainMode::Checkpointed && dropout && multi && !parts.is_empty();
            if !(all_unhealthy && degradable) {
                // Prefer surfacing a fatal error so the driver aborts
                // rather than deferring a step that can never succeed.
                let fatal = errs
                    .iter()
                    .position(|(_, e)| !matches!(e, FederationError::NodeUnhealthy { .. }))
                    .unwrap_or(0);
                return Err(errs.swap_remove(fatal).1);
            }
            let lost: Vec<&str> = errs.iter().map(|(h, _)| h.as_str()).collect();
            trace.push(
                "Portal",
                "degraded",
                format!(
                    "drop-out {}: shard(s) {} unreachable; intersecting over {} answering \
                     shard(s)",
                    step.alias,
                    lost.join(", "),
                    parts.len()
                ),
            );
            self.net.record_node_event(&self.host, "degraded");
            let (set, mut st) = shard::merge_dropout(&parts)?;
            st.shards_pruned += shards_pruned;
            st.failovers += failovers;
            st.hedges += hedges;
            st.hedge_wins += hedge_wins;
            let degradation = Degradation {
                degraded: true,
                dropped: errs
                    .iter()
                    .map(|(h, _)| format!("{}@{}", step.archive, h))
                    .collect(),
            };
            return Ok((set, st, degradation));
        }

        let (set, mut st) = if !multi {
            parts.into_iter().next().expect("one target answered")
        } else if input.is_none() {
            shard::merge_seed(&parts, &step.alias)?
        } else if dropout {
            shard::merge_dropout(&parts)?
        } else {
            shard::merge_match(&parts, &step.alias)?
        };
        st.shards_pruned += shards_pruned;
        st.failovers += failovers;
        st.hedges += hedges;
        st.hedge_wins += hedge_wins;
        if multi {
            let pruned_note = if shards_pruned > 0 {
                format!(" ({shards_pruned} shard(s) extent-pruned)")
            } else {
                String::new()
            };
            trace.push(
                "Portal",
                "scatter",
                format!(
                    "{}: {} shards -> {} rows merged{}",
                    step.alias,
                    targets.len(),
                    set.len(),
                    pruned_note
                ),
            );
        }
        Ok((set, st, Degradation::default()))
    }

    /// Runs the count-star performance queries, in parallel when
    /// configured (the paper passes them "as asynchronous SOAP messages").
    fn run_performance_queries(
        &self,
        dq: &DecomposedQuery,
        trace: &mut ExecutionTrace,
    ) -> Result<HashMap<String, u64>> {
        let config = self.config();
        let mut out = HashMap::new();
        // One job per (alias, extent): each shard counts its own zone
        // range and the Portal sums the estimates per alias, so a
        // sharded archive orders the plan exactly as its single-node
        // equivalent would. Replicas of an extent hold identical data —
        // each extent is counted once (`shards_of` sorts by extent then
        // host, so a same-extent run is one replica group), or the sum
        // would scale with the replication factor.
        let mut jobs: Vec<(String, String, Vec<Url>)> = Vec::new();
        for pq in &dq.performance_queries {
            let group = self.shards_of(&pq.archive);
            if group.is_empty() {
                return Err(FederationError::planning(format!(
                    "archive {} is not registered with the Portal",
                    pq.archive
                )));
            }
            let mut prev: Option<ZoneExtent> = None;
            for n in group {
                let e = n.extent();
                let dup = prev
                    .is_some_and(|p| p.dec_lo_deg == e.dec_lo_deg && p.dec_hi_deg == e.dec_hi_deg);
                prev = Some(e);
                if dup {
                    let (_, _, siblings) = jobs.last_mut().expect("a replica follows its primary");
                    siblings.push(n.url);
                } else {
                    jobs.push((pq.alias.clone(), pq.to_sql(), vec![n.url]));
                }
            }
        }

        // Counts one extent: healthy-first pick, then failover through
        // the untried siblings on unhealthy verdicts — the scatter's
        // replica selection (§13), so a dead primary cannot fail the
        // query at planning time. Non-unhealthy errors stay fatal.
        let run_one = |alias: &str, sql: &str, candidates: &[Url]| -> Result<(String, u64)> {
            let mut order: Vec<&Url> = candidates.iter().collect();
            let pick = order
                .iter()
                .position(|u| !self.host_is_unhealthy(&u.host))
                .unwrap_or(0);
            let picked = order.remove(pick);
            order.insert(0, picked);
            let mut unhealthy = None;
            for (tried, url) in order.iter().enumerate() {
                if tried > 0 {
                    self.net.record_node_event(&self.host, "failover");
                }
                let r = self.call(
                    url,
                    &RpcCall::new("Query").param("sql", SoapValue::Str(sql.to_string())),
                );
                match r {
                    Ok(resp) => {
                        let count = resp
                            .require("count")?
                            .as_i64()
                            .ok_or_else(|| FederationError::protocol("count must be an integer"))?;
                        return Ok((alias.to_string(), count as u64));
                    }
                    Err(e @ FederationError::NodeUnhealthy { .. }) => unhealthy = Some(e),
                    Err(e) => return Err(e),
                }
            }
            Err(unhealthy.expect("every group has at least one candidate"))
        };

        if config.parallel_performance_queries && jobs.len() > 1 {
            let results: Vec<Result<(String, u64)>> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .iter()
                    .map(|(alias, sql, url)| scope.spawn(move |_| run_one(alias, sql, url)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panics"))
                    .collect()
            })
            .expect("scope does not panic");
            for r in results {
                let (alias, count) = r?;
                *out.entry(alias).or_insert(0) += count;
            }
        } else {
            for (alias, sql, url) in &jobs {
                let (a, c) = run_one(alias, sql, url)?;
                trace.push("Portal", "performance query", format!("{sql} -> {c} [{a}]"));
                *out.entry(a).or_insert(0) += c;
            }
        }
        if config.parallel_performance_queries && !jobs.is_empty() {
            let mut summary: Vec<String> = out
                .iter()
                .map(|(alias, c)| format!("{alias}={c}"))
                .collect();
            summary.sort();
            trace.push(
                "Portal",
                "performance queries",
                format!("count star results: {}", summary.join(", ")),
            );
        }
        Ok(out)
    }

    /// Builds the federated execution plan: drop-outs at the head, then
    /// mandatory archives ordered by the configured strategy.
    fn build_plan(
        &self,
        dq: &DecomposedQuery,
        counts: &HashMap<String, u64>,
    ) -> Result<ExecutionPlan> {
        let config = self.config();
        let mut mandatory: Vec<&str> = dq.xmatch.mandatory();
        match config.ordering {
            OrderingStrategy::CountStarDescending => {
                mandatory.sort_by_key(|a| {
                    std::cmp::Reverse(counts.get(*a).copied().unwrap_or(u64::MAX))
                });
            }
            OrderingStrategy::CountStarAscending => {
                mandatory.sort_by_key(|a| counts.get(*a).copied().unwrap_or(0));
            }
            OrderingStrategy::DeclarationOrder => {}
            OrderingStrategy::Random(seed) => {
                // xorshift64* — deterministic shuffle without a rand dep.
                let mut state = seed | 1;
                let mut next = || {
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    state.wrapping_mul(0x2545F4914F6CDD1D)
                };
                for i in (1..mandatory.len()).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    mandatory.swap(i, j);
                }
            }
        }

        let ordered_aliases: Vec<&str> =
            dq.xmatch.dropouts().into_iter().chain(mandatory).collect();

        let mut steps = Vec::with_capacity(ordered_aliases.len());
        for alias in &ordered_aliases {
            let slice = dq
                .archive(alias)
                .expect("decomposition covers every XMATCH alias");
            let node = self.node(&slice.table.archive).ok_or_else(|| {
                FederationError::planning(format!(
                    "archive {} is not registered with the Portal",
                    slice.table.archive
                ))
            })?;
            // The queried table must exist and carry a position index.
            let schema = node.table_schema(&slice.table.table).ok_or_else(|| {
                FederationError::planning(format!(
                    "archive {} has no table {}",
                    slice.table.archive, slice.table.table
                ))
            })?;
            if schema.position.is_none() {
                return Err(FederationError::planning(format!(
                    "table {}:{} has no position columns; cross match needs the primary table",
                    slice.table.archive, slice.table.table
                )));
            }
            // A shard group of more than one node makes this step a
            // scatter-gather step: the plan lists one entry per distinct
            // zone range — the primary (lowest host) as the scatter
            // target, its same-extent siblings as failover/hedge
            // replicas. `shards_of` orders by (extent, host), so
            // same-extent nodes are adjacent with the primary first.
            let group = self.shards_of(&slice.table.archive);
            let mut extent_groups: Vec<Vec<&RegisteredNode>> = Vec::new();
            for n in &group {
                match extent_groups.last_mut() {
                    Some(eg)
                        if eg[0].extent().dec_lo_deg == n.extent().dec_lo_deg
                            && eg[0].extent().dec_hi_deg == n.extent().dec_hi_deg =>
                    {
                        eg.push(n)
                    }
                    _ => extent_groups.push(vec![n]),
                }
            }
            let replicated = extent_groups.iter().any(|eg| eg.len() > 1);
            // Any replication routes the step through the scatter
            // executor even for a single extent (the daisy chain has no
            // failover); a single unreplicated node keeps the legacy
            // un-scattered wire shape.
            let shards = if extent_groups.len() > 1 || replicated {
                extent_groups
                    .iter()
                    .map(|eg| PlanShard {
                        url: eg[0].url.clone(),
                        extent: eg[0].extent(),
                        replicas: eg[1..].iter().map(|n| n.url.clone()).collect(),
                    })
                    .collect()
            } else {
                Vec::new()
            };
            steps.push(PlanStep {
                alias: slice.table.alias.clone(),
                archive: node.info.name.clone(),
                table: slice.table.table.clone(),
                url: node.url.clone(),
                dropout: slice.dropout,
                sigma_arcsec: node.info.sigma_arcsec,
                local_sql: slice.predicate().map(|e| e.to_string()),
                carried: slice.carried_columns.clone(),
                residual_sql: Vec::new(),
                count_estimate: counts.get(slice.table.alias.as_str()).copied(),
                shards,
            });
        }

        // Residual placement: a residual runs at the earliest processing
        // position (processing order is reversed list order) where every
        // referenced alias has joined the tuple.
        let n = steps.len();
        let alias_order: Vec<String> = steps.iter().map(|s| s.alias.clone()).collect();
        let processing_pos = |alias: &str| -> Option<usize> {
            alias_order
                .iter()
                .position(|a| a == alias)
                .map(|i| n - 1 - i)
        };
        for residual in &dq.residuals {
            let needed = residual_position(residual, &processing_pos)?;
            let step_index = n - 1 - needed;
            steps[step_index].residual_sql.push(residual.to_string());
        }

        let region = match &dq.region {
            Some(spec) => Some(Region::from_spec(spec)?),
            None => None,
        };
        Ok(ExecutionPlan {
            threshold: dq.xmatch.threshold,
            region,
            steps,
            select: dq
                .query
                .select
                .iter()
                .map(|item| match item {
                    skyquery_sql::SelectItem::Expr { expr, alias } => {
                        (expr.to_string(), alias.clone())
                    }
                    skyquery_sql::SelectItem::CountStar
                    | skyquery_sql::SelectItem::Aggregate { .. } => {
                        unreachable!("decompose rejects aggregates")
                    }
                })
                .collect(),
            order_by: dq
                .query
                .order_by
                .iter()
                .map(|k| {
                    (
                        k.expr.to_string(),
                        k.direction == skyquery_sql::ast::SortDirection::Desc,
                    )
                })
                .collect(),
            limit: dq.query.limit,
            max_message_bytes: config.max_message_bytes,
            chunking: config.chunking,
            xmatch_workers: config.xmatch_workers.max(1),
            zone_height_deg: config.zone_height_deg,
            zone_chunking: config.zone_chunking,
            kernel: config.kernel,
            retry: config.retry,
            lease_ttl_s: config.lease_ttl_s,
        })
    }
}

/// Portal-driven stepwise execution of one plan, one `ExecuteStep` call
/// at a time ([`ChainMode::Checkpointed`]).
///
/// `Portal::submit` drives a walk to completion in a tight loop; the job
/// service interleaves many walks — one [`CheckpointedWalk::step`] per
/// scheduler quantum — so a long chain from one tenant cannot monopolize
/// the Portal, and a cancellation between quanta can
/// [release](CheckpointedWalk::release) the retained checkpoint
/// immediately instead of leaking it until its lease lapses.
///
/// Each successful step commits its partial set as a leased checkpoint
/// on the executing node; only the checkpoint id, row count, and
/// statistics travel back. On a mid-chain `NodeUnhealthy` failure the
/// walk re-plans: a failing drop-out archive is skipped (`degraded`), a
/// failing mandatory archive is deferred behind the other mandatory
/// steps (`replan`) — in both cases execution resumes from the last good
/// checkpoint without re-running any committed step.
pub struct CheckpointedWalk {
    plan: ExecutionPlan,
    /// Steps not yet executed, in plan-list order (drop-outs at the
    /// head); execution walks from the tail (the seed) toward the head.
    remaining: Vec<PlanStep>,
    executed: Vec<String>,
    deferrals: HashMap<String, u64>,
    /// The last good checkpoint: where the committed prefix lives.
    checkpoint: Option<(Url, u64)>,
    stats: StatsChain,
    degradation: Degradation,
    recovering: bool,
}

impl CheckpointedWalk {
    /// A walk over `plan` with no steps executed yet.
    pub fn new(plan: &ExecutionPlan) -> CheckpointedWalk {
        CheckpointedWalk {
            plan: plan.clone(),
            remaining: plan.steps.clone(),
            executed: Vec::new(),
            deferrals: HashMap::new(),
            checkpoint: None,
            stats: StatsChain::new(),
            degradation: Degradation::default(),
            recovering: false,
        }
    }

    /// What this walk has dropped so far: read it before
    /// [`CheckpointedWalk::finish`] consumes the walk, so the caller can
    /// stamp partial-result honesty onto whatever it relays.
    pub fn degradation(&self) -> &Degradation {
        &self.degradation
    }

    /// Whether every step has executed (or been skipped as degraded).
    pub fn is_done(&self) -> bool {
        self.remaining.is_empty()
    }

    /// Steps not yet executed.
    pub fn steps_remaining(&self) -> usize {
        self.remaining.len()
    }

    /// Aliases of the steps already committed, in execution order.
    pub fn executed(&self) -> &[String] {
        &self.executed
    }

    /// Executes (or re-plans around) the next step of the chain. A
    /// returned error is fatal for the walk: the caller should
    /// [release](CheckpointedWalk::release) the retained checkpoint and
    /// abandon the query.
    pub fn step(&mut self, portal: &Portal, trace: &mut ExecutionTrace) -> Result<()> {
        let idx = match self.remaining.len().checked_sub(1) {
            Some(i) => i,
            None => return Ok(()),
        };
        let step = self.remaining[idx].clone();
        let mut sub_plan = self.plan.clone();
        sub_plan.steps = self.remaining.clone();
        let mut call = RpcCall::new("ExecuteStep")
            .param("plan", SoapValue::Xml(sub_plan.to_element()))
            .param("step", SoapValue::Int(idx as i64));
        if let Some((cp_url, cp_id)) = &self.checkpoint {
            call = call
                .param("checkpoint_url", SoapValue::Str(cp_url.to_string()))
                .param("checkpoint_id", SoapValue::Int(*cp_id as i64));
        }
        match send_rpc_with(&portal.net, &portal.host, &step.url, &call, self.plan.retry) {
            Ok(resp) => {
                let cp_id = resp
                    .require("checkpoint")?
                    .as_i64()
                    .filter(|v| *v >= 0)
                    .ok_or_else(|| {
                        FederationError::protocol("checkpoint must be a non-negative integer")
                    })? as u64;
                let rows = resp.require("rows")?.as_i64().unwrap_or(-1);
                let chain = StatsChain::from_element(
                    resp.require("stats")?
                        .as_xml()
                        .ok_or_else(|| FederationError::protocol("stats must be xml"))?,
                )?;
                self.stats.entries.extend(chain.entries);
                // The new checkpoint supersedes the previous one:
                // release it best-effort (if the holder is
                // unreachable, its janitor reclaims the lease) — but a
                // failed release is tallied, never swallowed: the
                // checkpoint pins node memory until its TTL.
                if let Some((prev_url, prev_id)) = self.checkpoint.take() {
                    if release_checkpoint(
                        &portal.net,
                        &portal.host,
                        &prev_url,
                        prev_id,
                        RetryPolicy::none(),
                    )
                    .is_err()
                    {
                        note_release_failure(portal, &prev_url.host, prev_id, Some(trace));
                    }
                }
                self.checkpoint = Some((step.url.clone(), cp_id));
                portal.note_healthy(&step.url.host);
                if self.recovering {
                    self.recovering = false;
                    trace.push(
                        "Portal",
                        "resume",
                        format!(
                            "chain resumed at {} (checkpoint {cp_id}, {rows} rows)",
                            step.alias
                        ),
                    );
                    portal.net.record_node_event(&portal.host, "resume");
                }
                self.executed.push(step.alias.clone());
                self.remaining.pop();
                Ok(())
            }
            Err(e) => {
                if !matches!(e, FederationError::NodeUnhealthy { .. }) {
                    return Err(e);
                }
                portal.note_failure(&e);
                // Keep the surviving prefix alive while re-planning. A
                // renewal that cannot be delivered is tallied: the
                // checkpoint keeps its old deadline and may lapse
                // before the re-planned chain returns to it.
                if let Some((cp_url, cp_id)) = &self.checkpoint {
                    if renew_lease(
                        &portal.net,
                        &portal.host,
                        cp_url,
                        "checkpoint",
                        *cp_id,
                        RetryPolicy::none(),
                    )
                    .is_err()
                    {
                        portal.net.record_renew_failure();
                        portal.net.record_node_event(&portal.host, "renew-failed");
                        trace.push(
                            "Portal",
                            "renew failed",
                            format!(
                                "checkpoint {cp_id} lease on {} not renewed; it may lapse \
                                 before the re-planned chain resumes",
                                cp_url.host
                            ),
                        );
                    }
                }
                if step.dropout {
                    // A drop-out archive is optional: continue without
                    // it and flag the result as degraded — unless the
                    // plan routed residuals or carried columns through
                    // it, where skipping would change the query's
                    // meaning rather than its completeness.
                    if !step.residual_sql.is_empty() || !step.carried.is_empty() {
                        return Err(e);
                    }
                    trace.push(
                        "Portal",
                        "degraded",
                        format!(
                            "optional archive {} unreachable; continuing without its \
                             drop-out filter",
                            step.alias
                        ),
                    );
                    portal.net.record_node_event(&portal.host, "degraded");
                    self.degradation.absorb(Degradation {
                        degraded: true,
                        dropped: vec![step.archive.clone()],
                    });
                    self.remaining.pop();
                    self.recovering = true;
                    Ok(())
                } else {
                    // A failing mandatory step is deferred to the
                    // earliest mandatory slot (it will execute last);
                    // the node may recover in the meantime.
                    let first_mandatory = self
                        .remaining
                        .iter()
                        .position(|s| !s.dropout)
                        .expect("the failing step itself is mandatory");
                    let tries = self.deferrals.entry(step.alias.clone()).or_insert(0);
                    if *tries >= MAX_STEP_DEFERRALS || self.remaining.len() - first_mandatory < 2 {
                        return Err(e);
                    }
                    *tries += 1;
                    let failed = self.remaining.pop().expect("indexed above");
                    self.remaining.insert(first_mandatory, failed);
                    replace_residuals(&mut self.remaining, &self.executed)?;
                    trace.push(
                        "Portal",
                        "replan",
                        format!(
                            "deferred {} after failure; new order: {}",
                            step.alias,
                            self.remaining
                                .iter()
                                .rev()
                                .map(|s| s.alias.as_str())
                                .collect::<Vec<_>>()
                                .join(" -> ")
                        ),
                    );
                    portal.net.record_node_event(&portal.host, "replan");
                    self.recovering = true;
                    Ok(())
                }
            }
        }
    }

    /// Collects the final checkpoint (the matched partial set) and
    /// releases it. The checkpoint is freed best-effort even when
    /// collection fails — a dead walk must not pin node resources until
    /// a janitor sweep.
    pub fn finish(mut self, portal: &Portal) -> Result<(PartialSet, StatsChain)> {
        let (url, id) = self
            .checkpoint
            .take()
            .ok_or_else(|| FederationError::planning("checkpointed chain committed no steps"))?;
        let collected =
            open_checkpoint(&portal.net, &portal.host, &url, &self.plan, id).and_then(|incoming| {
                match incoming {
                    IncomingPartial::Inline(set) => Ok(set),
                    IncomingPartial::Chunked(stream) => stream.collect_set(),
                }
            });
        if release_checkpoint(&portal.net, &portal.host, &url, id, RetryPolicy::none()).is_err() {
            note_release_failure(portal, &url.host, id, None);
        }
        Ok((collected?, self.stats))
    }

    /// Best-effort release of the retained checkpoint — the cleanup path
    /// for a failed or cancelled walk. Idempotent; if the holder is
    /// unreachable, its janitor reclaims the lease at TTL instead, but
    /// the failed call is still tallied in the network metrics.
    pub fn release(&mut self, portal: &Portal) {
        if let Some((url, id)) = self.checkpoint.take() {
            if release_checkpoint(&portal.net, &portal.host, &url, id, RetryPolicy::none()).is_err()
            {
                note_release_failure(portal, &url.host, id, None);
            }
        }
    }
}

/// Tallies one failed best-effort checkpoint release: bumps the
/// `release_failures` network metric, records a node event, and — when a
/// trace is in scope — an execution-trace entry. The checkpoint itself
/// is not leaked (the holder's janitor reclaims it at TTL); what must
/// not vanish is the evidence that cleanup RPCs are failing.
fn note_release_failure(
    portal: &Portal,
    holder: &str,
    id: u64,
    trace: Option<&mut ExecutionTrace>,
) {
    portal.net.record_release_failure();
    portal.net.record_node_event(&portal.host, "release-failed");
    if let Some(trace) = trace {
        trace.push(
            "Portal",
            "release failed",
            format!("checkpoint {id} on {holder} not released; its janitor reclaims it at TTL"),
        );
    }
}

/// Portal-private provenance column tagged onto each step's input during
/// a caching walk or repair probe. Node-side match and drop-out carry
/// input columns through untouched (the same property the shard executor
/// relies on for its `__src` tag), so the value survives the round trip
/// and tells the Portal which upstream tuple each output row extends.
/// Stripped before anything is cached or returned.
const CACHE_SRC_COL: &str = "__csrc";

/// Projects the tuples at `indices` out of `set` and appends a
/// [`CACHE_SRC_COL`] column holding each tuple's index in the *full*
/// upstream set — the provenance the repair merge keys on.
fn tag_with_cache_src(set: &PartialSet, indices: &[usize]) -> PartialSet {
    let mut columns = set.columns.clone();
    columns.push(ResultColumn::new(CACHE_SRC_COL, DataType::Id));
    let tuples = indices
        .iter()
        .map(|&i| {
            let t = &set.tuples[i];
            let mut values = t.values.clone();
            values.push(Value::Id(i as u64));
            PartialTuple {
                state: t.state,
                values,
            }
        })
        .collect();
    PartialSet { columns, tuples }
}

/// Removes the [`CACHE_SRC_COL`] column from a node reply, returning
/// the clean set plus each tuple's upstream provenance index.
fn strip_cache_src(mut set: PartialSet) -> Result<(PartialSet, Vec<u64>)> {
    let pos = set
        .columns
        .iter()
        .position(|c| c.name == CACHE_SRC_COL)
        .ok_or_else(|| FederationError::protocol("delta reply lost the cache provenance column"))?;
    set.columns.remove(pos);
    let mut srcs = Vec::with_capacity(set.tuples.len());
    for t in &mut set.tuples {
        match t.values.remove(pos) {
            Value::Id(s) => srcs.push(s),
            other => {
                return Err(FederationError::protocol(format!(
                    "cache provenance column held {other:?}, expected an id"
                )))
            }
        }
    }
    Ok((set, srcs))
}

/// Strips the provenance column from a delta-probe reply, checks the
/// remaining schema still matches the cached set, and groups the reply
/// tuples by upstream index (reply order preserved within each group).
fn group_delta_reply(
    reply: PartialSet,
    expect_columns: &[ResultColumn],
) -> Result<HashMap<u64, Vec<PartialTuple>>> {
    let (clean, srcs) = strip_cache_src(reply)?;
    if clean.columns.as_slice() != expect_columns {
        return Err(FederationError::protocol(
            "delta reply schema diverged from the cached set",
        ));
    }
    let mut groups: HashMap<u64, Vec<PartialTuple>> = HashMap::new();
    for (t, s) in clean.tuples.into_iter().zip(srcs) {
        groups.entry(s).or_default().push(t);
    }
    Ok(groups)
}

/// The stats of the one step a delta probe executed.
fn first_stats(chain: &StatsChain) -> StepStats {
    chain.entries.first().map(|(_, s)| *s).unwrap_or_default()
}

/// Folds a delta probe's stats into a cached step's: kernel-internal
/// counters accumulate (the repaired totals reflect the cached work
/// plus the delta work — an approximation documented in DESIGN.md),
/// while `tuples_in` / `tuples_out` are overwritten by the caller with
/// exact values for the repaired set.
fn combine_delta_stats(mut base: StepStats, delta: StepStats) -> StepStats {
    base.candidates_probed += delta.candidates_probed;
    base.candidates_examined += delta.candidates_examined;
    base.chi2_accepted += delta.chi2_accepted;
    base.scratch_reuse += delta.scratch_reuse;
    base.tile_builds += delta.tile_builds;
    base.tile_decodes += delta.tile_decodes;
    base.tile_hits += delta.tile_hits;
    base
}

/// Writes a cache-counter snapshot into the first entry of a stats
/// chain so the per-step trace lines and the `StatsChain` wire format
/// carry cache effectiveness alongside the kernel counters.
fn stamp_cache_counters(stats: &mut StatsChain, c: CacheCounters) {
    if let Some((_, s)) = stats.entries.first_mut() {
        s.cache_hits = c.hits as usize;
        s.cache_misses = c.misses as usize;
        s.cache_repairs = c.repairs as usize;
        s.cache_evictions = c.evictions as usize;
    }
}

/// Per-step repair state flowing down the chain in execution order: the
/// repaired upstream output, where each old cached upstream row moved
/// (`map[old] = Some(new)`, `None` if it was dropped), and which rows
/// are new since the entry was populated.
struct RepairedUpstream {
    set: PartialSet,
    map: Vec<Option<usize>>,
    fresh: Vec<usize>,
}

// Crate-internal accessors for the baseline strategies (baseline.rs).
impl Portal {
    pub(crate) fn run_performance_queries_for_baseline(
        &self,
        dq: &DecomposedQuery,
        trace: &mut ExecutionTrace,
    ) -> Result<HashMap<String, u64>> {
        self.run_performance_queries(dq, trace)
    }

    pub(crate) fn build_plan_for_baseline(
        &self,
        dq: &DecomposedQuery,
        counts: &HashMap<String, u64>,
    ) -> Result<ExecutionPlan> {
        self.build_plan(dq, counts)
    }

    pub(crate) fn net_clone(&self) -> SimNetwork {
        self.net.clone()
    }
}

/// Final projection, shared with the pull-to-portal baseline.
pub(crate) fn project_for_baseline(plan: &ExecutionPlan, set: PartialSet) -> Result<ResultSet> {
    project(plan, set)
}

/// Re-attaches residual clauses after a re-plan: each residual moves to
/// the earliest remaining processing position where every alias it
/// references is bound — either carried in the checkpointed tuples
/// (already executed) or joined by a remaining step.
fn replace_residuals(remaining: &mut [PlanStep], executed: &[String]) -> Result<()> {
    let pool: Vec<String> = remaining
        .iter_mut()
        .flat_map(|s| std::mem::take(&mut s.residual_sql))
        .collect();
    let n = remaining.len();
    let alias_order: Vec<String> = remaining.iter().map(|s| s.alias.clone()).collect();
    for sql in pool {
        let expr = skyquery_sql::parse_expr(&sql).map_err(FederationError::Sql)?;
        let mut max_pos = 0usize;
        for a in expr.referenced_aliases() {
            if executed.iter().any(|e| e == a) {
                continue; // already bound in the checkpointed tuples
            }
            let i = alias_order.iter().position(|x| x == a).ok_or_else(|| {
                FederationError::planning(format!("residual references unknown alias {a}"))
            })?;
            max_pos = max_pos.max(n - 1 - i);
        }
        remaining[n - 1 - max_pos].residual_sql.push(sql);
    }
    Ok(())
}

/// Processing position at which a residual becomes evaluable.
fn residual_position(
    residual: &Expr,
    processing_pos: &impl Fn(&str) -> Option<usize>,
) -> Result<usize> {
    let aliases = residual.referenced_aliases();
    let mut max_pos = 0;
    for a in aliases {
        let p = processing_pos(a).ok_or_else(|| {
            FederationError::planning(format!("residual references unknown alias {a}"))
        })?;
        max_pos = max_pos.max(p);
    }
    Ok(max_pos)
}

/// Applies the final ORDER BY / LIMIT / SELECT to the matched tuples.
fn project(plan: &ExecutionPlan, mut set: PartialSet) -> Result<ResultSet> {
    // ORDER BY over the carried columns, then LIMIT, then project.
    if !plan.order_by.is_empty() {
        let keys: Vec<(Expr, bool)> = plan
            .order_by
            .iter()
            .map(|(sql, desc)| {
                Ok((
                    skyquery_sql::parse_expr(sql).map_err(FederationError::Sql)?,
                    *desc,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        let mut keyed: Vec<(Vec<Value>, crate::xmatch::PartialTuple)> =
            Vec::with_capacity(set.tuples.len());
        for tuple in std::mem::take(&mut set.tuples) {
            let b = TupleBindings {
                columns: &set.columns,
                values: &tuple.values,
            };
            let k: Vec<Value> = keys
                .iter()
                .map(|(e, _)| e.eval(&b).map_err(FederationError::Sql))
                .collect::<Result<_>>()?;
            keyed.push((k, tuple));
        }
        keyed.sort_by(|(a, _), (b, _)| {
            for (i, (_, desc)) in keys.iter().enumerate() {
                let ord = a[i].key_cmp(&b[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        set.tuples = keyed.into_iter().map(|(_, t)| t).collect();
    }
    if let Some(n) = plan.limit {
        set.tuples.truncate(n);
    }

    let mut items: Vec<(Expr, String)> = Vec::with_capacity(plan.select.len());
    for (sql, alias) in &plan.select {
        let expr = skyquery_sql::parse_expr(sql).map_err(FederationError::Sql)?;
        let name = alias.clone().unwrap_or_else(|| sql.clone());
        items.push((expr, name));
    }

    // Evaluate all rows first, then infer column types from the values
    // (plain column references reuse the carried column's declared type).
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(set.tuples.len());
    for tuple in &set.tuples {
        let b = TupleBindings {
            columns: &set.columns,
            values: &tuple.values,
        };
        let mut row = Vec::with_capacity(items.len());
        for (expr, _) in &items {
            row.push(expr.eval(&b).map_err(FederationError::Sql)?);
        }
        rows.push(row);
    }

    let columns: Vec<ResultColumn> = items
        .iter()
        .enumerate()
        .map(|(i, (expr, name))| {
            let dtype = match expr {
                Expr::Column { alias, column } => set
                    .columns
                    .iter()
                    .find(|c| c.name == format!("{alias}.{column}"))
                    .map(|c| c.dtype),
                _ => None,
            }
            .or_else(|| rows.iter().filter_map(|r| r[i].data_type()).next())
            .unwrap_or(DataType::Float);
            ResultColumn::new(name.clone(), dtype)
        })
        .collect();

    let mut rs = ResultSet::new(columns);
    for row in rows {
        rs.push_row(row)?;
    }
    Ok(rs)
}

impl Endpoint for Portal {
    fn handle(&self, _net: &SimNetwork, req: HttpRequest) -> HttpResponse {
        let body = match std::str::from_utf8(&req.body) {
            Ok(b) => b,
            Err(_) => {
                return HttpResponse::soap_fault(
                    skyquery_soap::SoapFault::client("request body is not UTF-8").to_xml(),
                )
            }
        };
        let call = match RpcCall::parse(body) {
            Ok(c) => c,
            Err(e) => {
                return HttpResponse::soap_fault(
                    skyquery_soap::SoapFault::client(e.to_string()).to_xml(),
                )
            }
        };
        let result = match call.method.as_str() {
            // Registration service (§5.1): "When a SkyNode wishes to join
            // the SkyQuery federation; it calls the Registration service
            // of the Portal."
            "Register" => call
                .require("url")
                .map_err(FederationError::Soap)
                .and_then(|v| {
                    let url_str = v
                        .as_str()
                        .ok_or_else(|| FederationError::protocol("url must be a string"))?;
                    let url = Url::parse(url_str).map_err(FederationError::Net)?;
                    let reg = self.register_node(&url)?;
                    Ok(RpcResponse::new("Register")
                        .result("archive", SoapValue::Str(reg.archive))
                        .result("shards", SoapValue::Int(reg.shard_count as i64))
                        .result("replicas", SoapValue::Int(reg.replica_count as i64)))
                }),
            // The SkyQuery service: accepts the user query from a Client.
            "SkyQuery" => call
                .require("sql")
                .map_err(FederationError::Soap)
                .and_then(|v| {
                    let sql = v
                        .as_str()
                        .ok_or_else(|| FederationError::protocol("sql must be a string"))?;
                    let (result, trace) = self.submit(sql)?;
                    let mut trace_el = skyquery_xml::Element::new("Trace");
                    for e in trace.events() {
                        trace_el = trace_el.with_child(
                            skyquery_xml::Element::new("Event")
                                .with_attr("seq", e.seq.to_string())
                                .with_attr("actor", e.actor.clone())
                                .with_attr("action", e.action.clone())
                                .with_attr("elapsed_us", e.elapsed.as_micros().to_string())
                                .with_text(e.detail.clone()),
                        );
                    }
                    Ok(RpcResponse::new("SkyQuery")
                        .result("result", SoapValue::Table(result.to_votable("result")))
                        // Partial-result honesty crosses the wire too:
                        // a remote client sees the same degraded flag a
                        // local caller reads off the ResultSet.
                        .result("degraded", SoapValue::Bool(result.degraded))
                        .result("dropped", SoapValue::Str(result.dropped_archives.join(",")))
                        .result("trace", SoapValue::Xml(trace_el)))
                }),
            other => Err(FederationError::protocol(format!(
                "unknown portal service {other}"
            ))),
        };
        match result {
            Ok(resp) => HttpResponse::ok(resp.to_xml()),
            Err(e) => HttpResponse::soap_fault(e.to_fault().to_xml()),
        }
    }
}

/// The union of the input tuples' probe-ball declination spans, in
/// degrees, padded with the same slack the zone kernels use for band
/// selection. `None` when no tuple has a probe ball — nothing can match
/// at any shard.
fn probe_dec_span(input: &PartialSet, threshold: f64, sigma_arcsec: f64) -> Option<(f64, f64)> {
    let sigma_rad = (sigma_arcsec / 3600.0).to_radians();
    let mut span: Option<(f64, f64)> = None;
    for tuple in &input.tuples {
        let Some(best) = tuple.state.best_position() else {
            continue;
        };
        let dec = SkyPoint::from_vec3(best).dec_deg;
        let r_deg = tuple.state.search_radius(threshold, sigma_rad).to_degrees() + 1e-9;
        let (lo, hi) = (dec - r_deg, dec + r_deg);
        span = Some(match span {
            None => (lo, hi),
            Some((a, b)) => (a.min(lo), b.max(hi)),
        });
    }
    span
}
