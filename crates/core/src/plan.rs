//! The federated query execution plan (paper §5.3).
//!
//! "The federated query execution plan consists of a list of ordered
//! pairs, each containing a query and the URL information of the SkyNode
//! where it would be executed. The list is in decreasing order of the
//! count star values returned by the performance queries, with the drop
//! out archives, if any, at the beginning of the list."
//!
//! The plan travels as a SOAP `xml` parameter down the daisy chain, so it
//! round-trips through [`ExecutionPlan::to_element`] /
//! [`ExecutionPlan::from_element`]. Per-archive predicates and residual
//! clauses are carried as dialect SQL text — each autonomous SkyNode
//! parses them with its own copy of the dialect parser.

use skyquery_net::Url;
use skyquery_sql::{parse_expr, Expr};
use skyquery_xml::Element;

use crate::region::Region;

use crate::error::{FederationError, Result};
use crate::meta::ZoneExtent;
use crate::retry::RetryPolicy;
use crate::xmatch::{MatchKernel, StepConfig};

/// One physical shard of a sharded archive addressed by a plan step: the
/// SkyNode that owns one declination-zone range of the archive, plus any
/// sibling replicas holding an identical copy of that range.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanShard {
    /// SOAP endpoint of the shard's primary SkyNode (the preferred
    /// scatter target).
    pub url: Url,
    /// The zone range this shard owns.
    pub extent: ZoneExtent,
    /// Sibling replicas serving an identical copy of this zone range, in
    /// deterministic (host) order. The scatter driver fails over — or
    /// hedges — to these when the primary proves unhealthy or slow.
    /// Empty (the legacy wire default) means the range is unreplicated.
    pub replicas: Vec<Url>,
}

/// One entry of the plan list.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// Alias in the user query (`O`, `T`, `P`…).
    pub alias: String,
    /// Archive name (`SDSS`…).
    pub archive: String,
    /// The table queried at this archive.
    pub table: String,
    /// SOAP endpoint of the SkyNode (the primary shard when the archive
    /// is sharded).
    pub url: Url,
    /// Whether this archive is a drop-out (`!` in XMATCH).
    pub dropout: bool,
    /// Survey positional error, arcseconds.
    pub sigma_arcsec: f64,
    /// This archive's local predicate as dialect SQL (None = no filter).
    pub local_sql: Option<String>,
    /// Columns of this archive carried along the chain.
    pub carried: Vec<String>,
    /// Residual (cross-archive) conjuncts applied right after this step's
    /// processing, as dialect SQL.
    pub residual_sql: Vec<String>,
    /// The count-star estimate that ordered this step (None for
    /// drop-outs, which get no performance query). For a sharded archive
    /// this is the sum of the shards' estimates.
    pub count_estimate: Option<u64>,
    /// The physical shards of this archive, by zone range, when the
    /// archive is split across several SkyNodes. Empty (the legacy wire
    /// default) means the single node at `url` owns the whole archive
    /// and the step executes un-scattered.
    pub shards: Vec<PlanShard>,
}

/// The complete plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// XMATCH threshold in standard deviations.
    pub threshold: f64,
    /// The AREA/POLYGON clause, if present.
    pub region: Option<Region>,
    /// Steps in **list order**: drop-outs first, then mandatory archives
    /// in decreasing count order. Execution starts at the *last* step
    /// (the seed) and results flow back toward index 0.
    pub steps: Vec<PlanStep>,
    /// SELECT items as `(expression SQL, optional output alias)`.
    pub select: Vec<(String, Option<String>)>,
    /// ORDER BY keys applied by the Portal before relaying: `(expression
    /// SQL, descending)`.
    pub order_by: Vec<(String, bool)>,
    /// Row-count cap applied after ordering.
    pub limit: Option<usize>,
    /// Maximum SOAP message size every participant's parser accepts (the
    /// paper's ~10 MB limit).
    pub max_message_bytes: usize,
    /// Whether responders may split oversized partial results into chunks
    /// (§6 workaround). With chunking off, an oversized partial result
    /// faults — the pre-workaround behaviour.
    pub chunking: bool,
    /// Worker threads each node's cross-match engine may use per step.
    /// 1 (the default) keeps the sequential path.
    pub xmatch_workers: usize,
    /// Declination zone height in degrees for the parallel zone engine.
    pub zone_height_deg: f64,
    /// Whether oversized partial results are split on declination-zone
    /// boundaries (carrying a sequence column and per-chunk zone ranges)
    /// so receivers can pipeline zone processing with the transfer.
    /// `false` keeps the legacy byte-budget split.
    pub zone_chunking: bool,
    /// Candidate-probe kernel each node uses for its match/drop-out step.
    /// Both kernels produce byte-identical results, so this is purely a
    /// performance knob and is safe to default when absent on the wire.
    pub kernel: MatchKernel,
    /// Retry policy every participant applies to its onward calls
    /// (daisy-chain hops, `FetchChunk` continuations). Travels with the
    /// plan so one submission retries consistently along the chain.
    pub retry: RetryPolicy,
    /// TTL, in simulated seconds, of every lease this submission creates
    /// on a SkyNode — checkpointed partial sets, chunked-transfer
    /// sessions, staged exchange transactions. A node's janitor sweep
    /// reclaims anything whose lease expires unrenewed, so an abandoned
    /// query can never leak node-side state forever.
    pub lease_ttl_s: f64,
}

/// Default parser limit: the ~10 MB the paper reports.
pub const DEFAULT_MAX_MESSAGE_BYTES: usize = 10 * 1024 * 1024;

/// Default lease TTL in simulated seconds. Generous relative to any
/// single submission (whose waits are dominated by retry backoff, itself
/// bounded by the 30 s default deadline per call), so a live query never
/// loses a lease, while an abandoned one is reclaimed on the next sweep.
pub const DEFAULT_LEASE_TTL_S: f64 = 300.0;

/// Default declination zone height for the parallel zone engine, degrees.
/// Candidate search radii are arcsecond-scale, so even a 0.1° zone dwarfs
/// the overlap margin while still slicing a survey cap into enough zones
/// to keep a worker pool busy.
pub const DEFAULT_ZONE_HEIGHT_DEG: f64 = 0.1;

/// Upper bound on plan length a node will accept. Each step is one
/// archive in the daisy chain, and every hop nests a synchronous call
/// frame, so an attacker-controlled step count is an attacker-controlled
/// recursion depth: decoding rejects absurd plans outright. Real
/// federations join a handful of archives; 64 is far beyond any query
/// the dialect can express while keeping the chain's stack depth sane.
pub const MAX_PLAN_STEPS: usize = 64;

impl ExecutionPlan {
    /// Index of the seed step (the first to execute).
    pub fn seed_index(&self) -> usize {
        self.steps.len() - 1
    }

    /// Whether any step addresses a sharded archive — such a plan is
    /// driven by the Portal's scatter-gather executor rather than the
    /// node-to-node daisy chain.
    pub fn has_shards(&self) -> bool {
        self.steps.iter().any(|s| !s.shards.is_empty())
    }

    /// Builds the [`StepConfig`] the cross-match stored procedure needs at
    /// step `index`, parsing the carried SQL fragments.
    pub fn step_config(&self, index: usize) -> Result<StepConfig> {
        let step = self
            .steps
            .get(index)
            .ok_or_else(|| FederationError::protocol(format!("plan has no step {index}")))?;
        let local_predicate = match &step.local_sql {
            Some(sql) => Some(parse_expr(sql).map_err(FederationError::Sql)?),
            None => None,
        };
        Ok(StepConfig {
            alias: step.alias.clone(),
            table: step.table.clone(),
            sigma_rad: (step.sigma_arcsec / 3600.0).to_radians(),
            threshold: self.threshold,
            region: self.region.clone(),
            local_predicate,
            carried_columns: step.carried.clone(),
            xmatch_workers: self.xmatch_workers,
            zone_height_deg: self.zone_height_deg,
            kernel: self.kernel,
        })
    }

    /// Canonical cache key over the fields that determine the *matched
    /// partial set*: χ² threshold, region, kernel, and each step's
    /// identity (alias, archive, table, shards), match parameters
    /// (σ, drop-out), and SQL fragments (local predicate, carried
    /// columns, residuals) in chain order. Execution knobs — message
    /// size, chunking, worker count, retry policy, lease TTL — and the
    /// projection (`SELECT` list, `ORDER BY`, `LIMIT`, applied after
    /// the partial set is final) are deliberately excluded: two plans
    /// that differ only in those produce byte-identical partial sets,
    /// so they share a cache entry.
    pub fn cache_signature(&self) -> String {
        use std::fmt::Write;
        let mut sig = String::new();
        let _ = write!(
            sig,
            "chi2={:?};region={:?};kernel={}",
            self.threshold,
            self.region,
            self.kernel.as_str()
        );
        for step in &self.steps {
            let _ = write!(
                sig,
                ";step[alias={},archive={},table={},url={},dropout={},sigma={:?},\
                 local={:?},carried={:?},residual={:?},shards=[",
                step.alias,
                step.archive,
                step.table,
                step.url.host,
                step.dropout,
                step.sigma_arcsec,
                step.local_sql,
                step.carried,
                step.residual_sql,
            );
            for shard in &step.shards {
                let _ = write!(
                    sig,
                    "({},{:?},{:?})",
                    shard.url.host, shard.extent.dec_lo_deg, shard.extent.dec_hi_deg
                );
            }
            sig.push_str("]]");
        }
        sig
    }

    /// The residual expressions attached to step `index`.
    pub fn residuals(&self, index: usize) -> Result<Vec<Expr>> {
        let step = self
            .steps
            .get(index)
            .ok_or_else(|| FederationError::protocol(format!("plan has no step {index}")))?;
        step.residual_sql
            .iter()
            .map(|s| parse_expr(s).map_err(FederationError::Sql))
            .collect()
    }

    /// Serializes to the wire element.
    pub fn to_element(&self) -> Element {
        let mut plan = Element::new("Plan")
            .with_attr("threshold", format!("{:?}", self.threshold))
            .with_attr("max_message_bytes", self.max_message_bytes.to_string())
            .with_attr("chunking", self.chunking.to_string())
            .with_attr("xmatch_workers", self.xmatch_workers.to_string())
            .with_attr("zone_height_deg", format!("{:?}", self.zone_height_deg))
            .with_attr("zone_chunking", self.zone_chunking.to_string())
            .with_attr("kernel", self.kernel.as_str())
            .with_attr("retry_attempts", self.retry.max_attempts.to_string())
            .with_attr(
                "retry_backoff_s",
                format!("{:?}", self.retry.backoff_base_s),
            )
            .with_attr("retry_factor", format!("{:?}", self.retry.backoff_factor))
            .with_attr("retry_deadline_s", format!("{:?}", self.retry.deadline_s))
            .with_attr("retry_jitter", format!("{:?}", self.retry.jitter))
            .with_attr("lease_ttl_s", format!("{:?}", self.lease_ttl_s));
        if let Some(r) = &self.region {
            plan = plan.with_child(r.to_element());
        }
        let mut select = Element::new("Select");
        for (expr, alias) in &self.select {
            let mut item = Element::new("Item").with_attr("expr", expr.clone());
            if let Some(a) = alias {
                item = item.with_attr("as", a.clone());
            }
            select = select.with_child(item);
        }
        plan = plan.with_child(select);
        if !self.order_by.is_empty() || self.limit.is_some() {
            let mut ob = Element::new("OrderLimit");
            if let Some(n) = self.limit {
                ob = ob.with_attr("limit", n.to_string());
            }
            for (expr, desc) in &self.order_by {
                ob = ob.with_child(
                    Element::new("Key")
                        .with_attr("expr", expr.clone())
                        .with_attr("desc", desc.to_string()),
                );
            }
            plan = plan.with_child(ob);
        }
        for step in &self.steps {
            let mut se = Element::new("Step")
                .with_attr("alias", step.alias.clone())
                .with_attr("archive", step.archive.clone())
                .with_attr("table", step.table.clone())
                .with_attr("url", step.url.to_string())
                .with_attr("dropout", step.dropout.to_string())
                .with_attr("sigma_arcsec", format!("{:?}", step.sigma_arcsec));
            if let Some(c) = step.count_estimate {
                se = se.with_attr("count", c.to_string());
            }
            if let Some(sql) = &step.local_sql {
                se = se.with_child(Element::new("Local").with_text(sql.clone()));
            }
            for col in &step.carried {
                se = se.with_child(Element::new("Carry").with_text(col.clone()));
            }
            for r in &step.residual_sql {
                se = se.with_child(Element::new("Residual").with_text(r.clone()));
            }
            for shard in &step.shards {
                let mut sh = Element::new("Shard")
                    .with_attr("url", shard.url.to_string())
                    .with_attr("dec_lo", format!("{:?}", shard.extent.dec_lo_deg))
                    .with_attr("dec_hi", format!("{:?}", shard.extent.dec_hi_deg));
                for r in &shard.replicas {
                    sh = sh.with_child(Element::new("Replica").with_attr("url", r.to_string()));
                }
                se = se.with_child(sh);
            }
            plan = plan.with_child(se);
        }
        plan
    }

    /// Parses the wire element.
    pub fn from_element(e: &Element) -> Result<ExecutionPlan> {
        if e.name != "Plan" {
            return Err(FederationError::protocol(format!(
                "expected Plan element, found {}",
                e.name
            )));
        }
        let threshold: f64 = e
            .attr("threshold")
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| FederationError::protocol("Plan missing threshold"))?;
        let region = match e.children_named("Region").next() {
            Some(re) => Some(Region::from_element(re)?),
            None => None,
        };
        let select = match e.children_named("Select").next() {
            Some(se) => se
                .children_named("Item")
                .map(|item| -> Result<(String, Option<String>)> {
                    let expr = item
                        .attr("expr")
                        .ok_or_else(|| FederationError::protocol("Select Item missing expr"))?
                        .to_string();
                    Ok((expr, item.attr("as").map(String::from)))
                })
                .collect::<Result<Vec<_>>>()?,
            None => Vec::new(),
        };
        let mut steps = Vec::new();
        for se in e.children_named("Step") {
            let attr = |name: &str| {
                se.attr(name).ok_or_else(|| {
                    FederationError::protocol(format!("Step missing attribute {name}"))
                })
            };
            steps.push(PlanStep {
                alias: attr("alias")?.to_string(),
                archive: attr("archive")?.to_string(),
                table: attr("table")?.to_string(),
                url: Url::parse(attr("url")?).map_err(FederationError::Net)?,
                dropout: attr("dropout")? == "true",
                sigma_arcsec: attr("sigma_arcsec")?
                    .parse()
                    .map_err(|_| FederationError::protocol("bad sigma_arcsec"))?,
                local_sql: se.children_named("Local").next().map(|l| l.text.clone()),
                carried: se.children_named("Carry").map(|c| c.text.clone()).collect(),
                residual_sql: se
                    .children_named("Residual")
                    .map(|r| r.text.clone())
                    .collect(),
                count_estimate: se.attr("count").and_then(|c| c.parse().ok()),
                // Plans from peers predating sharded archives carry no
                // Shard children; empty means the single node at `url`.
                shards: se
                    .children_named("Shard")
                    .map(|sh| -> Result<PlanShard> {
                        let url = sh.attr("url").ok_or_else(|| {
                            FederationError::protocol("Shard missing attribute url")
                        })?;
                        let dec = |name: &str| -> Result<f64> {
                            sh.attr(name)
                                .and_then(|v| v.parse::<f64>().ok())
                                .filter(|v| v.is_finite())
                                .ok_or_else(|| {
                                    FederationError::protocol(format!("Shard bad {name}"))
                                })
                        };
                        Ok(PlanShard {
                            url: Url::parse(url).map_err(FederationError::Net)?,
                            extent: ZoneExtent {
                                dec_lo_deg: dec("dec_lo")?,
                                dec_hi_deg: dec("dec_hi")?,
                            },
                            // Plans from peers predating replication
                            // carry no Replica children; empty means the
                            // primary is the range's sole owner.
                            replicas: sh
                                .children_named("Replica")
                                .map(|r| -> Result<Url> {
                                    let url = r.attr("url").ok_or_else(|| {
                                        FederationError::protocol("Replica missing attribute url")
                                    })?;
                                    Url::parse(url).map_err(FederationError::Net)
                                })
                                .collect::<Result<Vec<_>>>()?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?,
            });
        }
        if steps.is_empty() {
            return Err(FederationError::protocol("Plan has no steps"));
        }
        if steps.len() > MAX_PLAN_STEPS {
            return Err(FederationError::protocol(format!(
                "plan has {} steps, more than the {MAX_PLAN_STEPS} this node accepts",
                steps.len()
            )));
        }
        let (order_by, limit) = match e.children_named("OrderLimit").next() {
            Some(ol) => (
                ol.children_named("Key")
                    .map(|k| -> Result<(String, bool)> {
                        Ok((
                            k.attr("expr")
                                .ok_or_else(|| {
                                    FederationError::protocol("OrderLimit Key missing expr")
                                })?
                                .to_string(),
                            k.attr("desc") == Some("true"),
                        ))
                    })
                    .collect::<Result<Vec<_>>>()?,
                ol.attr("limit").and_then(|v| v.parse().ok()),
            ),
            None => (Vec::new(), None),
        };
        Ok(ExecutionPlan {
            threshold,
            region,
            steps,
            select,
            order_by,
            limit,
            max_message_bytes: e
                .attr("max_message_bytes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_MAX_MESSAGE_BYTES),
            chunking: e.attr("chunking").map(|v| v == "true").unwrap_or(true),
            // Plans from older peers omit the zone-engine knobs; absent
            // (or degenerate) values fall back to the sequential path.
            xmatch_workers: e
                .attr("xmatch_workers")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1)
                .max(1),
            zone_height_deg: e
                .attr("zone_height_deg")
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|h| h.is_finite() && *h > 0.0)
                .unwrap_or(DEFAULT_ZONE_HEIGHT_DEG),
            // Plans from peers predating zone-aware transfer omit the
            // attribute; absent means the legacy byte-budget split.
            zone_chunking: e
                .attr("zone_chunking")
                .map(|v| v == "true")
                .unwrap_or(false),
            // Absent or unknown kernel names fall back to the default —
            // both kernels are byte-identical, so mixed-version chains
            // stay correct either way.
            kernel: e
                .attr("kernel")
                .and_then(MatchKernel::parse)
                .unwrap_or_default(),
            // Plans from peers predating the retry layer omit the retry
            // attributes; each falls back to the default policy's value
            // independently, so a partially-attributed plan stays sane.
            retry: {
                let default = RetryPolicy::default();
                RetryPolicy {
                    max_attempts: e
                        .attr("retry_attempts")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(default.max_attempts)
                        .max(1),
                    backoff_base_s: e
                        .attr("retry_backoff_s")
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|v| v.is_finite() && *v >= 0.0)
                        .unwrap_or(default.backoff_base_s),
                    backoff_factor: e
                        .attr("retry_factor")
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|v| v.is_finite() && *v >= 1.0)
                        .unwrap_or(default.backoff_factor),
                    deadline_s: e
                        .attr("retry_deadline_s")
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|v| v.is_finite() && *v > 0.0)
                        .unwrap_or(default.deadline_s),
                    jitter: e
                        .attr("retry_jitter")
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|v| v.is_finite() && (0.0..1.0).contains(v))
                        .unwrap_or(default.jitter),
                }
            },
            // Plans from peers predating leases omit the attribute; the
            // default TTL keeps their node-side state reclaimable.
            lease_ttl_s: e
                .attr("lease_ttl_s")
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|v| v.is_finite() && *v > 0.0)
                .unwrap_or(DEFAULT_LEASE_TTL_S),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_plan() -> ExecutionPlan {
        ExecutionPlan {
            threshold: 3.5,
            region: Some(Region::Circle {
                center: skyquery_htm::SkyPoint::from_radec_deg(185.0, -0.5),
                radius_rad: (4.5 / 60.0_f64).to_radians(),
            }),
            steps: vec![
                PlanStep {
                    alias: "P".into(),
                    archive: "FIRST".into(),
                    table: "Primary_Object".into(),
                    url: Url::new("first.skyquery.net", "/soap"),
                    dropout: true,
                    sigma_arcsec: 1.0,
                    local_sql: None,
                    carried: vec![],
                    residual_sql: vec![],
                    count_estimate: None,
                    shards: vec![],
                },
                PlanStep {
                    alias: "O".into(),
                    archive: "SDSS".into(),
                    table: "Photo_Object".into(),
                    url: Url::new("sdss.skyquery.net", "/soap"),
                    dropout: false,
                    sigma_arcsec: 0.1,
                    local_sql: Some("O.type = 'GALAXY'".into()),
                    carried: vec!["object_id".into(), "i_flux".into()],
                    residual_sql: vec!["O.i_flux - T.i_flux > 2".into()],
                    count_estimate: Some(1200),
                    shards: vec![],
                },
                PlanStep {
                    alias: "T".into(),
                    archive: "TWOMASS".into(),
                    table: "Photo_Primary".into(),
                    url: Url::new("twomass.skyquery.net", "/soap"),
                    dropout: false,
                    sigma_arcsec: 0.3,
                    local_sql: None,
                    carried: vec!["object_id".into(), "i_flux".into()],
                    residual_sql: vec![],
                    count_estimate: Some(800),
                    shards: vec![],
                },
            ],
            select: vec![
                ("O.object_id".into(), None),
                ("T.object_id".into(), Some("t_id".into())),
            ],
            order_by: vec![("O.object_id".into(), true)],
            limit: Some(100),
            max_message_bytes: DEFAULT_MAX_MESSAGE_BYTES,
            chunking: true,
            xmatch_workers: 4,
            zone_height_deg: 0.25,
            zone_chunking: true,
            kernel: MatchKernel::Htm,
            retry: RetryPolicy {
                max_attempts: 4,
                backoff_base_s: 0.02,
                backoff_factor: 3.0,
                deadline_s: 12.0,
                jitter: 0.25,
            },
            lease_ttl_s: 120.0,
        }
    }

    #[test]
    fn element_roundtrip() {
        let p = demo_plan();
        let back = ExecutionPlan::from_element(&p.to_element()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn cache_signature_tracks_semantics_not_execution_knobs() {
        let base = demo_plan();
        // Execution knobs and the projection don't change the matched
        // partial set, so they must not change the signature.
        let mut tuned = demo_plan();
        tuned.max_message_bytes = 1;
        tuned.chunking = !tuned.chunking;
        tuned.xmatch_workers = 7;
        tuned.retry = RetryPolicy::none();
        tuned.lease_ttl_s = 1.0;
        tuned.limit = Some(3);
        tuned.order_by = vec![("O.ra".into(), false)];
        assert_eq!(base.cache_signature(), tuned.cache_signature());
        // Semantic fields do.
        let mut threshold = demo_plan();
        threshold.threshold += 0.5;
        assert_ne!(base.cache_signature(), threshold.cache_signature());
        let mut kernel = demo_plan();
        kernel.kernel = MatchKernel::Batch;
        assert_ne!(base.cache_signature(), kernel.cache_signature());
        let mut sigma = demo_plan();
        sigma.steps[0].sigma_arcsec += 0.1;
        assert_ne!(base.cache_signature(), sigma.cache_signature());
        let mut fewer = demo_plan();
        fewer.steps.pop();
        assert_ne!(base.cache_signature(), fewer.cache_signature());
    }

    #[test]
    fn kernel_name_roundtrips_for_every_variant() {
        for kernel in [MatchKernel::Columnar, MatchKernel::Htm, MatchKernel::Batch] {
            let mut p = demo_plan();
            p.kernel = kernel;
            let back = ExecutionPlan::from_element(&p.to_element()).unwrap();
            assert_eq!(back.kernel, kernel);
        }
    }

    #[test]
    fn roundtrip_through_xml_text() {
        let p = demo_plan();
        let xml = p.to_element().to_xml();
        let back = ExecutionPlan::from_element(&Element::parse(&xml).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn step_config_extraction() {
        let p = demo_plan();
        assert_eq!(p.seed_index(), 2);
        let cfg = p.step_config(1).unwrap();
        assert_eq!(cfg.alias, "O");
        assert_eq!(cfg.table, "Photo_Object");
        assert!((cfg.threshold - 3.5).abs() < 1e-12);
        assert!(cfg.local_predicate.is_some());
        let (center, radius) = match cfg.region.clone().unwrap() {
            Region::Circle { center, radius_rad } => (center, radius_rad),
            other => panic!("{other:?}"),
        };
        assert!((center.ra_deg - 185.0).abs() < 1e-12);
        assert!((radius.to_degrees() - 0.075).abs() < 1e-12);
        assert_eq!(cfg.carried_columns, vec!["object_id", "i_flux"]);
        // σ converted to radians.
        assert!((cfg.sigma_rad - (0.1 / 3600.0_f64).to_radians()).abs() < 1e-18);
        assert!(p.step_config(9).is_err());
    }

    #[test]
    fn residual_parsing() {
        let p = demo_plan();
        let r = p.residuals(1).unwrap();
        assert_eq!(r.len(), 1);
        assert!(p.residuals(2).unwrap().is_empty());
        assert!(p.residuals(7).is_err());
    }

    #[test]
    fn zone_knobs_roundtrip_and_reach_step_config() {
        let p = demo_plan();
        let back = ExecutionPlan::from_element(&p.to_element()).unwrap();
        assert_eq!(back.xmatch_workers, 4);
        assert!((back.zone_height_deg - 0.25).abs() < 1e-12);
        let cfg = back.step_config(1).unwrap();
        assert_eq!(cfg.xmatch_workers, 4);
        assert!((cfg.zone_height_deg - 0.25).abs() < 1e-12);
    }

    #[test]
    fn legacy_plans_default_to_sequential() {
        // A plan element written before the zone knobs existed.
        let strip = |el: &mut Element| {
            el.attributes
                .retain(|(k, _)| k != "xmatch_workers" && k != "zone_height_deg");
        };
        let mut el = demo_plan().to_element();
        strip(&mut el);
        let p = ExecutionPlan::from_element(&el).unwrap();
        assert_eq!(p.xmatch_workers, 1);
        assert!((p.zone_height_deg - DEFAULT_ZONE_HEIGHT_DEG).abs() < 1e-12);
        // Degenerate values are rejected in favour of safe defaults.
        let mut el = demo_plan().to_element();
        strip(&mut el);
        let el = el
            .with_attr("xmatch_workers", "0")
            .with_attr("zone_height_deg", "-3.0");
        let p = ExecutionPlan::from_element(&el).unwrap();
        assert_eq!(p.xmatch_workers, 1);
        assert!(p.zone_height_deg > 0.0);
    }

    #[test]
    fn legacy_plans_default_to_columnar_kernel() {
        // Plans from peers predating the kernel knob omit the attribute;
        // unknown names also fall back (both kernels are byte-identical,
        // so this is always safe).
        let mut el = demo_plan().to_element();
        el.attributes.retain(|(k, _)| k != "kernel");
        let p = ExecutionPlan::from_element(&el).unwrap();
        assert_eq!(p.kernel, MatchKernel::Columnar);
        let mut el = demo_plan().to_element();
        el.attributes.retain(|(k, _)| k != "kernel");
        let el = el.with_attr("kernel", "quadtree");
        let p = ExecutionPlan::from_element(&el).unwrap();
        assert_eq!(p.kernel, MatchKernel::Columnar);
        // A named kernel round-trips.
        let p = ExecutionPlan::from_element(&demo_plan().to_element()).unwrap();
        assert_eq!(p.kernel, MatchKernel::Htm);
    }

    #[test]
    fn legacy_plans_default_to_byte_budget_chunking() {
        // A plan element written before the zone-aware transfer existed
        // must fall back to the plain byte-budget split.
        let mut el = demo_plan().to_element();
        el.attributes.retain(|(k, _)| k != "zone_chunking");
        let p = ExecutionPlan::from_element(&el).unwrap();
        assert!(!p.zone_chunking);
        // The attribute round-trips when present.
        let back = ExecutionPlan::from_element(&demo_plan().to_element()).unwrap();
        assert!(back.zone_chunking);
    }

    #[test]
    fn legacy_plans_default_to_default_retry_policy() {
        // Plans from peers predating the retry layer omit the attributes.
        let mut el = demo_plan().to_element();
        el.attributes.retain(|(k, _)| !k.starts_with("retry_"));
        let p = ExecutionPlan::from_element(&el).unwrap();
        assert_eq!(p.retry, RetryPolicy::default());
        // Degenerate values are clamped/defaulted.
        let mut el = demo_plan().to_element();
        el.attributes.retain(|(k, _)| !k.starts_with("retry_"));
        let el = el
            .with_attr("retry_attempts", "0")
            .with_attr("retry_backoff_s", "-1.0")
            .with_attr("retry_factor", "0.1")
            .with_attr("retry_deadline_s", "NaN");
        let p = ExecutionPlan::from_element(&el).unwrap();
        assert_eq!(p.retry.max_attempts, 1);
        assert_eq!(
            p.retry.backoff_base_s,
            RetryPolicy::default().backoff_base_s
        );
        assert_eq!(
            p.retry.backoff_factor,
            RetryPolicy::default().backoff_factor
        );
        assert_eq!(p.retry.deadline_s, RetryPolicy::default().deadline_s);
        // A customized policy round-trips (exercised by element_roundtrip
        // too, since demo_plan carries a non-default policy).
        let back = ExecutionPlan::from_element(&demo_plan().to_element()).unwrap();
        assert_eq!(back.retry.max_attempts, 4);
        assert_eq!(back.retry.backoff_factor, 3.0);
    }

    #[test]
    fn legacy_plans_default_to_default_lease_ttl() {
        // Plans from peers predating leases omit the attribute.
        let mut el = demo_plan().to_element();
        el.attributes.retain(|(k, _)| k != "lease_ttl_s");
        let p = ExecutionPlan::from_element(&el).unwrap();
        assert_eq!(p.lease_ttl_s, DEFAULT_LEASE_TTL_S);
        // Degenerate TTLs fall back rather than making leases stillborn.
        let mut el = demo_plan().to_element();
        el.attributes.retain(|(k, _)| k != "lease_ttl_s");
        let el = el.with_attr("lease_ttl_s", "-5.0");
        let p = ExecutionPlan::from_element(&el).unwrap();
        assert_eq!(p.lease_ttl_s, DEFAULT_LEASE_TTL_S);
        // A customized TTL round-trips.
        let back = ExecutionPlan::from_element(&demo_plan().to_element()).unwrap();
        assert_eq!(back.lease_ttl_s, 120.0);
        // The jitter attribute rides the retry_ prefix: stripped plans
        // (see legacy_plans_default_to_default_retry_policy) default it,
        // and a customized value round-trips.
        assert_eq!(back.retry.jitter, 0.25);
    }

    #[test]
    fn shard_lists_roundtrip() {
        let mut p = demo_plan();
        p.steps[1].shards = vec![
            PlanShard {
                url: Url::new("sdss-s0.skyquery.net", "/soap"),
                extent: ZoneExtent::new(-90.0, 0.0).unwrap(),
                replicas: vec![
                    Url::new("sdss-s0r1.skyquery.net", "/soap"),
                    Url::new("sdss-s0r2.skyquery.net", "/soap"),
                ],
            },
            PlanShard {
                url: Url::new("sdss-s1.skyquery.net", "/soap"),
                extent: ZoneExtent::new(0.0, 90.0).unwrap(),
                replicas: vec![],
            },
        ];
        let back = ExecutionPlan::from_element(&p.to_element()).unwrap();
        assert_eq!(back, p);
        assert!(back.has_shards());
        assert!(!demo_plan().has_shards());
        // Replica lists survive the wire exactly, per shard.
        assert_eq!(back.steps[1].shards[0].replicas.len(), 2);
        assert!(back.steps[1].shards[1].replicas.is_empty());
        // A Replica child missing its url is a protocol error rather
        // than a silently shrunken replica set.
        let mut el = p.to_element();
        for step in &mut el.children {
            if step.name == "Step" {
                for sh in &mut step.children {
                    if sh.name == "Shard" {
                        sh.children.push(Element::new("Replica"));
                    }
                }
            }
        }
        assert!(ExecutionPlan::from_element(&el).is_err());
    }

    #[test]
    fn legacy_plans_default_to_no_shards() {
        // A plan element written before shard addressing existed carries
        // no Shard children; decoding leaves every step un-scattered.
        let p = ExecutionPlan::from_element(&demo_plan().to_element()).unwrap();
        assert!(p.steps.iter().all(|s| s.shards.is_empty()));
        // A Shard child missing its url, or with a garbled extent, is a
        // protocol error rather than a silently dropped shard.
        let mut el = demo_plan().to_element();
        for child in &mut el.children {
            if child.name == "Step" {
                child.children.push(
                    Element::new("Shard")
                        .with_attr("dec_lo", "-90")
                        .with_attr("dec_hi", "90"),
                );
                break;
            }
        }
        assert!(ExecutionPlan::from_element(&el).is_err());
        let mut el = demo_plan().to_element();
        for child in &mut el.children {
            if child.name == "Step" {
                child.children.push(
                    Element::new("Shard")
                        .with_attr("url", "http://h/soap")
                        .with_attr("dec_lo", "NaN")
                        .with_attr("dec_hi", "90"),
                );
                break;
            }
        }
        assert!(ExecutionPlan::from_element(&el).is_err());
    }

    #[test]
    fn malformed_plans_rejected() {
        assert!(ExecutionPlan::from_element(&Element::new("NotPlan")).is_err());
        let no_threshold = Element::new("Plan");
        assert!(ExecutionPlan::from_element(&no_threshold).is_err());
        let no_steps = Element::new("Plan").with_attr("threshold", "3.5");
        assert!(ExecutionPlan::from_element(&no_steps).is_err());
    }

    #[test]
    fn bad_local_sql_surfaces_on_step_config() {
        let mut p = demo_plan();
        p.steps[1].local_sql = Some("SELECT garbage".into());
        assert!(p.step_config(1).is_err());
    }
}
