//! Federation-level errors.

use skyquery_net::NetError;
use skyquery_soap::{SoapError, SoapFault};
use skyquery_sql::SqlError;
use skyquery_storage::StorageError;

/// Errors surfaced by the Portal, SkyNodes, and the execution chain.
#[derive(Debug, Clone, PartialEq)]
pub enum FederationError {
    /// A dialect parse/eval/semantic failure.
    Sql(SqlError),
    /// An archive-engine failure.
    Storage(StorageError),
    /// A transport failure (host unreachable, bad framing).
    Net(NetError),
    /// A SOAP encoding/decoding failure.
    Soap(SoapError),
    /// A SOAP fault returned by a remote service.
    Fault(SoapFault),
    /// Planner/portal-level problems (unregistered archive, empty plan…).
    Planning {
        /// What the planner could not do.
        detail: String,
    },
    /// A plan or partial-result payload failed validation at a SkyNode.
    Protocol {
        /// The violated expectation.
        detail: String,
    },
    /// A non-2xx HTTP response that did not carry a well-formed SOAP
    /// fault (a crashed worker, a proxy error page).
    Http {
        /// The numeric status code.
        status: u16,
        /// The host that answered.
        host: String,
    },
    /// A host kept failing retryably until the retry budget ran out; the
    /// caller should treat the node as unhealthy and degrade, not panic.
    NodeUnhealthy {
        /// The failing host.
        host: String,
        /// Attempts made before giving up.
        attempts: u32,
        /// The final attempt's failure.
        cause: Box<FederationError>,
    },
    /// A leased node-side resource (checkpoint, transfer session, staged
    /// exchange transaction) is unknown at the node — never created,
    /// already released, or reclaimed by the janitor after its TTL
    /// lapsed. Deterministic: the resource will not come back, so the
    /// caller must restart the work that created it rather than retry.
    LeaseExpired {
        /// The resource kind (`checkpoint`, `transfer`, `txn`).
        kind: String,
        /// The id the caller presented.
        id: u64,
        /// The node that no longer holds it.
        host: String,
    },
    /// The job service refused a submission: the tenant's queued-job
    /// quota, its concurrent-chain quota, or the global queue bound is
    /// exhausted. Deterministic from the caller's point of view — the
    /// same submission against the same queue state is refused every
    /// time — so it maps to a *client* SOAP fault and must never burn a
    /// retry budget; the client should back off and resubmit later (or
    /// drain its own queue first).
    JobRejected {
        /// The tenant whose submission was refused.
        tenant: String,
        /// Which limit was hit.
        reason: String,
    },
    /// A two-phase-commit commit failed *and* the follow-up abort also
    /// failed, so the participant may hold an orphaned staging table.
    AbortFailed {
        /// The transaction left undecided at the participant.
        txn: u64,
        /// The participant host.
        host: String,
        /// Why the commit failed.
        commit: Box<FederationError>,
        /// Why the abort failed.
        abort: Box<FederationError>,
    },
}

impl FederationError {
    /// Shorthand constructor for [`FederationError::Planning`].
    pub fn planning(detail: impl Into<String>) -> FederationError {
        FederationError::Planning {
            detail: detail.into(),
        }
    }

    /// Shorthand constructor for [`FederationError::Protocol`].
    pub fn protocol(detail: impl Into<String>) -> FederationError {
        FederationError::Protocol {
            detail: detail.into(),
        }
    }

    /// Renders this error as the SOAP fault a service returns.
    pub fn to_fault(&self) -> SoapFault {
        match self {
            FederationError::Fault(f) => f.clone(),
            FederationError::Sql(e) => SoapFault::client(e.to_string()),
            FederationError::Protocol { detail } => SoapFault::client(detail.clone()),
            // The caller presented a stale id: its fault, deterministically.
            e @ FederationError::LeaseExpired { .. } => SoapFault::client(e.to_string()),
            // An admission-control refusal is the caller's problem too:
            // retrying the identical submission cannot succeed.
            e @ FederationError::JobRejected { .. } => SoapFault::client(e.to_string()),
            other => SoapFault::server(other.to_string()),
        }
    }

    /// Whether re-sending the failed call could plausibly succeed.
    ///
    /// Retryable failures are *transport-level*: the message may not have
    /// reached the service, or the reply was damaged on the way back
    /// (unreachable host, corrupt frame, endpoint crash, 5xx without a
    /// SOAP fault, undecodable response body). Everything a remote
    /// service *decided* — a well-formed SOAP fault, an SQL or storage
    /// error, a protocol violation, a 4xx — is deterministic and fatal;
    /// retrying would just repeat it. `MessageTooLarge` is the one SOAP
    /// error that is deterministic (the payload will be oversized every
    /// time), so it is fatal too.
    pub fn is_retryable(&self) -> bool {
        match self {
            FederationError::Net(e) => !matches!(e, NetError::BadUrl { .. }),
            FederationError::Http { status, .. } => *status >= 500,
            FederationError::Soap(e) => !matches!(e, SoapError::MessageTooLarge { .. }),
            FederationError::NodeUnhealthy { .. } => false,
            FederationError::Sql(_)
            | FederationError::Storage(_)
            | FederationError::Fault(_)
            | FederationError::Planning { .. }
            | FederationError::Protocol { .. }
            | FederationError::LeaseExpired { .. }
            | FederationError::JobRejected { .. }
            | FederationError::AbortFailed { .. } => false,
        }
    }
}

impl From<SqlError> for FederationError {
    fn from(e: SqlError) -> Self {
        FederationError::Sql(e)
    }
}
impl From<StorageError> for FederationError {
    fn from(e: StorageError) -> Self {
        FederationError::Storage(e)
    }
}
impl From<NetError> for FederationError {
    fn from(e: NetError) -> Self {
        FederationError::Net(e)
    }
}
impl From<SoapError> for FederationError {
    fn from(e: SoapError) -> Self {
        FederationError::Soap(e)
    }
}
impl From<SoapFault> for FederationError {
    fn from(f: SoapFault) -> Self {
        FederationError::Fault(f)
    }
}
impl From<skyquery_xml::XmlError> for FederationError {
    fn from(e: skyquery_xml::XmlError) -> Self {
        FederationError::Soap(SoapError::Xml(e))
    }
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::Sql(e) => write!(f, "{e}"),
            FederationError::Storage(e) => write!(f, "{e}"),
            FederationError::Net(e) => write!(f, "{e}"),
            FederationError::Soap(e) => write!(f, "{e}"),
            FederationError::Fault(fault) => write!(f, "{fault}"),
            FederationError::Planning { detail } => write!(f, "planning error: {detail}"),
            FederationError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            FederationError::Http { status, host } => {
                write!(f, "HTTP {status} from {host} (no SOAP fault in body)")
            }
            FederationError::NodeUnhealthy {
                host,
                attempts,
                cause,
            } => write!(
                f,
                "node {host} unhealthy after {attempts} attempts: {cause}"
            ),
            FederationError::LeaseExpired { kind, id, host } => {
                write!(
                    f,
                    "{kind} {id} is not leased at {host} (expired or released)"
                )
            }
            FederationError::JobRejected { tenant, reason } => {
                write!(f, "job submission for tenant {tenant} rejected: {reason}")
            }
            FederationError::AbortFailed {
                txn,
                host,
                commit,
                abort,
            } => write!(
                f,
                "transaction {txn} left undecided at {host}: commit failed ({commit}); \
                 abort also failed ({abort})"
            ),
        }
    }
}

impl std::error::Error for FederationError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, FederationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_rendering() {
        let e = FederationError::planning("no archives registered");
        let f = e.to_fault();
        assert_eq!(f.code, "Server");
        assert!(f.message.contains("no archives registered"));

        let sql = FederationError::Sql(SqlError::semantic("bad query"));
        assert_eq!(sql.to_fault().code, "Client");

        let passthrough = FederationError::Fault(SoapFault::client("x"));
        assert_eq!(passthrough.to_fault(), SoapFault::client("x"));

        // A stale lease is the caller's (deterministic) problem.
        let lease = FederationError::LeaseExpired {
            kind: "checkpoint".into(),
            id: 9,
            host: "sdss".into(),
        };
        assert_eq!(lease.to_fault().code, "Client");
        assert!(!lease.is_retryable());
        assert!(lease.to_string().contains("checkpoint 9"));

        // An admission refusal is a deterministic client fault too: the
        // retry layer must never spend budget re-sending it.
        let rejected = FederationError::JobRejected {
            tenant: "alice".into(),
            reason: "queue full (16 jobs queued)".into(),
        };
        assert_eq!(rejected.to_fault().code, "Client");
        assert!(!rejected.is_retryable());
        assert!(rejected.to_string().contains("alice"));
        assert!(rejected.to_string().contains("queue full"));
    }

    #[test]
    fn retryable_taxonomy() {
        // Transport-level failures: the call may never have executed.
        assert!(
            FederationError::Net(NetError::HostUnreachable { host: "h".into() }).is_retryable()
        );
        assert!(FederationError::Net(NetError::BadFrame { detail: "x".into() }).is_retryable());
        assert!(FederationError::Http {
            status: 500,
            host: "h".into()
        }
        .is_retryable());
        assert!(FederationError::Soap(SoapError::Protocol { detail: "x".into() }).is_retryable());
        // Deterministic outcomes: retrying would repeat them.
        assert!(!FederationError::Net(NetError::BadUrl {
            url: "u".into(),
            detail: "d".into()
        })
        .is_retryable());
        assert!(!FederationError::Http {
            status: 404,
            host: "h".into()
        }
        .is_retryable());
        assert!(
            !FederationError::Soap(SoapError::MessageTooLarge { size: 9, limit: 1 }).is_retryable()
        );
        assert!(!FederationError::Fault(SoapFault::server("boom")).is_retryable());
        assert!(!FederationError::Sql(SqlError::semantic("x")).is_retryable());
        assert!(!FederationError::protocol("x").is_retryable());
        // Exhausted budgets don't restart budgets.
        assert!(!FederationError::NodeUnhealthy {
            host: "h".into(),
            attempts: 3,
            cause: Box::new(FederationError::Net(NetError::HostUnreachable {
                host: "h".into()
            })),
        }
        .is_retryable());
    }

    #[test]
    fn unhealthy_display_includes_cause() {
        let e = FederationError::NodeUnhealthy {
            host: "first.org".into(),
            attempts: 3,
            cause: Box::new(FederationError::protocol("missing results")),
        };
        let text = e.to_string();
        assert!(text.contains("first.org"));
        assert!(text.contains("3 attempts"));
        assert!(text.contains("missing results"));
    }

    #[test]
    fn conversions() {
        let _: FederationError = SqlError::semantic("x").into();
        let _: FederationError = NetError::HostUnreachable { host: "h".into() }.into();
        let _: FederationError = SoapFault::server("s").into();
    }
}
