//! Federation-level errors.

use skyquery_net::NetError;
use skyquery_soap::{SoapError, SoapFault};
use skyquery_sql::SqlError;
use skyquery_storage::StorageError;

/// Errors surfaced by the Portal, SkyNodes, and the execution chain.
#[derive(Debug, Clone, PartialEq)]
pub enum FederationError {
    /// A dialect parse/eval/semantic failure.
    Sql(SqlError),
    /// An archive-engine failure.
    Storage(StorageError),
    /// A transport failure (host unreachable, bad framing).
    Net(NetError),
    /// A SOAP encoding/decoding failure.
    Soap(SoapError),
    /// A SOAP fault returned by a remote service.
    Fault(SoapFault),
    /// Planner/portal-level problems (unregistered archive, empty plan…).
    Planning {
        /// What the planner could not do.
        detail: String,
    },
    /// A plan or partial-result payload failed validation at a SkyNode.
    Protocol {
        /// The violated expectation.
        detail: String,
    },
}

impl FederationError {
    /// Shorthand constructor for [`FederationError::Planning`].
    pub fn planning(detail: impl Into<String>) -> FederationError {
        FederationError::Planning {
            detail: detail.into(),
        }
    }

    /// Shorthand constructor for [`FederationError::Protocol`].
    pub fn protocol(detail: impl Into<String>) -> FederationError {
        FederationError::Protocol {
            detail: detail.into(),
        }
    }

    /// Renders this error as the SOAP fault a service returns.
    pub fn to_fault(&self) -> SoapFault {
        match self {
            FederationError::Fault(f) => f.clone(),
            FederationError::Sql(e) => SoapFault::client(e.to_string()),
            FederationError::Protocol { detail } => SoapFault::client(detail.clone()),
            other => SoapFault::server(other.to_string()),
        }
    }
}

impl From<SqlError> for FederationError {
    fn from(e: SqlError) -> Self {
        FederationError::Sql(e)
    }
}
impl From<StorageError> for FederationError {
    fn from(e: StorageError) -> Self {
        FederationError::Storage(e)
    }
}
impl From<NetError> for FederationError {
    fn from(e: NetError) -> Self {
        FederationError::Net(e)
    }
}
impl From<SoapError> for FederationError {
    fn from(e: SoapError) -> Self {
        FederationError::Soap(e)
    }
}
impl From<SoapFault> for FederationError {
    fn from(f: SoapFault) -> Self {
        FederationError::Fault(f)
    }
}
impl From<skyquery_xml::XmlError> for FederationError {
    fn from(e: skyquery_xml::XmlError) -> Self {
        FederationError::Soap(SoapError::Xml(e))
    }
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::Sql(e) => write!(f, "{e}"),
            FederationError::Storage(e) => write!(f, "{e}"),
            FederationError::Net(e) => write!(f, "{e}"),
            FederationError::Soap(e) => write!(f, "{e}"),
            FederationError::Fault(fault) => write!(f, "{fault}"),
            FederationError::Planning { detail } => write!(f, "planning error: {detail}"),
            FederationError::Protocol { detail } => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for FederationError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, FederationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_rendering() {
        let e = FederationError::planning("no archives registered");
        let f = e.to_fault();
        assert_eq!(f.code, "Server");
        assert!(f.message.contains("no archives registered"));

        let sql = FederationError::Sql(SqlError::semantic("bad query"));
        assert_eq!(sql.to_fault().code, "Client");

        let passthrough = FederationError::Fault(SoapFault::client("x"));
        assert_eq!(passthrough.to_fault(), SoapFault::client("x"));
    }

    #[test]
    fn conversions() {
        let _: FederationError = SqlError::semantic("x").into();
        let _: FederationError = NetError::HostUnreachable { host: "h".into() }.into();
        let _: FederationError = SoapFault::server("s").into();
    }
}
