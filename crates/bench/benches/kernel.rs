//! Columnar vs HTM vs batch cross-match kernels — §5.4's probe loop.
//!
//! Table: wall-clock time of one sequential match step at 10k and 100k
//! archive rows under each kernel, with rows/sec (incoming tuples pushed
//! through the step per second), ns/probe, and speedups (columnar over
//! HTM, batch over columnar). The workload models the paper's headline
//! federation: radio-survey detections (σ_t = 3") matched against a
//! dense optical archive (σ = 1", 25k objects/deg²), so each probe ball
//! spans ~11" and the kernels face real candidate windows rather than
//! empty sky. The three kernels must be byte-identical —
//! the table asserts it — so the speedups are free. The batch kernel's
//! compressed zone tiles are also sized against the 48 B/row columnar
//! layout, and its steady-state zero-allocation claim is proven in-bench:
//! two sweeps on one `BatchScratch` must report every probe as served
//! without buffer growth.
//!
//! Results are also written to `BENCH_kernel.json` at the repository
//! root so the numbers ride with the tree — every speedup the table
//! prints comes from the same `Measurement` the JSON serializes, so the
//! prose can't drift from the artifact. Criterion then times a smaller
//! configuration per kernel.
//!
//! Set `SKYQUERY_BENCH_SMOKE=1` to run a single small configuration that
//! asserts byte-identity and the zero-allocation invariant without
//! rewriting `BENCH_kernel.json` (the CI smoke step).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_core::xmatch::{
    match_step, MatchKernel, PartialSet, PartialTuple, StepConfig, TupleState,
};
use skyquery_core::ResultColumn;
use skyquery_htm::SkyPoint;
use skyquery_storage::{
    BatchScratch, BufferCache, ColumnDef, DataType, Database, PositionColumns, ProbeScratch,
    TableSchema, Value,
};

const ARCSEC: f64 = 1.0 / 3600.0;

/// Astrometric error of the incoming (seed) observations, in arcsec.
/// Modeled on a radio survey cross-matched against a deep optical
/// archive — the paper's headline federation scenario — where the radio
/// positions carry a few arcsec of uncertainty, so each probe ball spans
/// `threshold · √(σ_t² + σ²) ≈ 11"` and actually has a candidate window
/// to scan.
const INCOMING_SIGMA_ARCSEC: f64 = 3.0;

/// Astrometric error of the archive being matched against, in arcsec.
const ARCHIVE_SIGMA_ARCSEC: f64 = 1.0;

/// What the columnar snapshot spends per row: zone-sorted `(ra, dec,
/// row id, unit vector)` as plain f64/usize words.
const COLUMNAR_BYTES_PER_ROW: usize = 48;

/// Deterministic xorshift so the bench needs no RNG dependency.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// An archive of `rows` objects scattered over a 2°×2° survey field
/// (25k objects/deg² at the 100k config — deep-survey density, where a
/// cross-match actually has candidate windows to scan).
fn archive(rows: usize) -> Database {
    let mut db = Database::with_cache("bench", BufferCache::new(1 << 16, 64));
    let schema = TableSchema::new(
        "objects",
        vec![
            ColumnDef::new("object_id", DataType::Id),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("dec", DataType::Float),
        ],
    )
    .with_position(PositionColumns::new("ra", "dec", 14))
    .unwrap();
    db.create_table(schema).unwrap();
    let mut rng = Rng(0x5eed_cafe);
    for i in 0..rows {
        let ra = 180.0 + 2.0 * rng.next_f64();
        let dec = -1.0 + 2.0 * rng.next_f64();
        db.insert(
            "objects",
            vec![Value::Id(i as u64 + 1), Value::Float(ra), Value::Float(dec)],
        )
        .unwrap();
    }
    db
}

/// Incoming 1-tuples: perturbed re-observations of every `stride`-th
/// archive object (so a good fraction of probes find a counterpart),
/// carrying the radio-survey astrometric error.
fn incoming(db: &Database, stride: usize) -> PartialSet {
    let sigma_rad = (INCOMING_SIGMA_ARCSEC * ARCSEC).to_radians();
    let table = db.table("objects").unwrap();
    let mut set = PartialSet::new(vec![ResultColumn::new("S.object_id", DataType::Id)]);
    let mut rng = Rng(0xfeed_beef);
    for (rid, row) in table.iter() {
        if rid % stride != 0 {
            continue;
        }
        let ra = row[1].as_f64().unwrap() + 0.3 * ARCSEC * (rng.next_f64() - 0.5);
        let dec = row[2].as_f64().unwrap() + 0.3 * ARCSEC * (rng.next_f64() - 0.5);
        set.tuples.push(PartialTuple {
            state: TupleState::single(SkyPoint::from_radec_deg(ra, dec).to_vec3(), sigma_rad),
            values: vec![row[0].clone()],
        });
    }
    set
}

fn cfg(kernel: MatchKernel) -> StepConfig {
    StepConfig {
        alias: "B".into(),
        table: "objects".into(),
        sigma_rad: (ARCHIVE_SIGMA_ARCSEC * ARCSEC).to_radians(),
        threshold: 3.5,
        region: None,
        local_predicate: None,
        carried_columns: vec!["object_id".into()],
        xmatch_workers: 1,
        zone_height_deg: 0.1,
        kernel,
    }
}

/// One measured configuration, for the table and the JSON artifact.
struct Measurement {
    rows: usize,
    tuples: usize,
    htm_ms: f64,
    columnar_ms: f64,
    batch_ms: f64,
    /// Probe-loop-only time of the scalar columnar kernel (warm layout,
    /// warm scratch): the step time minus the shared tuple plumbing.
    columnar_kernel_ms: f64,
    /// Probe-loop-only time of the batch sweep (warm tiles, warm scratch).
    batch_kernel_ms: f64,
    /// Encoded size of the compressed zone tiles.
    tile_bytes: usize,
}

impl Measurement {
    fn columnar_speedup(&self) -> f64 {
        self.htm_ms / self.columnar_ms
    }

    fn batch_speedup_vs_htm(&self) -> f64 {
        self.htm_ms / self.batch_ms
    }

    fn batch_speedup_vs_columnar(&self) -> f64 {
        self.columnar_ms / self.batch_ms
    }

    /// The headline kernel-vs-kernel number: batch sweep over columnar
    /// probe loop, with the shared step plumbing (temp-table
    /// materialization, χ² extension, tuple assembly) excluded from both
    /// sides.
    fn batch_kernel_speedup(&self) -> f64 {
        self.columnar_kernel_ms / self.batch_kernel_ms
    }

    fn rows_per_sec(&self, ms: f64) -> f64 {
        self.tuples as f64 / (ms / 1e3)
    }

    fn ns_per_probe(&self, ms: f64) -> f64 {
        ms * 1e6 / self.tuples as f64
    }

    fn tile_bytes_per_row(&self) -> f64 {
        self.tile_bytes as f64 / self.rows as f64
    }

    fn tile_compression(&self) -> f64 {
        (self.rows * COLUMNAR_BYTES_PER_ROW) as f64 / self.tile_bytes as f64
    }
}

/// Best-of-`iters` wall clock of one sequential match step.
fn time_step(db: &mut Database, kernel: MatchKernel, set: &PartialSet, iters: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        match_step(db, &cfg(kernel), set).unwrap();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The probe balls the match step would issue for `set`, in tuple order.
fn probe_balls(set: &PartialSet) -> Vec<(SkyPoint, f64)> {
    let sigma_rad = (ARCHIVE_SIGMA_ARCSEC * ARCSEC).to_radians();
    set.tuples
        .iter()
        .filter_map(|t| {
            let best = t.state.best_position()?;
            Some((
                SkyPoint::from_vec3(best),
                t.state.search_radius(3.5, sigma_rad),
            ))
        })
        .collect()
}

/// Times the two probe kernels in isolation (warm snapshots, warm
/// scratch, best-of-`iters`) and proves the batch hot loop allocates
/// nothing at steady state: after the cold sweep has grown the scratch to
/// its high-water mark, every later sweep must report every probe as
/// served without any buffer growth.
fn time_kernels(db: &mut Database, set: &PartialSet, iters: usize) -> (f64, f64) {
    db.ensure_columnar("objects", 0.1).unwrap();
    db.ensure_tiles("objects", 0.1).unwrap();
    let probes = probe_balls(set);

    let cols = db.columnar_positions("objects").unwrap();
    let mut ps = ProbeScratch::new();
    let mut columnar_ms = f64::INFINITY;
    for _ in 0..iters.max(5) {
        let t0 = Instant::now();
        for &(c, r) in &probes {
            cols.probe(c, r, &mut ps);
        }
        columnar_ms = columnar_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    let tiles = db.zone_tiles("objects").unwrap();
    let mut scratch = BatchScratch::new();
    tiles.probe_batch(&probes, &mut scratch); // cold: buffers grow here
    let mut batch_ms = f64::INFINITY;
    for _ in 0..iters.max(5) {
        let t0 = Instant::now();
        let warm = tiles.probe_batch(&probes, &mut scratch);
        batch_ms = batch_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            warm.reused,
            probes.len(),
            "batch hot loop allocated at steady state"
        );
    }
    (columnar_ms, batch_ms)
}

fn measure(rows: usize, stride: usize, iters: usize) -> Measurement {
    let mut db = archive(rows);
    let set = incoming(&db, stride);
    // Prewarm all three kernels outside the timed region — the HTM index
    // sort, the columnar layout build, and the tile encode are each
    // one-time costs — and assert byte-identity while at it.
    let (htm_out, htm_stats) = match_step(&mut db, &cfg(MatchKernel::Htm), &set).unwrap();
    let (col_out, col_stats) = match_step(&mut db, &cfg(MatchKernel::Columnar), &set).unwrap();
    let (bat_out, bat_stats) = match_step(&mut db, &cfg(MatchKernel::Batch), &set).unwrap();
    assert!(
        htm_out == col_out && htm_stats == col_stats,
        "columnar kernel diverged at {rows} rows"
    );
    assert!(
        htm_out == bat_out && htm_stats == bat_stats,
        "batch kernel diverged at {rows} rows"
    );
    let (columnar_kernel_ms, batch_kernel_ms) = time_kernels(&mut db, &set, iters);
    let htm_ms = time_step(&mut db, MatchKernel::Htm, &set, iters);
    let columnar_ms = time_step(&mut db, MatchKernel::Columnar, &set, iters);
    let batch_ms = time_step(&mut db, MatchKernel::Batch, &set, iters);
    let tile_bytes = db.zone_tiles("objects").unwrap().encoded_bytes();
    Measurement {
        rows,
        tuples: set.len(),
        htm_ms,
        columnar_ms,
        batch_ms,
        columnar_kernel_ms,
        batch_kernel_ms,
        tile_bytes,
    }
}

fn write_json(measurements: &[Measurement]) {
    let mut configs = String::new();
    for (i, m) in measurements.iter().enumerate() {
        if i > 0 {
            configs.push_str(",\n");
        }
        configs.push_str(&format!(
            "    {{\"archive_rows\": {}, \"incoming_tuples\": {}, \
             \"htm_ms\": {:.3}, \"columnar_ms\": {:.3}, \"batch_ms\": {:.3}, \
             \"columnar_kernel_ms\": {:.3}, \"batch_kernel_ms\": {:.3}, \
             \"htm_rows_per_sec\": {:.0}, \"columnar_rows_per_sec\": {:.0}, \
             \"batch_rows_per_sec\": {:.0}, \
             \"htm_ns_per_probe\": {:.0}, \"columnar_ns_per_probe\": {:.0}, \
             \"batch_ns_per_probe\": {:.0}, \
             \"columnar_speedup\": {:.2}, \"batch_speedup_vs_htm\": {:.2}, \
             \"batch_speedup_vs_columnar\": {:.2}, \"batch_kernel_speedup\": {:.2}, \
             \"tile_bytes\": {}, \"tile_bytes_per_row\": {:.1}, \
             \"columnar_bytes_per_row\": {}, \"tile_compression\": {:.2}, \
             \"steady_state_zero_alloc\": true, \"byte_identical\": true}}",
            m.rows,
            m.tuples,
            m.htm_ms,
            m.columnar_ms,
            m.batch_ms,
            m.columnar_kernel_ms,
            m.batch_kernel_ms,
            m.rows_per_sec(m.htm_ms),
            m.rows_per_sec(m.columnar_ms),
            m.rows_per_sec(m.batch_ms),
            m.ns_per_probe(m.htm_ms),
            m.ns_per_probe(m.columnar_ms),
            m.ns_per_probe(m.batch_ms),
            m.columnar_speedup(),
            m.batch_speedup_vs_htm(),
            m.batch_speedup_vs_columnar(),
            m.batch_kernel_speedup(),
            m.tile_bytes,
            m.tile_bytes_per_row(),
            COLUMNAR_BYTES_PER_ROW,
            m.tile_compression(),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"kernel\",\n  \"step\": \"sequential match over a 2°×2° field, zone height 0.1°, radio σ_t=3.0\\\" vs optical σ=1.0\\\", threshold 3.5\",\n  \"configs\": [\n{configs}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn print_tables() {
    println!("\n=== kernel: batch vs columnar vs HTM, one sequential match step ===");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>11} {:>11} {:>9} {:>12} {:>10}",
        "rows",
        "tuples",
        "htm (ms)",
        "col (ms)",
        "bat (ms)",
        "colk (ms)",
        "batk (ms)",
        "batk/colk",
        "tile B/row",
        "tile comp"
    );
    let mut measurements = Vec::new();
    for &(rows, stride, iters) in &[(10_000usize, 2usize, 5usize), (100_000, 4, 3)] {
        let m = measure(rows, stride, iters);
        println!(
            "{:<10} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>11.1} {:>11.1} {:>8.2}x {:>12.1} {:>9.2}x",
            m.rows,
            m.tuples,
            m.htm_ms,
            m.columnar_ms,
            m.batch_ms,
            m.columnar_kernel_ms,
            m.batch_kernel_ms,
            m.batch_kernel_speedup(),
            m.tile_bytes_per_row(),
            m.tile_compression(),
        );
        measurements.push(m);
    }
    write_json(&measurements);
    println!();
}

fn bench(c: &mut Criterion) {
    if std::env::var_os("SKYQUERY_BENCH_SMOKE").is_some() {
        // CI smoke: one small configuration; `measure` asserts all three
        // kernels are byte-identical and the batch hot loop is
        // allocation-free at steady state. No JSON rewrite, no timing.
        let m = measure(2_000, 2, 1);
        println!(
            "smoke OK: byte_identical=true across htm/columnar/batch at {} rows, \
             steady-state zero-alloc proven, tile {} B ({:.1} B/row)",
            m.rows,
            m.tile_bytes,
            m.tile_bytes_per_row(),
        );
        return;
    }
    print_tables();
    let mut group = c.benchmark_group("kernel_match_step");
    group.sample_size(10);
    let mut db = archive(20_000);
    let set = incoming(&db, 4);
    for kernel in [MatchKernel::Htm, MatchKernel::Columnar, MatchKernel::Batch] {
        // Prewarm so no kernel pays its one-time setup in the loop.
        match_step(&mut db, &cfg(kernel), &set).unwrap();
        group.bench_with_input(
            BenchmarkId::new("kernel", kernel.as_str()),
            &kernel,
            |b, &k| b.iter(|| match_step(&mut db, &cfg(k), &set).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
