//! Columnar vs HTM cross-match kernel — §5.4's per-tuple probe loop.
//!
//! Table: wall-clock time of one sequential match step at 10k and 100k
//! archive rows under each kernel, with rows/sec (incoming tuples pushed
//! through the step per second), ns/probe, and the speedup of the
//! columnar kernel over the HTM kernel. The two kernels must be
//! byte-identical — the table asserts it — so the speedup is free.
//!
//! Results are also written to `BENCH_kernel.json` at the repository
//! root so the numbers ride with the tree. Criterion then times a
//! smaller configuration per kernel.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_core::xmatch::{
    match_step, MatchKernel, PartialSet, PartialTuple, StepConfig, TupleState,
};
use skyquery_core::ResultColumn;
use skyquery_htm::SkyPoint;
use skyquery_storage::{
    BufferCache, ColumnDef, DataType, Database, PositionColumns, TableSchema, Value,
};

const ARCSEC: f64 = 1.0 / 3600.0;

/// Deterministic xorshift so the bench needs no RNG dependency.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// An archive of `rows` objects scattered over a 20° band of sky.
fn archive(rows: usize) -> Database {
    let mut db = Database::with_cache("bench", BufferCache::new(1 << 16, 64));
    let schema = TableSchema::new(
        "objects",
        vec![
            ColumnDef::new("object_id", DataType::Id),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("dec", DataType::Float),
        ],
    )
    .with_position(PositionColumns::new("ra", "dec", 14))
    .unwrap();
    db.create_table(schema).unwrap();
    let mut rng = Rng(0x5eed_cafe);
    for i in 0..rows {
        let ra = 180.0 + 20.0 * rng.next_f64();
        let dec = -10.0 + 20.0 * rng.next_f64();
        db.insert(
            "objects",
            vec![Value::Id(i as u64 + 1), Value::Float(ra), Value::Float(dec)],
        )
        .unwrap();
    }
    db
}

/// Incoming 1-tuples: perturbed re-observations of every `stride`-th
/// archive object (so a good fraction of probes find a counterpart).
fn incoming(db: &Database, sigma_arcsec: f64, stride: usize) -> PartialSet {
    let sigma_rad = (sigma_arcsec * ARCSEC).to_radians();
    let table = db.table("objects").unwrap();
    let mut set = PartialSet::new(vec![ResultColumn::new("S.object_id", DataType::Id)]);
    let mut rng = Rng(0xfeed_beef);
    for (rid, row) in table.iter() {
        if rid % stride != 0 {
            continue;
        }
        let ra = row[1].as_f64().unwrap() + 0.3 * ARCSEC * (rng.next_f64() - 0.5);
        let dec = row[2].as_f64().unwrap() + 0.3 * ARCSEC * (rng.next_f64() - 0.5);
        set.tuples.push(PartialTuple {
            state: TupleState::single(SkyPoint::from_radec_deg(ra, dec).to_vec3(), sigma_rad),
            values: vec![row[0].clone()],
        });
    }
    set
}

fn cfg(kernel: MatchKernel) -> StepConfig {
    StepConfig {
        alias: "B".into(),
        table: "objects".into(),
        sigma_rad: (0.2 * ARCSEC).to_radians(),
        threshold: 3.5,
        region: None,
        local_predicate: None,
        carried_columns: vec!["object_id".into()],
        xmatch_workers: 1,
        zone_height_deg: 0.1,
        kernel,
    }
}

/// One measured configuration, for the table and the JSON artifact.
struct Measurement {
    rows: usize,
    tuples: usize,
    htm_ms: f64,
    columnar_ms: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.htm_ms / self.columnar_ms
    }

    fn rows_per_sec(&self, ms: f64) -> f64 {
        self.tuples as f64 / (ms / 1e3)
    }

    fn ns_per_probe(&self, ms: f64) -> f64 {
        ms * 1e6 / self.tuples as f64
    }
}

/// Best-of-`iters` wall clock of one sequential match step.
fn time_step(db: &mut Database, kernel: MatchKernel, set: &PartialSet, iters: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        match_step(db, &cfg(kernel), set).unwrap();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn measure(rows: usize, stride: usize, iters: usize) -> Measurement {
    let mut db = archive(rows);
    let set = incoming(&db, 0.2, stride);
    // Prewarm both kernels outside the timed region — the HTM index sort
    // and the columnar layout build are both one-time costs — and assert
    // byte-identity while at it.
    let (htm_out, htm_stats) = match_step(&mut db, &cfg(MatchKernel::Htm), &set).unwrap();
    let (col_out, col_stats) = match_step(&mut db, &cfg(MatchKernel::Columnar), &set).unwrap();
    assert!(
        htm_out == col_out && htm_stats == col_stats,
        "kernels diverged at {rows} rows"
    );
    let htm_ms = time_step(&mut db, MatchKernel::Htm, &set, iters);
    let columnar_ms = time_step(&mut db, MatchKernel::Columnar, &set, iters);
    Measurement {
        rows,
        tuples: set.len(),
        htm_ms,
        columnar_ms,
    }
}

fn write_json(measurements: &[Measurement]) {
    let mut configs = String::new();
    for (i, m) in measurements.iter().enumerate() {
        if i > 0 {
            configs.push_str(",\n");
        }
        configs.push_str(&format!(
            "    {{\"archive_rows\": {}, \"incoming_tuples\": {}, \
             \"htm_ms\": {:.3}, \"columnar_ms\": {:.3}, \
             \"htm_rows_per_sec\": {:.0}, \"columnar_rows_per_sec\": {:.0}, \
             \"htm_ns_per_probe\": {:.0}, \"columnar_ns_per_probe\": {:.0}, \
             \"columnar_speedup\": {:.2}, \"byte_identical\": true}}",
            m.rows,
            m.tuples,
            m.htm_ms,
            m.columnar_ms,
            m.rows_per_sec(m.htm_ms),
            m.rows_per_sec(m.columnar_ms),
            m.ns_per_probe(m.htm_ms),
            m.ns_per_probe(m.columnar_ms),
            m.speedup(),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"kernel\",\n  \"step\": \"sequential match, zone height 0.1°, σ=0.2\\\", threshold 3.5\",\n  \"configs\": [\n{configs}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn print_tables() {
    println!("\n=== kernel: columnar vs HTM, one sequential match step ===");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10} {:>14} {:>14}",
        "rows", "tuples", "htm (ms)", "col (ms)", "speedup", "htm rows/s", "col rows/s"
    );
    let mut measurements = Vec::new();
    for &(rows, stride, iters) in &[(10_000usize, 2usize, 5usize), (100_000, 4, 3)] {
        let m = measure(rows, stride, iters);
        println!(
            "{:<12} {:>10} {:>12.1} {:>12.1} {:>9.2}x {:>14.0} {:>14.0}",
            m.rows,
            m.tuples,
            m.htm_ms,
            m.columnar_ms,
            m.speedup(),
            m.rows_per_sec(m.htm_ms),
            m.rows_per_sec(m.columnar_ms),
        );
        measurements.push(m);
    }
    write_json(&measurements);
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("kernel_match_step");
    group.sample_size(10);
    let mut db = archive(20_000);
    let set = incoming(&db, 0.2, 4);
    for kernel in [MatchKernel::Htm, MatchKernel::Columnar] {
        // Prewarm so neither kernel pays its one-time setup in the loop.
        match_step(&mut db, &cfg(kernel), &set).unwrap();
        group.bench_with_input(
            BenchmarkId::new("kernel", kernel.as_str()),
            &kernel,
            |b, &k| b.iter(|| match_step(&mut db, &cfg(k), &set).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
