//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **A1 — HTM index depth** at the archives: deeper meshes probe fewer
//!   rows per candidate search but pay larger covers.
//! * **A2 — performance-query concurrency**: the paper sends them "as
//!   asynchronous SOAP messages"; sequential is the ablated variant.
//! * **A3 — residual placement**: evaluating cross-archive residuals
//!   mid-chain (as built) vs deferring them to the Portal is approximated
//!   by comparing a selective-residual query against the same query with
//!   the residual dropped — the gap is the transmission the placement
//!   optimization saves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_core::FederationConfig;
use skyquery_sim::{CatalogParams, FederationBuilder, QuerySpec, SurveyParams};

fn federation_with_depth(depth: u8, bodies: usize) -> skyquery_sim::TestFederation {
    let mut sdss = SurveyParams::sdss_like();
    sdss.htm_depth = depth;
    let mut twomass = SurveyParams::twomass_like();
    twomass.htm_depth = depth;
    FederationBuilder::new()
        .catalog(CatalogParams {
            count: bodies,
            ..CatalogParams::default()
        })
        .survey(sdss)
        .survey(twomass)
        .build()
}

fn two_way(threshold: f64, residual: Option<&str>) -> String {
    QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
        ],
        threshold,
        area: None,
        polygon: None,
        predicates: residual.map(|r| vec![r.to_string()]).unwrap_or_default(),
        select: vec!["O.object_id".into(), "T.object_id".into()],
    }
    .to_sql()
}

fn print_tables() {
    println!("\n=== A1: archive HTM index depth ablation (2000 bodies) ===");
    println!("{:<8} {:>12} {:>20}", "depth", "matches", "row accesses");
    for depth in [8u8, 10, 12, 14, 16] {
        let fed = federation_with_depth(depth, 2000);
        // Row accesses charged to the node buffer caches during the
        // query: the HTM cover at each node's index depth decides how
        // many rows every candidate search touches before verification.
        for node in &fed.nodes {
            node.with_db(|db| db.reset_cache_stats());
        }
        let (result, _) = fed.portal.submit(&two_way(3.5, None)).unwrap();
        let accesses: u64 = fed
            .nodes
            .iter()
            .map(|n| n.with_db(|db| db.cache_stats().accesses()))
            .sum();
        println!("{:<8} {:>12} {:>20}", depth, result.row_count(), accesses);
    }
    println!("(match counts must be depth-invariant; row touches fall as depth rises)");

    println!("\n=== A2: performance-query concurrency (3 archives, 1500 bodies) ===");
    let fed = FederationBuilder::paper_triple(1500).build();
    let sql = skyquery_sim::xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        3.5,
        None,
    );
    for (name, parallel) in [("parallel (paper)", true), ("sequential", false)] {
        fed.portal.set_config(FederationConfig {
            parallel_performance_queries: parallel,
            ..FederationConfig::default()
        });
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            fed.portal.submit(&sql).unwrap();
        }
        println!("{:<22} {:>10.2?} per query", name, t0.elapsed() / 5);
    }

    println!("\n=== A3: residual placement — bytes saved by mid-chain filtering ===");
    let fed = FederationBuilder::paper_triple(2000).build();
    for (name, residual) in [
        ("no residual", None),
        ("selective residual", Some("(O.i_flux - T.i_flux) > 50")),
    ] {
        let sql = two_way(3.5, residual);
        fed.net.reset_metrics();
        let (result, _) = fed.portal.submit(&sql).unwrap();
        println!(
            "{:<22} {:>8} matches {:>12} bytes",
            name,
            result.row_count(),
            fed.net.metrics().total().bytes
        );
    }
    println!("(the residual is applied at the step where both archives are present,\n shrinking every upstream transfer)\n");
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for depth in [8u8, 12, 16] {
        let fed = federation_with_depth(depth, 1000);
        let sql = two_way(3.5, None);
        group.bench_with_input(BenchmarkId::new("htm_depth", depth), &depth, |b, _| {
            b.iter(|| fed.portal.submit(&sql).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
