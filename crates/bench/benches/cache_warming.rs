//! Experiment E10 — §5.3: performance queries "will often warm the
//! database cache on each SkyNode with index pages that satisfy the main
//! cross match query, and thus aid in reducing processing time".
//!
//! The archive engine's simulated buffer cache makes the effect
//! measurable: the table reports buffer misses and modeled I/O cost of
//! the cross-match probes with and without a preceding count-star
//! performance query, per node and end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};
use skyquery_bench::{triple_federation, triple_query};
use skyquery_htm::SkyPoint;
use skyquery_storage::ScanOptions;

/// Simulated penalty: a buffer miss costs 100x a hit (disk vs memory).
const MISS_PENALTY: f64 = 100.0;

fn print_tables() {
    println!("\n=== E10a: per-node buffer behaviour, cold vs perf-query-warmed ===");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14}",
        "node", "cold misses", "warm misses", "cold cost", "warm cost"
    );
    let fed = triple_federation(2000);
    for archive in ["SDSS", "TWOMASS", "FIRST"] {
        let node = fed.node(archive).unwrap();
        let table = node.info().primary_table.clone();
        let center = SkyPoint::from_radec_deg(185.0, -0.5);
        // The cross-match probe workload: 200 candidate range searches.
        let probes = |db: &mut skyquery_storage::Database| {
            for k in 0..200 {
                let c = SkyPoint::from_radec_deg(
                    center.ra_deg + (k % 20) as f64 * 0.05 - 0.5,
                    center.dec_deg + (k / 20) as f64 * 0.05 - 0.25,
                );
                db.range_search(
                    &table,
                    c,
                    (30.0 / 3600.0_f64).to_radians(),
                    ScanOptions::default(),
                )
                .unwrap();
            }
        };
        let (cold, warm) = node.with_db(|db| {
            // Cold: no performance query first.
            db.cold_cache();
            probes(db);
            let cold = db.cache_stats();
            // Warm: the count-star performance query runs first (a scan
            // that faults in the very pages the probes need).
            db.cold_cache();
            db.count_where(&table, ScanOptions::default(), |_, _| true)
                .unwrap();
            db.reset_cache_stats();
            probes(db);
            (cold, db.cache_stats())
        });
        println!(
            "{:<10} {:>12} {:>12} {:>14.0} {:>14.0}",
            archive,
            cold.misses,
            warm.misses,
            cold.cost(MISS_PENALTY),
            warm.cost(MISS_PENALTY)
        );
    }

    println!("\n=== E10b: end-to-end — first (cold) vs repeated (warm) query ===");
    let fed = triple_federation(2000);
    let sql = triple_query(3.5);
    for node in &fed.nodes {
        node.with_db(|db| db.cold_cache());
    }
    fed.portal.submit(&sql).unwrap();
    let first: u64 = fed
        .nodes
        .iter()
        .map(|n| n.with_db(|db| db.cache_stats().misses))
        .sum();
    for node in &fed.nodes {
        node.with_db(|db| db.reset_cache_stats());
    }
    fed.portal.submit(&sql).unwrap();
    let second: u64 = fed
        .nodes
        .iter()
        .map(|n| n.with_db(|db| db.cache_stats().misses))
        .sum();
    println!("first run misses (incl. perf queries): {first}");
    println!("repeat run misses (cache warm):        {second}");
    println!("(the performance queries already faulted in the pages the\n cross match needs, so the repeat run misses almost nothing)\n");
}

fn bench(c: &mut Criterion) {
    print_tables();
    let fed = triple_federation(1000);
    let sql = triple_query(3.5);
    let mut group = c.benchmark_group("e10_cache_warming");
    group.sample_size(10);
    group.bench_function("query_cold_caches", |b| {
        b.iter(|| {
            for node in &fed.nodes {
                node.with_db(|db| db.cold_cache());
            }
            fed.portal.submit(&sql).unwrap()
        })
    });
    group.bench_function("query_warm_caches", |b| {
        fed.portal.submit(&sql).unwrap();
        b.iter(|| fed.portal.submit(&sql).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
