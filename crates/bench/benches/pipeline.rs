//! Zone-aware pipelined transfer — overlap of engine work with chunk
//! arrival (the tentpole experiment for the streaming transfer API).
//!
//! Table: a two-node daisy chain (seed node → match node) is driven with
//! a small message budget so the seed's partial set streams across in
//! zone-aligned chunks. The match node's zone engine ingests each chunk
//! on arrival, so its *first* zones finish long before the *last* chunk
//! has been fetched — the pipeline report's `first_zone_done` versus
//! `last_chunk_ingested` quantifies the overlap. The run also asserts
//! the pipelined output is byte-identical to a monolithic transfer.
//! Criterion then measures the chunked and monolithic configurations.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_core::skynode::invoke_cross_match;
use skyquery_core::{ArchiveInfo, ExecutionPlan, PlanStep, SkyNodeBuilder};
use skyquery_net::{SimNetwork, Url};
use skyquery_storage::{
    BufferCache, ColumnDef, DataType, Database, PositionColumns, TableSchema, Value,
};
use skyquery_zones::ZoneEngine;

const ARCSEC: f64 = 1.0 / 3600.0;

/// Deterministic xorshift so the bench needs no RNG dependency.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// An archive of `rows` objects over a 10° declination band. `seed`
/// offsets positions slightly so the two archives' objects cross-match.
fn archive(name: &str, rows: usize, seed: u64, jitter_arcsec: f64) -> Database {
    let mut db = Database::with_cache(name, BufferCache::new(1 << 16, 64));
    let schema = TableSchema::new(
        "objects",
        vec![
            ColumnDef::new("object_id", DataType::Id),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("dec", DataType::Float),
        ],
    )
    .with_position(PositionColumns::new("ra", "dec", 14))
    .unwrap();
    db.create_table(schema).unwrap();
    let mut pos = Rng(0x5eed_cafe);
    let mut jit = Rng(seed);
    for i in 0..rows {
        let ra = 180.0 + 10.0 * pos.next_f64() + jitter_arcsec * ARCSEC * (jit.next_f64() - 0.5);
        let dec = -5.0 + 10.0 * pos.next_f64() + jitter_arcsec * ARCSEC * (jit.next_f64() - 0.5);
        db.insert(
            "objects",
            vec![Value::Id(i as u64 + 1), Value::Float(ra), Value::Float(dec)],
        )
        .unwrap();
    }
    db
}

struct Chain {
    net: SimNetwork,
    engine: Arc<ZoneEngine>,
    match_url: Url,
    seed_url: Url,
}

/// A two-node chain: SEED (the seed archive) streams its partial set to
/// MATCH, whose zone engine (`workers` threads) is kept accessible so
/// the pipeline report can be read back.
fn chain(rows: usize) -> Chain {
    let net = SimNetwork::new();
    let engine = Arc::new(ZoneEngine::new());
    let match_node = SkyNodeBuilder::new(
        ArchiveInfo {
            name: "MATCH".into(),
            sigma_arcsec: 0.2,
            primary_table: "objects".into(),
            htm_depth: 14,
            extent: None,
        },
        archive("MATCH", rows, 0xfeed_beef, 0.2),
    )
    .engine(engine.clone())
    .start(&net, "match.bench");
    let seed_node = SkyNodeBuilder::new(
        ArchiveInfo {
            name: "SEED".into(),
            sigma_arcsec: 0.2,
            primary_table: "objects".into(),
            htm_depth: 14,
            extent: None,
        },
        archive("SEED", rows, 0xdead_ce11, 0.0),
    )
    .start(&net, "seed.bench");
    Chain {
        match_url: match_node.url(),
        seed_url: seed_node.url(),
        net,
        engine,
    }
}

fn plan(c: &Chain, workers: usize, max_message_bytes: usize, zone_chunking: bool) -> ExecutionPlan {
    let step = |alias: &str, archive: &str, url: &Url| PlanStep {
        alias: alias.into(),
        archive: archive.into(),
        table: "objects".into(),
        url: url.clone(),
        dropout: false,
        sigma_arcsec: 0.2,
        local_sql: None,
        carried: vec!["object_id".into()],
        residual_sql: vec![],
        count_estimate: None,
        shards: vec![],
    };
    ExecutionPlan {
        threshold: 3.5,
        region: None,
        steps: vec![
            step("M", "MATCH", &c.match_url),
            step("S", "SEED", &c.seed_url),
        ],
        select: vec![("M.object_id".into(), None), ("S.object_id".into(), None)],
        order_by: vec![],
        limit: None,
        max_message_bytes,
        chunking: true,
        xmatch_workers: workers,
        zone_height_deg: 0.5,
        zone_chunking,
        kernel: Default::default(),
        retry: Default::default(),
        lease_ttl_s: skyquery_core::plan::DEFAULT_LEASE_TTL_S,
    }
}

fn print_table() {
    const ROWS: usize = 4_000;
    const BUDGET: usize = 8_000;
    let c = chain(ROWS);
    println!("\npipelined zone-aware transfer — {ROWS}-row seed, {BUDGET}-byte budget");
    println!("workers | chunks | zones |  first zone | last chunk |  finish | identical");

    for workers in [2usize, 4] {
        let (mono, _) = invoke_cross_match(
            &c.net,
            "bench",
            &c.match_url,
            &plan(&c, workers, usize::MAX / 2, true),
            0,
        )
        .expect("monolithic run");
        let (piped, _) = invoke_cross_match(
            &c.net,
            "bench",
            &c.match_url,
            &plan(&c, workers, BUDGET, true),
            0,
        )
        .expect("pipelined run");
        let report = c
            .engine
            .last_pipeline_report()
            .expect("streaming session ran");
        let first = report.first_zone_done.expect("zones ran");
        let last = report.last_chunk_ingested.expect("chunks arrived");
        assert!(
            first <= report.finished,
            "first zone must land before the merge completes"
        );
        println!(
            "{workers:>7} | {:>6} | {:>5} | {:>9.3}ms | {:>8.3}ms | {:>5.1}ms | {}",
            report.chunks,
            report.zones_processed,
            first.as_secs_f64() * 1e3,
            last.as_secs_f64() * 1e3,
            report.finished.as_secs_f64() * 1e3,
            piped == mono,
        );
        assert_eq!(piped, mono, "pipelined output must be byte-identical");
        assert!(report.chunks > 1, "budget must force a chunked transfer");
        // The pipeline property itself: the first zones completed before
        // the final chunk was handed over, i.e. engine work overlapped
        // the in-flight transfer.
        assert!(
            first <= last,
            "first zone ({first:?}) should not trail the last chunk ({last:?})"
        );
    }
    println!();
}

fn bench(criterion: &mut Criterion) {
    print_table();
    let c = chain(1_500);
    let mut group = criterion.benchmark_group("pipeline");
    group.sample_size(10);
    for (label, budget) in [("monolithic", usize::MAX / 2), ("chunked-8k", 8_000)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &budget, |b, &budget| {
            b.iter(|| {
                invoke_cross_match(&c.net, "bench", &c.match_url, &plan(&c, 2, budget, true), 0)
                    .expect("cross match")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
