//! Experiment E4 — §5.1: "SkyQuery, instead, moves the partial results of
//! spatial queries from one SkyNode to the next along a chain" rather
//! than pulling everything to the Portal.
//!
//! Table: bytes transferred by the chain vs the pull-to-portal baseline
//! as the query's selectivity varies (via the local flux predicate), plus
//! a size sweep. Criterion times both strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use skyquery_bench::{measure_bytes, measure_bytes_pull, triple_federation};
use skyquery_sim::QuerySpec;

fn query_with_flux_cut(min_flux: f64) -> String {
    QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
            ("FIRST".into(), "Primary_Object".into(), "P".into(), false),
        ],
        threshold: 3.5,
        area: None,
        polygon: None,
        predicates: if min_flux > 0.0 {
            vec![format!("O.i_flux > {min_flux:?}")]
        } else {
            vec![]
        },
        select: vec![],
    }
    .to_sql()
}

fn print_tables() {
    println!("\n=== E4a: chain vs pull-to-portal, bytes vs selectivity (1500 bodies) ===");
    println!(
        "{:<18} {:>14} {:>14} {:>8}",
        "O flux cut", "chain bytes", "pull bytes", "ratio"
    );
    let fed = triple_federation(1500);
    for min_flux in [0.0, 10.0, 100.0, 400.0] {
        let sql = query_with_flux_cut(min_flux);
        let chain = measure_bytes(&fed, &sql);
        let pull = measure_bytes_pull(&fed, &sql);
        println!(
            "{:<18} {:>14} {:>14} {:>7.2}x",
            format!("i_flux > {min_flux}"),
            chain,
            pull,
            pull as f64 / chain as f64
        );
    }

    println!("\n=== E4b: chain vs pull-to-portal, bytes vs federation size ===");
    println!(
        "{:<10} {:>14} {:>14} {:>8}",
        "bodies", "chain bytes", "pull bytes", "ratio"
    );
    for bodies in [400, 1200, 2400] {
        let fed = triple_federation(bodies);
        let sql = query_with_flux_cut(0.0);
        let chain = measure_bytes(&fed, &sql);
        let pull = measure_bytes_pull(&fed, &sql);
        println!(
            "{:<10} {:>14} {:>14} {:>7.2}x",
            bodies,
            chain,
            pull,
            pull as f64 / chain as f64
        );
    }
    println!("(pull-to-portal should transmit more; the gap grows with selectivity)\n");
}

fn bench(c: &mut Criterion) {
    print_tables();
    let fed = triple_federation(1000);
    let sql = query_with_flux_cut(0.0);
    let mut group = c.benchmark_group("e4_chain_vs_pull");
    group.sample_size(10);
    group.bench_function("chained", |b| b.iter(|| fed.portal.submit(&sql).unwrap()));
    group.bench_function("pull_to_portal", |b| {
        b.iter(|| fed.portal.submit_pull_to_portal(&sql).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
