//! Experiment E8 — §2 scale: surveys "cover 10 – 100 million objects";
//! the federation must scale with archive count and object density.
//!
//! Table: query latency-proxy statistics vs number of archives N and vs
//! sky density. Criterion measures end-to-end query time at several
//! federation shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_bench::{n_archive_federation, n_archive_query, triple_federation, triple_query};

fn print_tables() {
    println!("\n=== E8a: chain behaviour vs number of archives (600 bodies) ===");
    println!(
        "{:<6} {:>10} {:>14} {:>12}",
        "N", "matches", "total bytes", "messages"
    );
    for n in [2usize, 3, 4, 6] {
        let fed = n_archive_federation(n, 600);
        let sql = n_archive_query(n, 3.5);
        fed.net.reset_metrics();
        let (result, _) = fed.portal.submit(&sql).unwrap();
        let m = fed.net.metrics().total();
        println!(
            "{:<6} {:>10} {:>14} {:>12}",
            n,
            result.row_count(),
            m.bytes,
            m.messages
        );
    }

    println!("\n=== E8b: chain behaviour vs sky density (3 archives) ===");
    println!("{:<10} {:>10} {:>14}", "bodies", "matches", "total bytes");
    for bodies in [250usize, 1000, 4000] {
        let fed = triple_federation(bodies);
        fed.net.reset_metrics();
        let (result, _) = fed.portal.submit(&triple_query(3.5)).unwrap();
        println!(
            "{:<10} {:>10} {:>14}",
            bodies,
            result.row_count(),
            fed.net.metrics().total().bytes
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("e8_scaling");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        let fed = n_archive_federation(n, 400);
        let sql = n_archive_query(n, 3.5);
        group.bench_with_input(BenchmarkId::new("archives", n), &n, |b, _| {
            b.iter(|| fed.portal.submit(&sql).unwrap())
        });
    }
    for bodies in [250usize, 1000, 4000] {
        let fed = triple_federation(bodies);
        let sql = triple_query(3.5);
        group.bench_with_input(BenchmarkId::new("bodies", bodies), &bodies, |b, _| {
            b.iter(|| fed.portal.submit(&sql).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
