//! Experiment E16 — result-cache hit rate and latency under a Zipf
//! repeat-query workload.
//!
//! Portal workloads are heavily repetitive: a few popular sky queries
//! dominate while a long tail of one-offs churns. This bench draws 150
//! submissions from a 12-query pool under a Zipf(s = 1.1) popularity
//! law and measures, for each result-cache capacity, the end-to-end
//! hit rate (hits + incremental repairs over total submissions) and the
//! p50/p95 submit latency. Capacity 0 is the no-cache baseline; the
//! sweep shows latency collapsing as the hot head of the distribution
//! fits in cache.
//!
//! Results are also written to `BENCH_cache.json` at the repository
//! root so the numbers ride with the tree. Criterion then times one
//! warm-cache submit against one cold submit.
//!
//! Set `SKYQUERY_BENCH_SMOKE=1` to run a single small configuration
//! that asserts cached results stay byte-identical and repeat queries
//! actually hit — no JSON rewrite, no timing.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_core::FederationConfig;
use skyquery_sim::{xmatch_query, FederationBuilder, TestFederation};

const BODIES: usize = 300;
const POOL: usize = 12;
const DRAWS: usize = 150;
const ZIPF_S: f64 = 1.1;

fn federation(cache_capacity: usize) -> TestFederation {
    let fed = FederationBuilder::paper_triple(BODIES).build();
    fed.portal.set_config(FederationConfig {
        result_cache_capacity: cache_capacity,
        ..fed.portal.config()
    });
    fed
}

/// The query pool: the same three-way cross-match at `POOL` distinct χ²
/// thresholds — distinct cache signatures, shared archives, so cache
/// pressure is real but the workload stays comparable across slots.
fn pool_query(rank: usize) -> String {
    xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        2.0 + 0.25 * rank as f64,
        None,
    )
}

/// xorshift64* — deterministic, seedable, no external dependency.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        let x = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The Zipf(s) cumulative distribution over pool ranks 1..=POOL.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn draw(cdf: &[f64], rng: &mut Rng) -> usize {
    let u = rng.next_f64();
    cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1)
}

struct Measurement {
    capacity: usize,
    hit_rate: f64,
    repairs: u64,
    p50_ms: f64,
    p95_ms: f64,
    total_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Runs the full Zipf workload against a fresh federation at one cache
/// capacity, asserting every cached submission returns the same bytes a
/// cold twin produces for that slot.
fn measure(capacity: usize) -> Measurement {
    let fed = federation(capacity);
    let reference = federation(0);
    let references: Vec<_> = (0..POOL)
        .map(|r| reference.portal.submit(&pool_query(r)).expect("cold run").0)
        .collect();

    let cdf = zipf_cdf(POOL, ZIPF_S);
    let mut rng = Rng(0x5EED_CAFE ^ capacity as u64);
    let mut latencies = Vec::with_capacity(DRAWS);
    let started = Instant::now();
    for _ in 0..DRAWS {
        let rank = draw(&cdf, &mut rng);
        let sql = pool_query(rank);
        let t = Instant::now();
        let (result, _) = fed.portal.submit(&sql).expect("bench query runs");
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            result, references[rank],
            "cached result diverged from the cold baseline at rank {rank}"
        );
    }
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let (counters, _) = fed.portal.cache_report();
    Measurement {
        capacity,
        hit_rate: (counters.hits + counters.repairs) as f64 / DRAWS as f64,
        repairs: counters.repairs,
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        total_ms,
    }
}

fn write_json(measurements: &[Measurement]) {
    let mut configs = String::new();
    for (i, m) in measurements.iter().enumerate() {
        if i > 0 {
            configs.push_str(",\n");
        }
        configs.push_str(&format!(
            "    {{\"capacity\": {}, \"hit_rate\": {:.3}, \"repairs\": {}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"total_ms\": {:.1}, \
             \"byte_identical\": true}}",
            m.capacity, m.hit_rate, m.repairs, m.p50_ms, m.p95_ms, m.total_ms,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"cache\",\n  \"workload\": \"{DRAWS} submissions, Zipf s={ZIPF_S} \
         over {POOL} distinct 3-way cross-matches, {BODIES} bodies\",\n  \"configs\": [\n{configs}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cache.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn print_tables() {
    println!(
        "\n=== E16: result-cache hit rate vs capacity \
         (Zipf s={ZIPF_S}, {POOL}-query pool, {DRAWS} draws) ==="
    );
    println!(
        "{:<10} {:>10} {:>9} {:>12} {:>12} {:>12}",
        "capacity", "hit rate", "repairs", "p50 (ms)", "p95 (ms)", "total (ms)"
    );
    let mut measurements = Vec::new();
    for &capacity in &[0usize, 2, 8, 32] {
        let m = measure(capacity);
        println!(
            "{:<10} {:>9.1}% {:>9} {:>12.2} {:>12.2} {:>12.1}",
            m.capacity,
            m.hit_rate * 100.0,
            m.repairs,
            m.p50_ms,
            m.p95_ms,
            m.total_ms,
        );
        measurements.push(m);
    }
    write_json(&measurements);
    println!();
}

fn bench(c: &mut Criterion) {
    if std::env::var_os("SKYQUERY_BENCH_SMOKE").is_some() {
        // CI smoke: a popular query must hit on repeat and serve the
        // cold bytes. No JSON rewrite, no timing.
        let fed = federation(4);
        let sql = pool_query(0);
        let (cold, _) = fed.portal.submit(&sql).expect("cold run");
        let (warm, _) = fed.portal.submit(&sql).expect("warm run");
        assert_eq!(cold, warm, "cache hit must serve the cold bytes");
        let (counters, _) = fed.portal.cache_report();
        assert_eq!(counters.hits, 1, "the repeat submission must hit");
        println!(
            "smoke OK: byte_identical=true on a repeat submission, hits={} misses={}",
            counters.hits, counters.misses
        );
        return;
    }
    print_tables();
    let mut group = c.benchmark_group("e16_result_cache");
    group.sample_size(10);
    let warm = federation(4);
    let sql = pool_query(0);
    warm.portal.submit(&sql).expect("populate");
    group.bench_with_input(BenchmarkId::new("submit", "warm"), &(), |b, _| {
        b.iter(|| warm.portal.submit(&sql).expect("warm submit"))
    });
    let cold = federation(0);
    group.bench_with_input(BenchmarkId::new("submit", "cold"), &(), |b, _| {
        b.iter(|| cold.portal.submit(&sql).expect("cold submit"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
