//! Experiment E14 — scatter-gather cross-match across shard counts.
//!
//! Table: for 1/2/4/8 declination-zone shards per archive, the
//! end-to-end submit wall time, the merged-result throughput
//! (rows/sec of final output), and the pure gather cost — the
//! time-to-merge of recombining a fixed 40k-tuple seed output from
//! that many shards. Byte-identity against the single-node baseline is
//! asserted while measuring, so the numbers can't drift from the
//! semantics.
//!
//! Results are also written to `BENCH_shards.json` at the repository
//! root so the numbers ride with the tree. Criterion then times one
//! submit per shard count.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_core::shard::{merge_seed, RANK_COL};
use skyquery_core::{PartialSet, PartialTuple, ResultColumn, StepStats, TupleState};
use skyquery_sim::{xmatch_query, FederationBuilder, TestFederation};
use skyquery_storage::{DataType, Value};

const BODIES: usize = 1200;
const MERGE_TUPLES: usize = 40_000;

fn federation(shards: usize) -> TestFederation {
    FederationBuilder::paper_triple(BODIES)
        .shards(shards)
        .build()
}

fn query() -> String {
    xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        4.0,
        None,
    )
}

/// A synthetic seed output of `total` tuples dealt round-robin over
/// `shards` parts, each carrying the rank column the gather strips.
fn seed_parts(total: usize, shards: usize) -> Vec<(PartialSet, StepStats)> {
    let columns = vec![
        ResultColumn::new("O.object_id", DataType::Id),
        ResultColumn::new(format!("O.{RANK_COL}"), DataType::Id),
    ];
    (0..shards)
        .map(|s| {
            let tuples: Vec<PartialTuple> = (s..total)
                .step_by(shards)
                .map(|rank| PartialTuple {
                    state: TupleState {
                        a: rank as f64,
                        ax: 1.0,
                        ay: 0.0,
                        az: 0.0,
                    },
                    values: vec![Value::Id(rank as u64), Value::Id(rank as u64)],
                })
                .collect();
            let stats = StepStats {
                tuples_out: tuples.len(),
                ..StepStats::default()
            };
            (
                PartialSet {
                    columns: columns.clone(),
                    tuples,
                },
                stats,
            )
        })
        .collect()
}

struct Measurement {
    shards: usize,
    rows: usize,
    submit_ms: f64,
    merge_ms: f64,
}

impl Measurement {
    fn merged_rows_per_sec(&self) -> f64 {
        self.rows as f64 / (self.submit_ms / 1000.0)
    }
    fn merge_tuples_per_sec(&self) -> f64 {
        MERGE_TUPLES as f64 / (self.merge_ms / 1000.0)
    }
}

/// One shard count: asserts parity against `reference`, then times the
/// submit and the synthetic 40k-tuple gather.
fn measure(shards: usize, reference: &str, iters: usize) -> Measurement {
    let fed = federation(shards);
    let sql = query();
    let (result, _) = fed.portal.submit(&sql).expect("bench query runs");
    assert_eq!(
        result.to_ascii(),
        reference,
        "{shards}-shard result diverged from the single-node baseline"
    );
    let started = Instant::now();
    for _ in 0..iters {
        fed.portal.submit(&sql).expect("bench query runs");
    }
    let submit_ms = started.elapsed().as_secs_f64() * 1000.0 / iters as f64;

    let parts = seed_parts(MERGE_TUPLES, shards);
    let started = Instant::now();
    for _ in 0..iters {
        let (merged, _) = merge_seed(&parts, "O").expect("merge succeeds");
        assert_eq!(merged.len(), MERGE_TUPLES);
    }
    let merge_ms = started.elapsed().as_secs_f64() * 1000.0 / iters as f64;

    Measurement {
        shards,
        rows: result.row_count(),
        submit_ms,
        merge_ms,
    }
}

fn write_json(measurements: &[Measurement]) {
    let mut configs = String::new();
    for (i, m) in measurements.iter().enumerate() {
        if i > 0 {
            configs.push_str(",\n");
        }
        configs.push_str(&format!(
            "    {{\"shards\": {}, \"result_rows\": {}, \"submit_ms\": {:.3}, \
             \"merged_rows_per_sec\": {:.0}, \"merge_40k_ms\": {:.3}, \
             \"merge_tuples_per_sec\": {:.0}, \"byte_identical\": true}}",
            m.shards,
            m.rows,
            m.submit_ms,
            m.merged_rows_per_sec(),
            m.merge_ms,
            m.merge_tuples_per_sec(),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"shards\",\n  \"step\": \"3-way cross-match, {BODIES} bodies, \
         threshold 4.0, zone shards per archive\",\n  \"configs\": [\n{configs}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shards.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn print_tables() {
    println!("\n=== E14: scatter-gather vs shard count ({BODIES} bodies, 3 archives) ===");
    println!(
        "{:<8} {:>8} {:>12} {:>16} {:>14} {:>16}",
        "shards", "rows", "submit (ms)", "merged rows/s", "merge40k (ms)", "merge tuples/s"
    );
    let baseline = federation(1);
    let (reference, _) = baseline.portal.submit(&query()).expect("baseline runs");
    let reference = reference.to_ascii();
    let mut measurements = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        let m = measure(shards, &reference, 3);
        println!(
            "{:<8} {:>8} {:>12.1} {:>16.0} {:>14.2} {:>16.0}",
            m.shards,
            m.rows,
            m.submit_ms,
            m.merged_rows_per_sec(),
            m.merge_ms,
            m.merge_tuples_per_sec(),
        );
        measurements.push(m);
    }
    write_json(&measurements);
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("e14_shards");
    group.sample_size(10);
    for &shards in &[1usize, 4] {
        let fed = federation(shards);
        let sql = query();
        group.bench_with_input(BenchmarkId::new("submit", shards), &shards, |b, _| {
            b.iter(|| fed.portal.submit(&sql).expect("bench query runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
