//! Experiment E14 — scatter-gather cross-match across shard counts.
//!
//! Table: for 1/2/4/8 declination-zone shards per archive, the
//! end-to-end submit wall time, the merged-result throughput
//! (rows/sec of final output), and the pure gather cost — the
//! time-to-merge of recombining a fixed 40k-tuple seed output from
//! that many shards. Byte-identity against the single-node baseline is
//! asserted while measuring, so the numbers can't drift from the
//! semantics.
//!
//! Results are also written to `BENCH_shards.json` at the repository
//! root so the numbers ride with the tree. Criterion then times one
//! submit per shard count.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_core::shard::{merge_seed, RANK_COL};
use skyquery_core::{
    FederationConfig, PartialSet, PartialTuple, ResultColumn, StepStats, TupleState,
};
use skyquery_net::{FaultKind, FaultPlan, FaultRule};
use skyquery_sim::{xmatch_query, FederationBuilder, TestFederation};
use skyquery_storage::{DataType, Value};

const BODIES: usize = 1200;
const MERGE_TUPLES: usize = 40_000;

fn federation(shards: usize) -> TestFederation {
    FederationBuilder::paper_triple(BODIES)
        .shards(shards)
        .build()
}

fn query() -> String {
    xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        4.0,
        None,
    )
}

/// A synthetic seed output of `total` tuples dealt round-robin over
/// `shards` parts, each carrying the rank column the gather strips.
fn seed_parts(total: usize, shards: usize) -> Vec<(PartialSet, StepStats)> {
    let columns = vec![
        ResultColumn::new("O.object_id", DataType::Id),
        ResultColumn::new(format!("O.{RANK_COL}"), DataType::Id),
    ];
    (0..shards)
        .map(|s| {
            let tuples: Vec<PartialTuple> = (s..total)
                .step_by(shards)
                .map(|rank| PartialTuple {
                    state: TupleState {
                        a: rank as f64,
                        ax: 1.0,
                        ay: 0.0,
                        az: 0.0,
                    },
                    values: vec![Value::Id(rank as u64), Value::Id(rank as u64)],
                })
                .collect();
            let stats = StepStats {
                tuples_out: tuples.len(),
                ..StepStats::default()
            };
            (
                PartialSet {
                    columns: columns.clone(),
                    tuples,
                },
                stats,
            )
        })
        .collect()
}

struct Measurement {
    shards: usize,
    rows: usize,
    submit_ms: f64,
    merge_ms: f64,
}

impl Measurement {
    fn merged_rows_per_sec(&self) -> f64 {
        self.rows as f64 / (self.submit_ms / 1000.0)
    }
    fn merge_tuples_per_sec(&self) -> f64 {
        MERGE_TUPLES as f64 / (self.merge_ms / 1000.0)
    }
}

/// One shard count: asserts parity against `reference`, then times the
/// submit and the synthetic 40k-tuple gather.
fn measure(shards: usize, reference: &str, iters: usize) -> Measurement {
    let fed = federation(shards);
    let sql = query();
    let (result, _) = fed.portal.submit(&sql).expect("bench query runs");
    assert_eq!(
        result.to_ascii(),
        reference,
        "{shards}-shard result diverged from the single-node baseline"
    );
    let started = Instant::now();
    for _ in 0..iters {
        fed.portal.submit(&sql).expect("bench query runs");
    }
    let submit_ms = started.elapsed().as_secs_f64() * 1000.0 / iters as f64;

    let parts = seed_parts(MERGE_TUPLES, shards);
    let started = Instant::now();
    for _ in 0..iters {
        let (merged, _) = merge_seed(&parts, "O").expect("merge succeeds");
        assert_eq!(merged.len(), MERGE_TUPLES);
    }
    let merge_ms = started.elapsed().as_secs_f64() * 1000.0 / iters as f64;

    Measurement {
        shards,
        rows: result.row_count(),
        submit_ms,
        merge_ms,
    }
}

/// E14b — replicated shard groups (R=2) under one injected shard
/// death: the per-submit failover overhead against the healthy
/// replicated run, and the hedge win-rate when the surviving primary
/// straggles past the hedge delay.
struct ReplicatedMeasurement {
    rows: usize,
    healthy_submit_ms: f64,
    failover_submit_ms: f64,
    failovers_per_submit: f64,
    hedges: u64,
    hedge_wins: u64,
}

impl ReplicatedMeasurement {
    fn failover_overhead_ms(&self) -> f64 {
        self.failover_submit_ms - self.healthy_submit_ms
    }
    fn hedge_win_rate(&self) -> f64 {
        if self.hedges == 0 {
            0.0
        } else {
            self.hedge_wins as f64 / self.hedges as f64
        }
    }
}

fn replicated_federation(faults: FaultPlan, hedge_delay_s: f64) -> TestFederation {
    FederationBuilder::paper_triple(BODIES)
        .shards(2)
        .replicas(2)
        .config(FederationConfig {
            hedge_delay_s,
            ..FederationConfig::default()
        })
        .faults(faults)
        .build()
}

/// Times the replicated configurations; byte-identity against the
/// single-node `reference` is asserted while measuring.
fn measure_replicated(reference: &str, iters: usize) -> ReplicatedMeasurement {
    let sql = query();
    let timed = |fed: &TestFederation| -> (usize, f64) {
        let (result, _) = fed.portal.submit(&sql).expect("bench query runs");
        assert_eq!(
            result.to_ascii(),
            reference,
            "replicated result diverged from the single-node baseline"
        );
        let started = Instant::now();
        for _ in 0..iters {
            fed.portal.submit(&sql).expect("bench query runs");
        }
        (
            result.row_count(),
            started.elapsed().as_secs_f64() * 1000.0 / iters as f64,
        )
    };

    let healthy = replicated_federation(FaultPlan::new(), 0.0);
    let (rows, healthy_submit_ms) = timed(&healthy);

    // One shard death: the sdss-s0 primary never answers a scatter
    // probe again; every submit fails over to its r1 sibling.
    let dead_primary = FaultPlan::new().rule(
        FaultRule::new(FaultKind::HostDown)
            .host("sdss-s0.skyquery.net")
            .action("ScatterStep")
            .times(1_000_000),
    );
    let faulted = replicated_federation(dead_primary, 0.0);
    let (_, failover_submit_ms) = timed(&faulted);
    let failovers = faulted.net.metrics().node_event_total("failover");

    // Hedging: the same primary straggles 5 simulated seconds past a
    // 1-second hedge delay, so each probe of its extent races the
    // sibling and the fast reply wins.
    let straggler = FaultPlan::new().rule(
        FaultRule::new(FaultKind::Latency(5.0))
            .host("sdss-s0.skyquery.net")
            .action("ScatterStep"),
    );
    let hedged = replicated_federation(straggler, 1.0);
    timed(&hedged);
    // Hedges and wins ride the merged step statistics; count both from
    // the same traced submit so the win rate has one denominator.
    let (_, trace) = hedged.portal.submit(&sql).expect("bench query runs");
    let stat_sum = |label: &str| -> u64 {
        trace
            .events()
            .iter()
            .filter(|e| e.action == "cross match step")
            .filter_map(|e| e.detail.split(label).nth(1))
            .filter_map(|tail| {
                tail.split(|c: char| !c.is_ascii_digit())
                    .next()
                    .and_then(|n| n.parse::<u64>().ok())
            })
            .sum()
    };
    let hedges = stat_sum("hedges ");
    let hedge_wins = stat_sum("hedge wins ");

    ReplicatedMeasurement {
        rows,
        healthy_submit_ms,
        failover_submit_ms,
        // (iters + 1) submits hit the dead primary: the parity check
        // fails over too.
        failovers_per_submit: failovers as f64 / (iters as f64 + 1.0),
        hedges,
        hedge_wins,
    }
}

fn write_json(measurements: &[Measurement], replicated: &ReplicatedMeasurement) {
    let mut configs = String::new();
    for (i, m) in measurements.iter().enumerate() {
        if i > 0 {
            configs.push_str(",\n");
        }
        configs.push_str(&format!(
            "    {{\"shards\": {}, \"result_rows\": {}, \"submit_ms\": {:.3}, \
             \"merged_rows_per_sec\": {:.0}, \"merge_40k_ms\": {:.3}, \
             \"merge_tuples_per_sec\": {:.0}, \"byte_identical\": true}}",
            m.shards,
            m.rows,
            m.submit_ms,
            m.merged_rows_per_sec(),
            m.merge_ms,
            m.merge_tuples_per_sec(),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"shards\",\n  \"step\": \"3-way cross-match, {BODIES} bodies, \
         threshold 4.0, zone shards per archive\",\n  \"configs\": [\n{configs}\n  ],\n  \
         \"replicated\": {{\"shards\": 2, \"replicas\": 2, \"result_rows\": {}, \
         \"healthy_submit_ms\": {:.3}, \"one_shard_dead_submit_ms\": {:.3}, \
         \"failover_overhead_ms\": {:.3}, \"failovers_per_submit\": {:.2}, \
         \"hedges\": {}, \"hedge_wins\": {}, \"hedge_win_rate\": {:.2}, \
         \"byte_identical\": true}}\n}}\n",
        replicated.rows,
        replicated.healthy_submit_ms,
        replicated.failover_submit_ms,
        replicated.failover_overhead_ms(),
        replicated.failovers_per_submit,
        replicated.hedges,
        replicated.hedge_wins,
        replicated.hedge_win_rate(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shards.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn print_tables() {
    println!("\n=== E14: scatter-gather vs shard count ({BODIES} bodies, 3 archives) ===");
    println!(
        "{:<8} {:>8} {:>12} {:>16} {:>14} {:>16}",
        "shards", "rows", "submit (ms)", "merged rows/s", "merge40k (ms)", "merge tuples/s"
    );
    let baseline = federation(1);
    let (reference, _) = baseline.portal.submit(&query()).expect("baseline runs");
    let reference = reference.to_ascii();
    let mut measurements = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        let m = measure(shards, &reference, 3);
        println!(
            "{:<8} {:>8} {:>12.1} {:>16.0} {:>14.2} {:>16.0}",
            m.shards,
            m.rows,
            m.submit_ms,
            m.merged_rows_per_sec(),
            m.merge_ms,
            m.merge_tuples_per_sec(),
        );
        measurements.push(m);
    }
    let replicated = measure_replicated(&reference, 3);
    println!("\n=== E14b: replicated shard groups (2 shards x 2 replicas) ===");
    println!(
        "healthy submit {:.1} ms; one shard dead {:.1} ms \
         (failover overhead {:.1} ms, {:.1} failovers/submit); \
         hedges {} won {} ({:.0}% win rate)",
        replicated.healthy_submit_ms,
        replicated.failover_submit_ms,
        replicated.failover_overhead_ms(),
        replicated.failovers_per_submit,
        replicated.hedges,
        replicated.hedge_wins,
        replicated.hedge_win_rate() * 100.0,
    );
    write_json(&measurements, &replicated);
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("e14_shards");
    group.sample_size(10);
    for &shards in &[1usize, 4] {
        let fed = federation(shards);
        let sql = query();
        group.bench_with_input(BenchmarkId::new("submit", shards), &shards, |b, _| {
            b.iter(|| fed.portal.submit(&sql).expect("bench query runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
