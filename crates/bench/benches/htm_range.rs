//! Experiment E6 — §5.4: the `AREA` clause is "implemented using the
//! range search capabilities of the individual archives", i.e. the HTM
//! index. "It helps in reducing spatial processing at individual
//! databases" (§5.1).
//!
//! Table: rows probed by the HTM cover vs a full scan across search
//! radii, and cover size across mesh depths. Criterion times HTM vs
//! linear range searches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_htm::{Cover, Mesh, SkyPoint};
use skyquery_sim::{BodyCatalog, CatalogParams, Survey, SurveyParams};
use skyquery_storage::{Database, ScanOptions};

fn survey_db(bodies: usize, depth: u8) -> Database {
    let catalog = BodyCatalog::generate(CatalogParams {
        count: bodies,
        radius_deg: 2.0,
        ..CatalogParams::default()
    });
    let mut params = SurveyParams::sdss_like();
    params.htm_depth = depth;
    Survey::observe(&catalog, params).db
}

fn print_tables() {
    let center = SkyPoint::from_radec_deg(185.0, -0.5);

    println!("\n=== E6a: HTM range search vs linear scan (20000 objects, depth 14) ===");
    println!(
        "{:<18} {:>10} {:>14} {:>14}",
        "radius (arcmin)", "hits", "htm probes*", "scan probes"
    );
    let mut db = survey_db(20_000, 14);
    let total = db.row_count("Photo_Object").unwrap();
    for radius_arcmin in [1.0, 5.0, 20.0, 60.0] {
        let radius = (radius_arcmin / 60.0_f64).to_radians();
        db.cold_cache();
        db.reset_cache_stats();
        let hits = db
            .range_search("Photo_Object", center, radius, ScanOptions::default())
            .unwrap()
            .len();
        let probes = db.cache_stats().accesses();
        println!(
            "{:<18} {:>10} {:>14} {:>14}",
            radius_arcmin, hits, probes, total
        );
    }
    println!("* rows touched by the cover (full + partial trixels)");

    println!("\n=== E6b: circle-cover size vs mesh depth (radius 10 arcmin) ===");
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "depth", "ranges", "trixels", "full frac"
    );
    for depth in [6u8, 8, 10, 12, 14] {
        let mesh = Mesh::new(depth);
        let cover = Cover::circle(&mesh, center, (10.0 / 60.0_f64).to_radians());
        let full: u64 = cover.full_ranges().iter().map(|r| r.len()).sum();
        let total = cover.trixel_count();
        println!(
            "{:<8} {:>12} {:>12} {:>11.2}%",
            depth,
            cover.full_ranges().len() + cover.partial_ranges().len(),
            total,
            100.0 * full as f64 / total.max(1) as f64
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();
    let center = SkyPoint::from_radec_deg(185.0, -0.5);
    let radius = (10.0 / 60.0_f64).to_radians();
    let mut db = survey_db(20_000, 14);
    let mut group = c.benchmark_group("e6_range_search");
    group.sample_size(20);
    group.bench_function("htm_index", |b| {
        b.iter(|| {
            db.range_search("Photo_Object", center, radius, ScanOptions::untracked())
                .unwrap()
        })
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            db.range_search_linear("Photo_Object", center, radius, ScanOptions::untracked())
                .unwrap()
        })
    });
    for depth in [8u8, 12] {
        group.bench_with_input(
            BenchmarkId::new("cover_only", depth),
            &depth,
            |b, &depth| {
                let mesh = Mesh::new(depth);
                b.iter(|| Cover::circle(&mesh, center, radius));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
