//! Experiment E9 — §6: "SOAP is considered to be slower than other
//! middleware, like, CORBA, because of the time spent for serialization
//! and de-serialization."
//!
//! Table: encoded size and round-trip cost of a partial-result table
//! through (a) the SOAP/XML wire path and (b) a minimal binary codec —
//! the stand-in for a CORBA-style binary middleware. Criterion times
//! encode and decode separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_core::{ResultColumn, ResultSet};
use skyquery_soap::{RpcResponse, SoapValue};
use skyquery_storage::{DataType, Value};

fn sample_result(rows: usize) -> ResultSet {
    let mut rs = ResultSet::new(vec![
        ResultColumn::new("O.object_id", DataType::Id),
        ResultColumn::new("O.ra", DataType::Float),
        ResultColumn::new("O.dec", DataType::Float),
        ResultColumn::new("O.type", DataType::Text),
        ResultColumn::new("O.i_flux", DataType::Float),
    ]);
    for i in 0..rows {
        rs.push_row(vec![
            Value::Id(i as u64),
            Value::Float(185.0 + i as f64 * 1e-4),
            Value::Float(-0.5 + i as f64 * 1e-4),
            Value::Text(if i % 2 == 0 { "GALAXY" } else { "STAR" }.into()),
            Value::Float(21.5 + (i % 10) as f64),
        ])
        .unwrap();
    }
    rs
}

/// The SOAP/XML path a partial result actually takes between SkyNodes.
fn soap_roundtrip(rs: &ResultSet) -> ResultSet {
    let xml = RpcResponse::new("CrossMatch")
        .result("partial", SoapValue::Table(rs.to_votable("partial")))
        .to_xml();
    let resp = RpcResponse::parse(&xml).unwrap().unwrap();
    ResultSet::from_votable(resp.get("partial").unwrap().as_table().unwrap()).unwrap()
}

/// A minimal length-prefixed binary codec: the CORBA-ish comparator.
mod binary {
    use super::*;

    pub fn encode(rs: &ResultSet) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend((rs.columns.len() as u32).to_le_bytes());
        out.extend((rs.rows.len() as u32).to_le_bytes());
        for row in &rs.rows {
            for v in row {
                match v {
                    Value::Null => out.push(0),
                    Value::Bool(b) => {
                        out.push(1);
                        out.push(*b as u8);
                    }
                    Value::Int(i) => {
                        out.push(2);
                        out.extend(i.to_le_bytes());
                    }
                    Value::Float(x) => {
                        out.push(3);
                        out.extend(x.to_le_bytes());
                    }
                    Value::Text(s) => {
                        out.push(4);
                        out.extend((s.len() as u32).to_le_bytes());
                        out.extend(s.as_bytes());
                    }
                    Value::Id(u) => {
                        out.push(5);
                        out.extend(u.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    pub fn decode(buf: &[u8], columns: Vec<ResultColumn>) -> ResultSet {
        let mut pos = 8usize; // skip the two u32 headers
        let ncols = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let nrows = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
        let mut rs = ResultSet::new(columns);
        for _ in 0..nrows {
            let mut row = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let tag = buf[pos];
                pos += 1;
                row.push(match tag {
                    0 => Value::Null,
                    1 => {
                        let b = buf[pos] != 0;
                        pos += 1;
                        Value::Bool(b)
                    }
                    2 => {
                        let v = i64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
                        pos += 8;
                        Value::Int(v)
                    }
                    3 => {
                        let v = f64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
                        pos += 8;
                        Value::Float(v)
                    }
                    4 => {
                        let len =
                            u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
                        pos += 4;
                        let s = String::from_utf8_lossy(&buf[pos..pos + len]).into_owned();
                        pos += len;
                        Value::Text(s)
                    }
                    5 => {
                        let v = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
                        pos += 8;
                        Value::Id(v)
                    }
                    other => panic!("bad tag {other}"),
                });
            }
            rs.push_row(row).unwrap();
        }
        rs
    }
}

fn print_table() {
    println!("\n=== E9: SOAP/XML vs binary codec (5-column partial results) ===");
    println!(
        "{:<8} {:>14} {:>14} {:>10}",
        "rows", "xml bytes", "binary bytes", "xml/bin"
    );
    for rows in [100usize, 1000, 5000] {
        let rs = sample_result(rows);
        let xml_len = RpcResponse::new("CrossMatch")
            .result("partial", SoapValue::Table(rs.to_votable("partial")))
            .to_xml()
            .len();
        let bin_len = binary::encode(&rs).len();
        println!(
            "{:<8} {:>14} {:>14} {:>9.2}x",
            rows,
            xml_len,
            bin_len,
            xml_len as f64 / bin_len as f64
        );
    }
    // Sanity: both paths are lossless.
    let rs = sample_result(200);
    assert_eq!(soap_roundtrip(&rs), rs);
    assert_eq!(binary::decode(&binary::encode(&rs), rs.columns.clone()), rs);
    println!("(XML inflates size ~2x here; the timed groups show the much larger CPU gap)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let rs = sample_result(2000);
    let xml = RpcResponse::new("CrossMatch")
        .result("partial", SoapValue::Table(rs.to_votable("partial")))
        .to_xml();
    let bin = binary::encode(&rs);
    let mut group = c.benchmark_group("e9_serialization");
    group.sample_size(20);
    group.bench_function("soap_encode", |b| {
        b.iter(|| {
            RpcResponse::new("CrossMatch")
                .result("partial", SoapValue::Table(rs.to_votable("partial")))
                .to_xml()
        })
    });
    group.bench_function("soap_decode", |b| {
        b.iter(|| RpcResponse::parse(&xml).unwrap().unwrap())
    });
    group.bench_function("binary_encode", |b| b.iter(|| binary::encode(&rs)));
    group.bench_with_input(
        BenchmarkId::from_parameter("binary_decode"),
        &bin,
        |b, bin| b.iter(|| binary::decode(bin, rs.columns.clone())),
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
