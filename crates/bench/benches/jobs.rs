//! Experiment E13 — queue throughput and wait latency for the
//! multi-tenant job service.
//!
//! Table: jobs/sec drained and p50/p95 queue wait (simulated seconds)
//! over a fixed 128-job backlog as the tenant population grows from 1
//! to 64 — the fair scheduler's bookkeeping must stay cheap and waits
//! must stay bounded as the tenant table widens. Criterion times one
//! submit → drain cycle.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use skyquery_bench::triple_federation;
use skyquery_jobs::{JobClient, JobService, JobServiceConfig, QuotaClass};
use skyquery_sim::TestFederation;
use std::sync::Arc;

const BACKLOG: usize = 128;

/// Cheap two-archive queries so the bench measures the queue, not the
/// cross-match kernel.
const QUERIES: [&str; 2] = [
    "SELECT O.object_id, T.object_id \
     FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T \
     WHERE XMATCH(O, T) < 3.0 \
     ORDER BY O.object_id, T.object_id",
    "SELECT T.object_id, P.object_id \
     FROM TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
     WHERE XMATCH(T, P) < 3.0 \
     ORDER BY T.object_id, P.object_id",
];

fn classes() -> [QuotaClass; 3] {
    [QuotaClass::Free, QuotaClass::Standard, QuotaClass::Premium]
}

fn service_for(fed: &TestFederation) -> Arc<JobService> {
    JobService::start(
        &fed.net,
        "jobs.skyquery.net",
        fed.portal.clone(),
        JobServiceConfig {
            max_running: 4,
            tenant_max_running: 2,
            // The backlog must fit whole, even when one tenant owns it.
            tenant_max_queued: BACKLOG,
            max_queued: BACKLOG,
            ..JobServiceConfig::default()
        },
    )
}

/// Submits the backlog round-robin across `tenants` tenants and drains
/// it, advancing the simulated clock per quantum so waits accumulate.
/// Returns (wall seconds, sorted per-job waits in simulated seconds).
fn submit_and_drain(tenants: usize) -> (f64, Vec<f64>) {
    let fed = triple_federation(150);
    let svc = service_for(&fed);
    let cli = JobClient::new(&fed.net, "bench-driver", svc.url());
    let class_pool = classes();

    let started = Instant::now();
    let mut ids = Vec::with_capacity(BACKLOG);
    for i in 0..BACKLOG {
        let tenant = format!("tenant-{}", i % tenants);
        let class = class_pool[(i % tenants) % class_pool.len()];
        let (id, _) = cli
            .submit_with(&tenant, QUERIES[i % QUERIES.len()], 0, class, None)
            .expect("backlog fits the queue bounds");
        ids.push(id);
    }
    while svc.pump() {
        fed.net.advance_clock(0.1);
    }
    let wall_s = started.elapsed().as_secs_f64();

    let mut waits: Vec<f64> = ids
        .iter()
        .map(|&id| cli.poll(id).expect("record lease lives").wait_s)
        .collect();
    waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (wall_s, waits)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn print_table() {
    println!("\n=== E13: job-queue throughput vs tenant population ({BACKLOG} jobs) ===");
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>14}",
        "tenants", "jobs/sec", "p50 wait (s)", "p95 wait (s)", "max wait (s)"
    );
    for tenants in [1usize, 8, 64] {
        let (wall_s, waits) = submit_and_drain(tenants);
        println!(
            "{:<10} {:>10.0} {:>14.1} {:>14.1} {:>14.1}",
            tenants,
            BACKLOG as f64 / wall_s,
            percentile(&waits, 0.50),
            percentile(&waits, 0.95),
            waits.last().copied().unwrap_or(0.0),
        );
    }
    println!("(waits are simulated seconds — 0.1 s per scheduler quantum)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e13_job_queue");
    group.sample_size(10);
    for tenants in [1usize, 8, 64] {
        group.bench_function(format!("submit_drain_{tenants}_tenants"), |b| {
            b.iter(|| submit_and_drain(tenants))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
