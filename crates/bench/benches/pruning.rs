//! Experiment E7 — §5.4: partial tuples whose chi-square already exceeds
//! the threshold are pruned mid-chain ("only if it is larger than the
//! threshold, Ri … is sent to the next archive").
//!
//! Table: tuples surviving each chain stage as the XMATCH threshold
//! varies, against the unpruned cross-product size. Criterion compares
//! the chained pruning evaluation against the naive exhaustive matcher.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_bench::{triple_federation, triple_query};
use skyquery_core::baseline::naive_match;
use skyquery_htm::{SkyPoint, Vec3};

fn node_positions(fed: &skyquery_sim::TestFederation, archive: &str) -> Vec<Vec3> {
    let node = fed.node(archive).unwrap();
    let table = node.info().primary_table.clone();
    node.with_db(|db| {
        db.table(&table)
            .unwrap()
            .rows()
            .iter()
            .map(|r| {
                SkyPoint::from_radec_deg(r[1].as_f64().unwrap(), r[2].as_f64().unwrap()).to_vec3()
            })
            .collect()
    })
}

fn print_table() {
    println!("\n=== E7: tuples surviving each chain stage vs threshold (1000 bodies) ===");
    let fed = triple_federation(1000);
    let sizes: Vec<usize> = ["SDSS", "TWOMASS", "FIRST"]
        .iter()
        .map(|a| node_positions(&fed, a).len())
        .collect();
    let cross_product: u64 = sizes.iter().map(|&s| s as u64).product();
    println!(
        "archive sizes: SDSS={}, TWOMASS={}, FIRST={}  (cross product {})",
        sizes[0], sizes[1], sizes[2], cross_product
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>10}",
        "threshold", "after seed", "after 2nd", "after 3rd", "matches"
    );
    for threshold in [1.0, 2.0, 3.5, 5.0, 10.0] {
        let (result, trace) = fed.portal.submit(&triple_query(threshold)).unwrap();
        let survivors: Vec<String> = trace
            .events()
            .iter()
            .filter(|e| e.action == "cross match step")
            .map(|e| {
                e.detail
                    .rsplit_once("tuples out ")
                    .map(|(_, n)| n.to_string())
                    .unwrap_or_default()
            })
            .collect();
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>10}",
            threshold,
            survivors.first().cloned().unwrap_or_default(),
            survivors.get(1).cloned().unwrap_or_default(),
            survivors.get(2).cloned().unwrap_or_default(),
            result.row_count()
        );
    }
    println!("(pruning keeps intermediate sets near the final match count,\n far below the cross product)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    // Small instance so the naive O(n³) baseline stays feasible.
    let fed = triple_federation(150);
    let sql = triple_query(3.5);
    let pos: Vec<Vec<Vec3>> = ["SDSS", "TWOMASS", "FIRST"]
        .iter()
        .map(|a| node_positions(&fed, a))
        .collect();
    let sigmas = [
        (0.1 / 3600.0_f64).to_radians(),
        (0.3 / 3600.0_f64).to_radians(),
        (1.0 / 3600.0_f64).to_radians(),
    ];
    let mut group = c.benchmark_group("e7_pruning");
    group.sample_size(10);
    group.bench_function("chained_pruned", |b| {
        b.iter(|| fed.portal.submit(&sql).unwrap())
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("naive_cross_product"),
        &pos,
        |b, pos| b.iter(|| naive_match(pos, &sigmas, 3.5)),
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
