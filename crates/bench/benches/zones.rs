//! Zone-engine scaling — the parallel cross-match over declination zones.
//!
//! Table: wall-clock time of one match step on a large synthetic archive
//! at 1 / 2 / 4 workers, with the speedup over the single-worker run and
//! an equality check against the sequential kernel (the zone engine must
//! be byte-identical at every worker count). Criterion then measures a
//! smaller configuration per worker count.
//!
//! Speedup is bounded by the host's physical parallelism: on a
//! single-core container every worker count collapses to ~1×.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_core::engine::CrossMatchEngine;
use skyquery_core::xmatch::{
    match_step, MatchKernel, PartialSet, PartialTuple, StepConfig, TupleState,
};
use skyquery_core::ResultColumn;
use skyquery_htm::SkyPoint;
use skyquery_storage::{
    BufferCache, ColumnDef, DataType, Database, PositionColumns, TableSchema, Value,
};
use skyquery_zones::ZoneEngine;

const ARCSEC: f64 = 1.0 / 3600.0;

/// Deterministic xorshift so the bench needs no RNG dependency.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// An archive of `rows` objects scattered over a 20° band of sky.
fn archive(rows: usize) -> Database {
    let mut db = Database::with_cache("bench", BufferCache::new(1 << 16, 64));
    let schema = TableSchema::new(
        "objects",
        vec![
            ColumnDef::new("object_id", DataType::Id),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("dec", DataType::Float),
        ],
    )
    .with_position(PositionColumns::new("ra", "dec", 14))
    .unwrap();
    db.create_table(schema).unwrap();
    let mut rng = Rng(0x5eed_cafe);
    for i in 0..rows {
        let ra = 180.0 + 20.0 * rng.next_f64();
        let dec = -10.0 + 20.0 * rng.next_f64();
        db.insert(
            "objects",
            vec![Value::Id(i as u64 + 1), Value::Float(ra), Value::Float(dec)],
        )
        .unwrap();
    }
    db
}

/// Incoming 1-tuples: perturbed re-observations of every `stride`-th
/// archive object (so a good fraction of probes find a counterpart).
fn incoming(db: &Database, sigma_arcsec: f64, stride: usize) -> PartialSet {
    let sigma_rad = (sigma_arcsec * ARCSEC).to_radians();
    let table = db.table("objects").unwrap();
    let mut set = PartialSet::new(vec![ResultColumn::new("S.object_id", DataType::Id)]);
    let mut rng = Rng(0xfeed_beef);
    for (rid, row) in table.iter() {
        if rid % stride != 0 {
            continue;
        }
        let ra = row[1].as_f64().unwrap() + 0.3 * ARCSEC * (rng.next_f64() - 0.5);
        let dec = row[2].as_f64().unwrap() + 0.3 * ARCSEC * (rng.next_f64() - 0.5);
        set.tuples.push(PartialTuple {
            state: TupleState::single(SkyPoint::from_radec_deg(ra, dec).to_vec3(), sigma_rad),
            values: vec![row[0].clone()],
        });
    }
    set
}

fn cfg(workers: usize) -> StepConfig {
    StepConfig {
        alias: "B".into(),
        table: "objects".into(),
        sigma_rad: (0.2 * ARCSEC).to_radians(),
        threshold: 3.5,
        region: None,
        local_predicate: None,
        carried_columns: vec!["object_id".into()],
        xmatch_workers: workers,
        zone_height_deg: 0.5,
        kernel: MatchKernel::Htm,
    }
}

fn print_tables() {
    const ROWS: usize = 100_000;
    const STRIDE: usize = 4; // 25k incoming tuples
    println!(
        "\n=== zones: one match step, {ROWS}-row archive, {} tuples ===",
        ROWS / STRIDE
    );
    let mut db = archive(ROWS);
    let set = incoming(&db, 0.2, STRIDE);
    let (reference, ref_stats) = match_step(&mut db, &cfg(1), &set).unwrap();
    let engine = ZoneEngine::new();
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>10}",
        "workers", "time (ms)", "speedup", "tuples out", "identical"
    );
    let mut base_ms = 0.0;
    for workers in [1usize, 2, 4] {
        let t0 = Instant::now();
        let (out, stats) = engine.match_tuples(&mut db, &cfg(workers), &set).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if workers == 1 {
            base_ms = ms;
        }
        let identical = out == reference && stats == ref_stats;
        println!(
            "{:<10} {:>12.1} {:>9.2}x {:>12} {:>10}",
            workers,
            ms,
            base_ms / ms,
            stats.tuples_out,
            identical
        );
        assert!(identical, "zone engine diverged at {workers} workers");
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("zones_match_step");
    group.sample_size(10);
    let mut db = archive(20_000);
    let set = incoming(&db, 0.2, 4);
    for workers in [1usize, 2, 4] {
        let engine = ZoneEngine::new();
        let step_cfg = cfg(workers);
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| engine.match_tuples(&mut db, &step_cfg, &set).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
