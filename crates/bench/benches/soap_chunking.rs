//! Experiment E5 — §6: "The XML parser at the SkyNode would run out of
//! memory while parsing SOAP messages of about 10 MB. We worked around by
//! dividing large data sets into smaller chunks."
//!
//! Table: for a fixed large partial result, the number of messages, peak
//! message size, and total bytes as the parser limit shrinks — plus the
//! failure of the unchunked path. Criterion times end-to-end queries at
//! several limits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_bench::{triple_federation, triple_query};
use skyquery_core::FederationConfig;

fn print_table() {
    println!("\n=== E5: chunked transfer under shrinking parser limits (2000 bodies) ===");
    println!(
        "{:<16} {:>10} {:>16} {:>14} {:>10}",
        "limit (bytes)", "messages", "peak msg bytes", "total bytes", "result ok"
    );
    let fed = triple_federation(2000);
    let sql = triple_query(3.5);
    for limit in [10 * 1024 * 1024, 200_000, 50_000, 20_000] {
        fed.portal.set_config(FederationConfig {
            max_message_bytes: limit,
            chunking: true,
            ..FederationConfig::default()
        });
        fed.net.reset_metrics();
        let ok = fed.portal.submit(&sql).is_ok();
        let m = fed.net.metrics();
        let peak = m
            .links()
            .iter()
            .map(|(_, s)| s.bytes / s.messages.max(1))
            .max()
            .unwrap_or(0);
        println!(
            "{:<16} {:>10} {:>16} {:>14} {:>10}",
            limit,
            m.total().messages,
            peak,
            m.total().bytes,
            ok
        );
    }

    // The pre-workaround behaviour: chunking off, tiny limit → fault.
    fed.portal.set_config(FederationConfig {
        max_message_bytes: 20_000,
        chunking: false,
        ..FederationConfig::default()
    });
    let err = fed.portal.submit(&sql).unwrap_err();
    println!("without chunking at 20000-byte limit: FAULT ({err})");
    println!("(chunking trades more messages for bounded message size)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let fed = triple_federation(1200);
    let sql = triple_query(3.5);
    let mut group = c.benchmark_group("e5_chunking");
    group.sample_size(10);
    for limit in [10_000_000usize, 100_000, 30_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("limit_{limit}")),
            &limit,
            |b, &limit| {
                fed.portal.set_config(FederationConfig {
                    max_message_bytes: limit,
                    chunking: true,
                    ..FederationConfig::default()
                });
                b.iter(|| fed.portal.submit(&sql).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
