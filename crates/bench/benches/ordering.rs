//! Experiment E3 — §5.3: "the order based on the count star values will
//! often decrease the network transmission costs."
//!
//! Table: total transmitted bytes per plan-ordering strategy, at three
//! federation sizes. Criterion then times the two extreme strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyquery_bench::{config_with_ordering, measure_bytes, triple_federation, triple_query};
use skyquery_core::OrderingStrategy;

fn print_table() {
    println!("\n=== E3: transmission bytes by plan ordering (XMATCH(O,T,P) < 3.5) ===");
    println!(
        "{:<10} {:>16} {:>16} {:>16} {:>16}",
        "bodies", "desc (paper)", "asc", "declaration", "random(3)"
    );
    for bodies in [500, 1500, 3000] {
        let fed = triple_federation(bodies);
        let sql = triple_query(3.5);
        let mut row = Vec::new();
        for ordering in [
            OrderingStrategy::CountStarDescending,
            OrderingStrategy::CountStarAscending,
            OrderingStrategy::DeclarationOrder,
            OrderingStrategy::Random(3),
        ] {
            fed.portal.set_config(config_with_ordering(ordering));
            row.push(measure_bytes(&fed, &sql));
        }
        println!(
            "{:<10} {:>16} {:>16} {:>16} {:>16}",
            bodies, row[0], row[1], row[2], row[3]
        );
    }
    println!("(the paper's descending order should transmit the least)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let fed = triple_federation(1000);
    let sql = triple_query(3.5);
    let mut group = c.benchmark_group("e3_ordering");
    group.sample_size(10);
    for (name, ordering) in [
        ("count_star_desc", OrderingStrategy::CountStarDescending),
        ("count_star_asc", OrderingStrategy::CountStarAscending),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &ordering, |b, &o| {
            fed.portal.set_config(config_with_ordering(o));
            b.iter(|| fed.portal.submit(&sql).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
