//! Shared helpers for the SkyQuery benchmark harness.
//!
//! Each bench under `benches/` regenerates one experiment from
//! `EXPERIMENTS.md` (E3–E10): it prints the experiment's table once, then
//! lets Criterion measure the timed variants. The helpers here build the
//! standard federations and workloads so every experiment runs against
//! the same synthetic sky.

use skyquery_core::FederationConfig;
use skyquery_net::CostModel;
use skyquery_sim::{xmatch_query, CatalogParams, FederationBuilder, SurveyParams, TestFederation};

/// The standard three-archive federation over `bodies` bodies.
pub fn triple_federation(bodies: usize) -> TestFederation {
    FederationBuilder::paper_triple(bodies).build()
}

/// A federation with `n` archives of alternating density/precision over
/// `bodies` bodies (experiment E8).
pub fn n_archive_federation(n: usize, bodies: usize) -> TestFederation {
    let mut b = FederationBuilder::new().catalog(CatalogParams {
        count: bodies,
        ..CatalogParams::default()
    });
    for i in 0..n {
        b = b.survey(SurveyParams {
            name: format!("ARCH{i}"),
            sigma_arcsec: 0.1 + 0.15 * (i % 4) as f64,
            detection_fraction: 0.9 - 0.1 * (i % 5) as f64,
            false_detections_per_1000: 5,
            flux_scale: 1.0,
            table: "Objects".into(),
            htm_depth: 13,
            seed: 9000 + i as u64,
        });
    }
    b.build()
}

/// The three-way cross match over the standard federation.
pub fn triple_query(threshold: f64) -> String {
    xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        threshold,
        None,
    )
}

/// The cross match over the first `n` archives of an
/// [`n_archive_federation`].
pub fn n_archive_query(n: usize, threshold: f64) -> String {
    let names: Vec<String> = (0..n).map(|i| format!("ARCH{i}")).collect();
    let aliases: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
    let refs: Vec<(&str, &str, &str)> = names
        .iter()
        .zip(&aliases)
        .map(|(n, a)| (n.as_str(), "Objects", a.as_str()))
        .collect();
    xmatch_query(&refs, threshold, None)
}

/// Runs a query and returns total transmitted bytes.
pub fn measure_bytes(fed: &TestFederation, sql: &str) -> u64 {
    fed.net.reset_metrics();
    fed.portal.submit(sql).expect("query succeeds");
    fed.net.metrics().total().bytes
}

/// Runs the pull-to-portal baseline and returns total transmitted bytes.
pub fn measure_bytes_pull(fed: &TestFederation, sql: &str) -> u64 {
    fed.net.reset_metrics();
    fed.portal
        .submit_pull_to_portal(sql)
        .expect("baseline succeeds");
    fed.net.metrics().total().bytes
}

/// A config preset with everything default but the given ordering.
pub fn config_with_ordering(ordering: skyquery_core::OrderingStrategy) -> FederationConfig {
    FederationConfig {
        ordering,
        ..FederationConfig::default()
    }
}

/// A 2002-flavoured cost model for simulated-time reporting.
pub fn internet_model() -> CostModel {
    CostModel::internet_2002()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_runnable_setups() {
        let fed = triple_federation(150);
        let bytes = measure_bytes(&fed, &triple_query(3.5));
        assert!(bytes > 0);
        let pull = measure_bytes_pull(&fed, &triple_query(3.5));
        assert!(pull > 0);
    }

    #[test]
    fn n_archive_setup_runs() {
        let fed = n_archive_federation(4, 120);
        let (result, _) = fed.portal.submit(&n_archive_query(4, 3.5)).unwrap();
        assert!(result.row_count() > 0);
    }
}
