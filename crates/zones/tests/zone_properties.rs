//! Property tests: the zone-partitioned engine must be **byte-identical**
//! to the sequential kernels — same tuples, same order, same `chi2_min`
//! (tuple states compare exactly, field by field), same statistics — for
//! every worker count and zone height, on match steps and drop-out (`!C`)
//! steps alike. The random fields are centered on declination 0, which is
//! a zone boundary at every height, so boundary-straddling probe balls
//! are exercised constantly.

use proptest::prelude::*;
use skyquery_core::engine::CrossMatchEngine;
use skyquery_core::xmatch::{
    dropout_step, match_step, MatchKernel, PartialSet, PartialTuple, StepConfig, TupleState,
};
use skyquery_core::ResultColumn;
use skyquery_htm::SkyPoint;
use skyquery_storage::{
    BufferCache, ColumnDef, DataType, Database, PositionColumns, TableSchema, Value,
};
use skyquery_zones::ZoneEngine;

const ARCSEC: f64 = 1.0 / 3600.0;
const WORKERS: [usize; 3] = [1, 2, 8];
const HEIGHTS: [f64; 4] = [0.05, 0.1, 0.5, 5.0];

fn sigma_rad(arcsec: f64) -> f64 {
    (arcsec * ARCSEC).to_radians()
}

/// An archive database with objects at the given (ra, dec) positions.
fn archive(name: &str, points: &[(f64, f64)]) -> Database {
    let mut db = Database::with_cache(name, BufferCache::new(4096, 16));
    let schema = TableSchema::new(
        "objects",
        vec![
            ColumnDef::new("object_id", DataType::Id),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("dec", DataType::Float),
        ],
    )
    .with_position(PositionColumns::new("ra", "dec", 14))
    .unwrap();
    db.create_table(schema).unwrap();
    for (i, &(ra, dec)) in points.iter().enumerate() {
        db.insert(
            "objects",
            vec![Value::Id(i as u64 + 1), Value::Float(ra), Value::Float(dec)],
        )
        .unwrap();
    }
    db
}

fn cfg(sigma_arcsec: f64, threshold: f64, workers: usize, zone_height_deg: f64) -> StepConfig {
    StepConfig {
        alias: "B".into(),
        table: "objects".into(),
        sigma_rad: sigma_rad(sigma_arcsec),
        threshold,
        region: None,
        local_predicate: None,
        carried_columns: vec!["object_id".into()],
        xmatch_workers: workers,
        zone_height_deg,
        kernel: MatchKernel::Htm,
    }
}

/// Incoming 1-tuples at the given positions, plus one tuple with a
/// degenerate state (no best position) that must silently leave the chain
/// in both engines.
fn singles(points: &[(f64, f64)], sigma_arcsec: f64) -> PartialSet {
    let mut set = PartialSet::new(vec![ResultColumn::new("A.object_id", DataType::Id)]);
    for (i, &(ra, dec)) in points.iter().enumerate() {
        set.tuples.push(PartialTuple {
            state: TupleState::single(
                SkyPoint::from_radec_deg(ra, dec).to_vec3(),
                sigma_rad(sigma_arcsec),
            ),
            values: vec![Value::Id(i as u64 + 1)],
        });
    }
    set.tuples.push(PartialTuple {
        state: TupleState {
            a: 1.0,
            ax: 0.0,
            ay: 0.0,
            az: 0.0,
        },
        values: vec![Value::Id(9999)],
    });
    set
}

/// Asserts that the zone engine reproduces the sequential match step
/// exactly at every worker count and zone height.
fn assert_match_parity(
    db: &mut Database,
    incoming: &PartialSet,
    sigma_arcsec: f64,
    threshold: f64,
) -> Result<(), TestCaseError> {
    let (seq, seq_stats) =
        match_step(db, &cfg(sigma_arcsec, threshold, 1, 0.1), incoming).expect("sequential match");
    let engine = ZoneEngine::new();
    for &height in &HEIGHTS {
        for &workers in &WORKERS {
            let (zoned, stats) = engine
                .match_tuples(db, &cfg(sigma_arcsec, threshold, workers, height), incoming)
                .expect("zoned match");
            prop_assert_eq!(
                &zoned,
                &seq,
                "match diverged: workers={} height={}",
                workers,
                height
            );
            prop_assert_eq!(
                stats,
                seq_stats,
                "stats diverged: workers={} height={}",
                workers,
                height
            );
        }
    }
    Ok(())
}

/// Asserts drop-out parity the same way.
fn assert_dropout_parity(
    db: &mut Database,
    incoming: &PartialSet,
    sigma_arcsec: f64,
    threshold: f64,
) -> Result<(), TestCaseError> {
    let (seq, seq_stats) = dropout_step(db, &cfg(sigma_arcsec, threshold, 1, 0.1), incoming)
        .expect("sequential dropout");
    let engine = ZoneEngine::new();
    for &height in &HEIGHTS {
        for &workers in &WORKERS {
            let (zoned, stats) = engine
                .dropout(db, &cfg(sigma_arcsec, threshold, workers, height), incoming)
                .expect("zoned dropout");
            prop_assert_eq!(
                &zoned,
                &seq,
                "dropout diverged: workers={} height={}",
                workers,
                height
            );
            prop_assert_eq!(
                stats,
                seq_stats,
                "stats diverged: workers={} height={}",
                workers,
                height
            );
        }
    }
    Ok(())
}

/// Strategy: base positions in a field straddling dec 0 (a zone boundary
/// at every height), each with a per-catalog sub-arcsec perturbation so
/// real matches occur.
fn correlated_field(n: usize) -> impl Strategy<Value = Vec<(f64, f64, f64, f64)>> {
    proptest::collection::vec(
        (
            (180.0f64..180.01),
            (-0.002f64..0.002),
            (-0.5f64..0.5),
            (-0.5f64..0.5),
        ),
        1..n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn zoned_match_is_byte_identical(
        field in correlated_field(25),
        strays in proptest::collection::vec(((180.0f64..180.01), (-0.002f64..0.002)), 0..8),
        sigma in 0.1f64..0.8,
        threshold in 2.0f64..5.0,
    ) {
        let incoming_pts: Vec<(f64, f64)> = field.iter().map(|&(ra, dec, _, _)| (ra, dec)).collect();
        let mut archive_pts: Vec<(f64, f64)> = field
            .iter()
            .map(|&(ra, dec, dra, ddec)| (ra + dra * ARCSEC, dec + ddec * ARCSEC))
            .collect();
        archive_pts.extend(strays);
        let mut db = archive("B", &archive_pts);
        let incoming = singles(&incoming_pts, sigma);
        assert_match_parity(&mut db, &incoming, sigma, threshold)?;
    }

    #[test]
    fn zoned_dropout_is_byte_identical(
        field in correlated_field(25),
        strays in proptest::collection::vec(((180.0f64..180.01), (-0.002f64..0.002)), 0..8),
        sigma in 0.1f64..0.8,
        threshold in 2.0f64..5.0,
    ) {
        let incoming_pts: Vec<(f64, f64)> = field.iter().map(|&(ra, dec, _, _)| (ra, dec)).collect();
        // Only every other field point gets an archive counterpart, so the
        // drop-out step both keeps and discards tuples.
        let mut archive_pts: Vec<(f64, f64)> = field
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, &(ra, dec, dra, ddec))| (ra + dra * ARCSEC, dec + ddec * ARCSEC))
            .collect();
        archive_pts.extend(strays);
        let mut db = archive("B", &archive_pts);
        let incoming = singles(&incoming_pts, sigma);
        assert_dropout_parity(&mut db, &incoming, sigma, threshold)?;
    }

    #[test]
    fn zoned_second_step_is_byte_identical(
        field in correlated_field(15),
        sigma in 0.1f64..0.8,
    ) {
        // Chain two match steps: the second sees genuine multi-observation
        // states whose search radii differ per tuple.
        let incoming_pts: Vec<(f64, f64)> = field.iter().map(|&(ra, dec, _, _)| (ra, dec)).collect();
        let archive_pts: Vec<(f64, f64)> = field
            .iter()
            .map(|&(ra, dec, dra, ddec)| (ra + dra * ARCSEC, dec + ddec * ARCSEC))
            .collect();
        let mut db_b = archive("B", &archive_pts);
        let incoming = singles(&incoming_pts, sigma);
        let (two_tuples, _) =
            match_step(&mut db_b, &cfg(sigma, 3.5, 1, 0.1), &incoming).expect("first step");
        prop_assume!(!two_tuples.is_empty());
        let archive_c: Vec<(f64, f64)> = field
            .iter()
            .map(|&(ra, dec, dra, ddec)| (ra - ddec * ARCSEC, dec + dra * ARCSEC))
            .collect();
        let mut db_c = archive("C", &archive_c);
        assert_match_parity(&mut db_c, &two_tuples, sigma, 3.5)?;
    }
}

#[test]
fn boundary_straddling_tuples_match_exactly() {
    // Tuples sitting exactly on and just beside zone boundaries of a 0.1°
    // map, with archive counterparts across the boundary line.
    let boundary_decs = [
        0.0,
        1e-7,
        -1e-7,
        0.1,
        0.1 - 1e-7,
        0.1 + 1e-7,
        -0.1,
        0.05,
        89.95,
        -89.95,
    ];
    let incoming_pts: Vec<(f64, f64)> = boundary_decs.iter().map(|&d| (200.0, d)).collect();
    // Counterparts offset ~0.8" in declination — across the line for the
    // on-boundary tuples.
    let archive_pts: Vec<(f64, f64)> = boundary_decs
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            (200.0, d + sign * 0.8 * ARCSEC)
        })
        .collect();
    let mut db = archive("B", &archive_pts);
    let incoming = singles(&incoming_pts, 0.3);
    let (seq, seq_stats) = match_step(&mut db, &cfg(0.3, 3.5, 1, 0.1), &incoming).unwrap();
    assert!(
        seq.len() >= boundary_decs.len() - 2,
        "expected mostly matches"
    );
    let engine = ZoneEngine::new();
    for workers in [2usize, 4, 8] {
        let (zoned, stats) = engine
            .match_tuples(&mut db, &cfg(0.3, 3.5, workers, 0.1), &incoming)
            .unwrap();
        assert_eq!(zoned, seq, "workers={workers}");
        assert_eq!(stats, seq_stats, "workers={workers}");
    }
    // Every zone task the engine built is visible in the report.
    let reports = engine.last_zone_reports();
    assert!(!reports.is_empty());
    assert_eq!(
        reports.iter().map(|r| r.tuples).sum::<usize>(),
        incoming.len() - 1 // minus the degenerate tuple
    );
}

#[test]
fn workers_one_delegates_to_sequential() {
    let pts = vec![(180.0, 0.0), (180.001, 0.001)];
    let mut db = archive("B", &pts);
    let incoming = singles(&pts, 0.2);
    let engine = ZoneEngine::new();
    let (zoned, _) = engine
        .match_tuples(&mut db, &cfg(0.2, 3.0, 1, 0.1), &incoming)
        .unwrap();
    let (seq, _) = match_step(&mut db, &cfg(0.2, 3.0, 1, 0.1), &incoming).unwrap();
    assert_eq!(zoned, seq);
    // The delegation path never partitions, so no reports are recorded.
    assert!(engine.last_zone_reports().is_empty());
}
