//! Deterministic reassembly of zone outputs.
//!
//! Workers finish in scheduling order, but every outcome carries its
//! tuple's index in the incoming partial set, and each tuple belongs to
//! exactly one zone — so sorting outcomes by that index reconstructs the
//! sequential engine's output order exactly, and summing the per-tuple
//! probe counts reconstructs its statistics.

use skyquery_core::{PartialSet, PartialTuple, ResultColumn, StepStats};

use crate::partition::ZoneTask;

/// What one zone worker decided about one tuple.
#[derive(Debug, Clone)]
pub struct TupleOutcome {
    /// The tuple's index in the incoming partial set.
    pub index: usize,
    /// Verified candidate hits evaluated for this tuple (feeds
    /// `StepStats::candidates_probed`).
    pub probed: usize,
    /// Candidate rows whose exact separation the kernel computed (feeds
    /// `StepStats::candidates_examined`).
    pub examined: usize,
    /// Candidates passing the chi² acceptance test (feeds
    /// `StepStats::chi2_accepted`).
    pub accepted: usize,
    /// Probes served entirely from warm scratch buffers, 0 or 1 (feeds
    /// `StepStats::scratch_reuse`).
    pub reused: usize,
    /// Zone tiles decoded on behalf of this tuple (batch kernel only;
    /// feeds `StepStats::tile_decodes`).
    pub tile_decodes: usize,
    /// Lane-prefilter survivors refined for this tuple (batch kernel
    /// only; feeds `StepStats::tile_hits`).
    pub tile_hits: usize,
    /// The step-kind-specific result.
    pub action: TupleAction,
}

/// Per-tuple result of a zone kernel.
#[derive(Debug, Clone)]
pub enum TupleAction {
    /// Match step: the surviving extensions, in candidate row order.
    Extend(Vec<PartialTuple>),
    /// Drop-out step: no counterpart found, the tuple passes through.
    Keep,
    /// Drop-out step: a counterpart exists, the tuple is discarded.
    Drop,
}

/// Reassembles match-step outcomes into the output partial set.
pub fn merge_match(
    columns: Vec<ResultColumn>,
    tuples_in: usize,
    mut outcomes: Vec<TupleOutcome>,
) -> (PartialSet, StepStats) {
    outcomes.sort_by_key(|o| o.index);
    let mut out = PartialSet::new(columns);
    let mut stats = StepStats {
        tuples_in,
        ..StepStats::default()
    };
    for outcome in outcomes {
        stats.candidates_probed += outcome.probed;
        stats.candidates_examined += outcome.examined;
        stats.chi2_accepted += outcome.accepted;
        stats.scratch_reuse += outcome.reused;
        stats.tile_decodes += outcome.tile_decodes;
        stats.tile_hits += outcome.tile_hits;
        match outcome.action {
            TupleAction::Extend(exts) => out.tuples.extend(exts),
            TupleAction::Keep | TupleAction::Drop => {
                unreachable!("drop-out outcome in a match merge")
            }
        }
    }
    stats.tuples_out = out.len();
    (out, stats)
}

/// Reassembles drop-out outcomes, cloning surviving tuples out of the
/// incoming set in their original order.
pub fn merge_dropout(
    incoming: &PartialSet,
    mut outcomes: Vec<TupleOutcome>,
) -> (PartialSet, StepStats) {
    outcomes.sort_by_key(|o| o.index);
    let mut out = PartialSet::new(incoming.columns.clone());
    let mut stats = StepStats {
        tuples_in: incoming.len(),
        ..StepStats::default()
    };
    for outcome in outcomes {
        stats.candidates_probed += outcome.probed;
        stats.candidates_examined += outcome.examined;
        stats.chi2_accepted += outcome.accepted;
        stats.scratch_reuse += outcome.reused;
        stats.tile_decodes += outcome.tile_decodes;
        stats.tile_hits += outcome.tile_hits;
        match outcome.action {
            TupleAction::Keep => out.tuples.push(incoming.tuples[outcome.index].clone()),
            TupleAction::Drop => {}
            TupleAction::Extend(_) => unreachable!("match outcome in a drop-out merge"),
        }
    }
    stats.tuples_out = out.len();
    (out, stats)
}

/// A per-zone work summary (diagnostics: zone load balance, replication
/// overhead of the overlap margins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneReport {
    /// The zone index.
    pub zone: usize,
    /// Tuples assigned to the zone.
    pub tuples: usize,
    /// Archive rows in the zone's padded band.
    pub rows: usize,
    /// The declination pad applied, degrees.
    pub margin_deg: f64,
}

/// Summarizes a partitioned step for diagnostics.
pub fn zone_reports(tasks: &[ZoneTask]) -> Vec<ZoneReport> {
    tasks
        .iter()
        .map(|t| ZoneReport {
            zone: t.zone,
            tuples: t.probes.len(),
            rows: t.rows.len(),
            margin_deg: t.margin_deg,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyquery_core::TupleState;
    use skyquery_htm::SkyPoint;

    fn tuple(dec: f64) -> PartialTuple {
        PartialTuple {
            state: TupleState::single(SkyPoint::from_radec_deg(1.0, dec).to_vec3(), 1e-6),
            values: vec![],
        }
    }

    #[test]
    fn match_merge_restores_tuple_order() {
        let (set, stats) = merge_match(
            vec![],
            3,
            vec![
                TupleOutcome {
                    index: 2,
                    probed: 4,
                    examined: 9,
                    accepted: 1,
                    reused: 1,
                    tile_decodes: 0,
                    tile_hits: 0,
                    action: TupleAction::Extend(vec![tuple(2.0)]),
                },
                TupleOutcome {
                    index: 0,
                    probed: 1,
                    examined: 2,
                    accepted: 2,
                    reused: 0,
                    tile_decodes: 0,
                    tile_hits: 0,
                    action: TupleAction::Extend(vec![tuple(0.0), tuple(0.5)]),
                },
            ],
        );
        assert_eq!(stats.tuples_in, 3);
        assert_eq!(stats.candidates_probed, 5);
        assert_eq!(stats.candidates_examined, 11);
        assert_eq!(stats.chi2_accepted, 3);
        assert_eq!(stats.scratch_reuse, 1);
        assert_eq!(stats.tuples_out, 3);
        let decs: Vec<i64> = set
            .tuples
            .iter()
            .map(|t| {
                (SkyPoint::from_vec3(t.state.best_position().unwrap()).dec_deg * 10.0).round()
                    as i64
            })
            .collect();
        assert_eq!(decs, vec![0, 5, 20]);
    }

    #[test]
    fn dropout_merge_keeps_original_order_and_tuples() {
        let incoming = PartialSet {
            columns: vec![],
            tuples: vec![tuple(0.0), tuple(1.0), tuple(2.0)],
        };
        let (set, stats) = merge_dropout(
            &incoming,
            vec![
                TupleOutcome {
                    index: 2,
                    probed: 2,
                    examined: 4,
                    accepted: 0,
                    reused: 1,
                    tile_decodes: 0,
                    tile_hits: 0,
                    action: TupleAction::Keep,
                },
                TupleOutcome {
                    index: 1,
                    probed: 3,
                    examined: 6,
                    accepted: 1,
                    reused: 1,
                    tile_decodes: 0,
                    tile_hits: 0,
                    action: TupleAction::Drop,
                },
                TupleOutcome {
                    index: 0,
                    probed: 0,
                    examined: 0,
                    accepted: 0,
                    reused: 0,
                    tile_decodes: 0,
                    tile_hits: 0,
                    action: TupleAction::Keep,
                },
            ],
        );
        assert_eq!(stats.candidates_probed, 5);
        assert_eq!(stats.candidates_examined, 10);
        assert_eq!(stats.chi2_accepted, 1);
        assert_eq!(stats.scratch_reuse, 2);
        assert_eq!(set.tuples.len(), 2);
        assert_eq!(set.tuples[0], incoming.tuples[0]);
        assert_eq!(set.tuples[1], incoming.tuples[2]);
    }
}
