//! Partitioning a cross-match step into independent zone tasks.
//!
//! Each incoming partial tuple belongs to exactly **one** zone — the zone
//! of its maximum-likelihood declination — so the union of all task
//! outputs is a partition of the sequential output, never a multiset.
//! Archive rows, by contrast, are *replicated* into every zone whose
//! padded band covers them: the pad (`margin_deg`) is the largest search
//! radius of the zone's tuples, so every row a tuple's probe ball can
//! reach is guaranteed to be inside the tuple's own zone bucket.

use std::collections::BTreeMap;

use skyquery_htm::SkyPoint;
use skyquery_storage::{RowId, Table};

use crate::zonemap::ZoneMap;

/// Extra declination pad beyond the exact radius bound, absorbing the
/// degree/radian conversion rounding.
const MARGIN_SLACK_DEG: f64 = 1e-9;

/// One tuple's candidate search ball (precomputed by the engine).
#[derive(Debug, Clone, Copy)]
pub struct TupleProbe {
    /// Index of the tuple in the incoming partial set.
    pub index: usize,
    /// Ball center: the tuple's maximum-likelihood position.
    pub center: SkyPoint,
    /// Conservative search radius, radians.
    pub radius_rad: f64,
}

/// The unit of parallel work: one zone's tuples plus the archive rows
/// their probe balls can reach.
#[derive(Debug, Clone)]
pub struct ZoneTask {
    /// The zone index in the [`ZoneMap`].
    pub zone: usize,
    /// Declination pad applied on both sides of the zone, degrees.
    pub margin_deg: f64,
    /// Probes of the tuples assigned to this zone, in tuple order.
    pub probes: Vec<TupleProbe>,
    /// Archive rows inside the padded band, ascending declination.
    pub rows: Vec<RowId>,
}

/// The partitioned step: tasks for every non-empty zone.
#[derive(Debug, Clone)]
pub struct ZonePlan {
    /// Tasks in ascending zone order.
    pub tasks: Vec<ZoneTask>,
    /// Tuples with a degenerate state (no best position) — they silently
    /// leave the chain, exactly as in the sequential kernels.
    pub degenerate: usize,
}

/// Extracts `(dec, RowId)` for every archive row, sorted by declination.
/// Built once per step and shared by the band lookups of all zones.
pub fn sorted_declinations(table: &Table, dec_ci: usize) -> Vec<(f64, RowId)> {
    let mut decs: Vec<(f64, RowId)> = table
        .iter()
        .map(|(rid, row)| (row[dec_ci].as_f64().expect("position column"), rid))
        .collect();
    decs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    decs
}

/// Buckets probes by zone and attaches each zone's padded archive band.
///
/// `decs` must be sorted ascending by declination (see
/// [`sorted_declinations`]); `degenerate` counts tuples the caller already
/// dropped for lacking a best position.
pub fn partition(
    map: &ZoneMap,
    probes: Vec<TupleProbe>,
    decs: &[(f64, RowId)],
    degenerate: usize,
) -> ZonePlan {
    // BTreeMap keeps zones — and therefore tasks — in ascending order,
    // independent of tuple arrival order.
    let mut zones: BTreeMap<usize, Vec<TupleProbe>> = BTreeMap::new();
    for probe in probes {
        zones
            .entry(map.zone_of(probe.center.dec_deg))
            .or_default()
            .push(probe);
    }

    let tasks = zones
        .into_iter()
        .map(|(zone, probes)| {
            let margin_deg = probes
                .iter()
                .map(|p| p.radius_rad.to_degrees())
                .fold(0.0_f64, f64::max)
                + MARGIN_SLACK_DEG;
            let (lo, hi) = map.bounds(zone);
            let start = decs.partition_point(|(d, _)| *d < lo - margin_deg);
            let end = decs.partition_point(|(d, _)| *d <= hi + margin_deg);
            let rows = decs[start..end].iter().map(|(_, rid)| *rid).collect();
            ZoneTask {
                zone,
                margin_deg,
                probes,
                rows,
            }
        })
        .collect();
    ZonePlan { tasks, degenerate }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(index: usize, dec: f64, radius_deg: f64) -> TupleProbe {
        TupleProbe {
            index,
            center: SkyPoint::from_radec_deg(10.0, dec),
            radius_rad: radius_deg.to_radians(),
        }
    }

    #[test]
    fn probes_partition_rows_replicate() {
        let map = ZoneMap::new(10.0);
        // Rows at dec −5, 4.9, 5.1, 20.
        let decs = vec![(-5.0, 0), (4.9, 1), (5.1, 2), (20.0, 3)];
        // Tuple 0 near the zone-9 / zone-10 boundary with a 0.5° radius;
        // tuple 1 well inside zone 9.
        let plan = partition(&map, vec![probe(0, 9.8, 0.5), probe(1, 2.0, 0.5)], &decs, 0);
        assert_eq!(plan.tasks.len(), 1); // both tuples land in zone 9 ([0,10))
        let task = &plan.tasks[0];
        assert_eq!(task.zone, 9);
        assert_eq!(task.probes.len(), 2);
        // Band [0−0.5−ε, 10+0.5+ε] picks up rows 1 and 2 but not −5 or 20.
        assert_eq!(task.rows, vec![1, 2]);
    }

    #[test]
    fn boundary_straddling_probe_sees_rows_across_the_edge() {
        let map = ZoneMap::new(1.0);
        // A probe just under dec 0 whose ball reaches into the zone above.
        let p = probe(0, -0.01, 0.1);
        let decs = vec![(-0.05, 7), (0.05, 8)];
        let plan = partition(&map, vec![p], &decs, 0);
        assert_eq!(plan.tasks.len(), 1);
        // Both rows are in the padded band even though 0.05 lies in the
        // next zone up.
        assert_eq!(plan.tasks[0].rows, vec![7, 8]);
    }

    #[test]
    fn zones_are_emitted_in_ascending_order() {
        let map = ZoneMap::new(10.0);
        let plan = partition(
            &map,
            vec![
                probe(0, 80.0, 0.1),
                probe(1, -80.0, 0.1),
                probe(2, 0.0, 0.1),
            ],
            &[],
            2,
        );
        let zones: Vec<usize> = plan.tasks.iter().map(|t| t.zone).collect();
        assert_eq!(zones, vec![1, 9, 17]);
        assert_eq!(plan.degenerate, 2);
    }
}
