//! Fixed-height declination zones.
//!
//! The sky is sliced into horizontal bands of equal declination height —
//! the classic "zones" decomposition for spherical cross-matching. A zone
//! index is a pure function of declination, so partitioning never needs
//! the mesh: tuples land in the zone of their maximum-likelihood position,
//! and archive rows are bucketed by declination bands widened with a
//! per-zone overlap margin.

use skyquery_core::plan::DEFAULT_ZONE_HEIGHT_DEG;

/// Smallest admissible zone height. Below this the zone *count* stays
/// bounded but the partitioner would degenerate into one tuple per task;
/// it also guards the division in [`ZoneMap::zone_of`].
const MIN_HEIGHT_DEG: f64 = 1e-4;

/// A slicing of declination `[-90°, +90°]` into fixed-height zones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneMap {
    height_deg: f64,
    count: usize,
}

impl ZoneMap {
    /// Builds a map with the given zone height in degrees. Non-finite,
    /// zero, or negative heights fall back to the federation default;
    /// valid heights are clamped into `[MIN_HEIGHT_DEG, 180]`.
    pub fn new(height_deg: f64) -> ZoneMap {
        let height = if height_deg.is_finite() && height_deg > 0.0 {
            height_deg.clamp(MIN_HEIGHT_DEG, 180.0)
        } else {
            DEFAULT_ZONE_HEIGHT_DEG
        };
        let count = (180.0 / height).ceil().max(1.0) as usize;
        ZoneMap {
            height_deg: height,
            count,
        }
    }

    /// The (possibly clamped) zone height in degrees.
    pub fn height_deg(&self) -> f64 {
        self.height_deg
    }

    /// Number of zones covering the sphere.
    pub fn zone_count(&self) -> usize {
        self.count
    }

    /// The zone containing the given declination. Out-of-range inputs are
    /// clamped to the polar zones.
    pub fn zone_of(&self, dec_deg: f64) -> usize {
        let idx = ((dec_deg + 90.0) / self.height_deg).floor();
        if idx.is_nan() || idx < 0.0 {
            return 0;
        }
        (idx as usize).min(self.count - 1)
    }

    /// The `[lo, hi)` declination bounds of a zone (the last zone closes
    /// at exactly +90°).
    pub fn bounds(&self, zone: usize) -> (f64, f64) {
        let lo = -90.0 + zone as f64 * self.height_deg;
        let hi = (lo + self.height_deg).min(90.0);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_sphere() {
        let m = ZoneMap::new(10.0);
        assert_eq!(m.zone_count(), 18);
        assert_eq!(m.zone_of(-90.0), 0);
        assert_eq!(m.zone_of(0.0), 9);
        // +90 is clamped into the last zone.
        assert_eq!(m.zone_of(90.0), 17);
        let (lo, hi) = m.bounds(17);
        assert_eq!((lo, hi), (80.0, 90.0));
    }

    #[test]
    fn degenerate_heights_fall_back() {
        for h in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert_eq!(ZoneMap::new(h).height_deg(), DEFAULT_ZONE_HEIGHT_DEG);
        }
        // Tiny heights are clamped, keeping the zone count bounded.
        assert!(ZoneMap::new(1e-12).zone_count() <= 1_800_000);
        // Oversized heights yield a single zone.
        assert_eq!(ZoneMap::new(500.0).zone_count(), 1);
    }

    #[test]
    fn wire_zone_label_agrees_with_the_map() {
        // The transfer layer stamps outgoing tuples with
        // `skyquery_core::transfer::zone_label`, which replicates this
        // map's formula so sender and engine agree on zone boundaries
        // without a crate dependency in that direction. Keep them
        // identical.
        for height in [
            1e-9,
            1e-4,
            0.05,
            0.1,
            0.37,
            5.0,
            180.0,
            500.0,
            0.0,
            f64::NAN,
        ] {
            let m = ZoneMap::new(height);
            for i in 0..=1800 {
                let dec = -90.0 + 0.1 * i as f64;
                assert_eq!(
                    skyquery_core::transfer::zone_label(dec, height) as usize,
                    m.zone_of(dec),
                    "dec {dec} height {height}"
                );
            }
            assert_eq!(
                skyquery_core::transfer::zone_label(f64::NAN, height) as usize,
                m.zone_of(f64::NAN)
            );
        }
    }

    #[test]
    fn columnar_layout_agrees_with_the_map() {
        // The storage crate's columnar position layout re-derives this
        // map's zone formula (storage cannot depend on this crate); the
        // columnar kernel scans the zone ranges that partitioning
        // computed with *this* map, so the two bucketings must stay
        // identical for every height and declination.
        use skyquery_storage::{
            BufferCache, ColumnDef, DataType, Database, PositionColumns, TableSchema, Value,
        };
        let mut db = Database::with_cache("agree", BufferCache::new(4096, 16));
        let schema = TableSchema::new(
            "objects",
            vec![
                ColumnDef::new("object_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 14))
        .unwrap();
        db.create_table(schema).unwrap();
        db.insert(
            "objects",
            vec![Value::Id(1), Value::Float(10.0), Value::Float(0.0)],
        )
        .unwrap();
        for height in [1e-9, 1e-4, 0.05, 0.1, 0.37, 5.0, 180.0, 500.0, 0.0, -3.0] {
            let m = ZoneMap::new(height);
            db.ensure_columnar("objects", height).unwrap();
            let cols = db.columnar_positions("objects").unwrap();
            assert_eq!(cols.zone_count(), m.zone_count(), "height {height}");
            assert_eq!(
                cols.height_deg().to_bits(),
                m.height_deg().to_bits(),
                "height {height}"
            );
            for i in 0..=1800 {
                let dec = -90.0 + 0.1 * i as f64;
                assert_eq!(
                    cols.zone_of_dec(dec),
                    m.zone_of(dec),
                    "dec {dec} height {height}"
                );
            }
            assert_eq!(cols.zone_of_dec(f64::NAN), m.zone_of(f64::NAN));
        }
    }

    #[test]
    fn zone_of_matches_bounds() {
        let m = ZoneMap::new(0.37);
        for dec in [-89.99, -45.3, -0.01, 0.0, 12.345, 89.99] {
            let z = m.zone_of(dec);
            let (lo, hi) = m.bounds(z);
            assert!(lo <= dec && (dec < hi || (z == m.zone_count() - 1 && dec <= hi)));
        }
    }

    #[test]
    fn out_of_range_declinations_clamp() {
        let m = ZoneMap::new(1.0);
        assert_eq!(m.zone_of(-1000.0), 0);
        assert_eq!(m.zone_of(1000.0), m.zone_count() - 1);
    }
}
