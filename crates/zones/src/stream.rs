//! Incremental (streaming) ingest for the zone engine.
//!
//! When a chunked partial-result transfer is in flight, the receiving
//! node feeds chunks to the engine as they arrive instead of buffering
//! the whole set. [`ZoneIngest`] is the zone engine's session: each
//! chunk is partitioned into declination zones and run through the zone
//! worker pool *immediately*, overlapping engine work with the remaining
//! `FetchChunk` round-trips. With zone-aware chunking on the sender, a
//! chunk's tuples share a narrow declination range, so the zone-local
//! HTM indexes built per chunk stay small.
//!
//! Byte-identity with the batch path holds tuple-by-tuple: a tuple's
//! outcome depends only on its own probe ball and the archive rows
//! within it (the padded band always covers the ball, and hits are
//! verified by exact distance), so processing any subset of tuples in
//! any chunk order and merging outcomes by the tuples' original indices
//! reproduces the whole-set run exactly — including statistics, since
//! per-tuple probe counts are independent too.

use std::time::{Duration, Instant};

use skyquery_core::engine::{PartialIngest, StepKind};
use skyquery_core::error::{FederationError, Result};
use skyquery_core::xmatch::{
    decode_materialized, extend_tuple_staged, materialize_temp, probe_ball, tuple_has_counterpart,
    MatchKernel, PartialSet, PartialTuple, StepConfig, StepContext, StepStats,
};
use skyquery_core::ResultColumn;
use skyquery_storage::{Database, Table};

use crate::engine::{run_zone_tasks, ProbeSnapshots, ZoneEngine, ZoneProber};
use crate::merge::{merge_match, zone_reports, TupleAction, TupleOutcome, ZoneReport};
use crate::partition::{partition, sorted_declinations, TupleProbe, ZoneTask};
use crate::zonemap::ZoneMap;

/// Timing summary of the most recent streaming ingest session: how far
/// ahead of the transfer the zone workers ran. All durations are
/// measured from the session's start (the first chunk's arrival).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Chunks ingested.
    pub chunks: usize,
    /// Tuples ingested across all chunks.
    pub tuples: usize,
    /// Zone tasks executed across all chunks.
    pub zones_processed: usize,
    /// When the first zone task batch completed — the pipelined path has
    /// results this early, while a buffering receiver would still be
    /// fetching chunks.
    pub first_zone_done: Option<Duration>,
    /// When the last chunk was handed to the session.
    pub last_chunk_ingested: Option<Duration>,
    /// When the session finished (merge complete).
    pub finished: Duration,
}

/// The zone engine's [`PartialIngest`] session: partitions and runs each
/// chunk on arrival, merging outcomes by original tuple index at finish.
pub struct ZoneIngest<'a> {
    engine: &'a ZoneEngine,
    cfg: StepConfig,
    kind: StepKind,
    columns_in: Vec<ResultColumn>,
    ctx: StepContext,
    map: ZoneMap,
    /// Sorted archive declinations (with row ids), computed once: every
    /// chunk's zone tasks slice their padded bands out of this.
    decs: Vec<(f64, usize)>,
    /// Outcomes accumulated across chunks, indexed by original position
    /// in the sender's set.
    outcomes: Vec<TupleOutcome>,
    /// Every original index seen, for the dense-permutation check.
    indices_seen: Vec<usize>,
    reports: Vec<ZoneReport>,
    started: Instant,
    chunks: usize,
    zones_processed: usize,
    first_zone_done: Option<Duration>,
    last_chunk_ingested: Option<Duration>,
    /// Tile snapshots (re)built during the session (batch kernel only).
    tile_builds: usize,
}

impl<'a> ZoneIngest<'a> {
    /// Opens a session: snapshots the step context and the archive's
    /// declination distribution so per-chunk work is partition + probe.
    pub(crate) fn begin(
        engine: &'a ZoneEngine,
        db: &mut Database,
        cfg: StepConfig,
        kind: StepKind,
        columns_in: Vec<ResultColumn>,
    ) -> Result<ZoneIngest<'a>> {
        let ctx = StepContext::new(db, &cfg)?;
        let mut tile_builds = 0usize;
        match cfg.kernel {
            MatchKernel::Columnar => {
                // Warm the columnar layout before the first chunk arrives,
                // so per-chunk work stays partition + probe.
                db.ensure_columnar(&cfg.table, cfg.zone_height_deg)
                    .map_err(FederationError::Storage)?;
            }
            MatchKernel::Batch => {
                tile_builds += usize::from(
                    db.ensure_tiles(&cfg.table, cfg.zone_height_deg)
                        .map_err(FederationError::Storage)?,
                );
            }
            MatchKernel::Htm => {}
        }
        let table = db.table(&cfg.table)?;
        let decs = sorted_declinations(table, ctx.dec_ci);
        let map = ZoneMap::new(cfg.zone_height_deg);
        Ok(ZoneIngest {
            engine,
            cfg,
            kind,
            columns_in,
            ctx,
            map,
            decs,
            outcomes: Vec::new(),
            indices_seen: Vec::new(),
            reports: Vec::new(),
            started: Instant::now(),
            chunks: 0,
            zones_processed: 0,
            first_zone_done: None,
            last_chunk_ingested: None,
            tile_builds,
        })
    }

    /// Partitions `probes` (chunk-local indices) and runs the zone pool,
    /// remapping outcome indices back to the sender's numbering.
    fn run_chunk<K>(
        &mut self,
        table: &Table,
        snapshots: ProbeSnapshots<'_>,
        probes: Vec<TupleProbe>,
        degenerate: usize,
        global: &[usize],
        kernel: &K,
    ) -> Result<()>
    where
        K: Fn(&ZoneTask, &mut ZoneProber<'_>) -> Result<Vec<TupleOutcome>> + Sync,
    {
        let plan = partition(&self.map, probes, &self.decs, degenerate);
        self.reports.extend(zone_reports(&plan.tasks));
        let ran_zones = !plan.tasks.is_empty();
        let outcomes = run_zone_tasks(
            table,
            &self.ctx,
            snapshots,
            &plan.tasks,
            self.cfg.xmatch_workers,
            kernel,
        )?;
        self.outcomes.extend(outcomes.into_iter().map(|mut o| {
            o.index = global[o.index];
            o
        }));
        self.zones_processed += plan.tasks.len();
        if ran_zones && self.first_zone_done.is_none() {
            self.first_zone_done = Some(self.started.elapsed());
        }
        Ok(())
    }
}

impl PartialIngest for ZoneIngest<'_> {
    fn ingest(&mut self, db: &mut Database, chunk: Vec<(usize, PartialTuple)>) -> Result<()> {
        self.chunks += 1;
        self.last_chunk_ingested = Some(self.started.elapsed());
        if chunk.is_empty() {
            return Ok(());
        }
        let (global, tuples): (Vec<usize>, Vec<PartialTuple>) = chunk.into_iter().unzip();
        self.indices_seen.extend(&global);
        match self.kind {
            StepKind::Match => {
                // Round-trip the chunk through the §5.3 temp table so
                // schema conformance matches the sequential path.
                let mini = PartialSet {
                    columns: self.columns_in.clone(),
                    tuples,
                };
                let temp = materialize_temp(db, &mini)?;
                let temp_rows = db.table(&temp)?.rows().to_vec();
                db.drop_table(&temp)?;
                match self.cfg.kernel {
                    MatchKernel::Columnar => {
                        // Cheap no-op unless an insert invalidated the
                        // cache since the session began.
                        db.ensure_columnar(&self.cfg.table, self.cfg.zone_height_deg)
                            .map_err(FederationError::Storage)?;
                    }
                    MatchKernel::Batch => {
                        self.tile_builds += usize::from(
                            db.ensure_tiles(&self.cfg.table, self.cfg.zone_height_deg)
                                .map_err(FederationError::Storage)?,
                        );
                    }
                    MatchKernel::Htm => {}
                }
                let table = db.table(&self.cfg.table)?;
                let snapshots = ProbeSnapshots::for_kernel(db, &self.cfg);

                let mut probes = Vec::new();
                let mut degenerate = 0usize;
                for (index, trow) in temp_rows.iter().enumerate() {
                    match probe_ball(&decode_materialized(trow).0, &self.cfg) {
                        Some((center, radius_rad)) => probes.push(TupleProbe {
                            index,
                            center,
                            radius_rad,
                        }),
                        None => degenerate += 1,
                    }
                }
                let cfg = self.cfg.clone();
                // The borrow checker can't see that the kernel only reads
                // `ctx` while `self` mutates bookkeeping, so clone the
                // small context pieces the kernel needs.
                let ctx = StepContext {
                    schema: self.ctx.schema.clone(),
                    ra_ci: self.ctx.ra_ci,
                    dec_ci: self.ctx.dec_ci,
                    appended: self.ctx.appended.clone(),
                    carried_ci: self.ctx.carried_ci.clone(),
                };
                self.run_chunk(
                    table,
                    snapshots,
                    probes,
                    degenerate,
                    &global,
                    &|task: &ZoneTask, prober: &mut ZoneProber<'_>| {
                        let mut out = Vec::with_capacity(task.probes.len());
                        for probe in &task.probes {
                            let pstats = prober.probe(probe.center, probe.radius_rad)?;
                            let (state, carried) = decode_materialized(&temp_rows[probe.index]);
                            let mut extensions = Vec::new();
                            let (hits, staging) = prober.parts();
                            let probed = hits.len();
                            let accepted = extend_tuple_staged(
                                &cfg,
                                &ctx,
                                table,
                                &state,
                                carried,
                                hits,
                                staging,
                                &mut extensions,
                            )?;
                            out.push(TupleOutcome {
                                index: probe.index,
                                probed,
                                examined: pstats.examined,
                                accepted,
                                reused: usize::from(pstats.reused),
                                tile_decodes: pstats.tile_decodes,
                                tile_hits: pstats.tile_hits,
                                action: TupleAction::Extend(extensions),
                            });
                        }
                        Ok(out)
                    },
                )
            }
            StepKind::Dropout => {
                match self.cfg.kernel {
                    MatchKernel::Columnar => {
                        db.ensure_columnar(&self.cfg.table, self.cfg.zone_height_deg)
                            .map_err(FederationError::Storage)?;
                    }
                    MatchKernel::Batch => {
                        self.tile_builds += usize::from(
                            db.ensure_tiles(&self.cfg.table, self.cfg.zone_height_deg)
                                .map_err(FederationError::Storage)?,
                        );
                    }
                    MatchKernel::Htm => {}
                }
                let table = db.table(&self.cfg.table)?;
                let snapshots = ProbeSnapshots::for_kernel(db, &self.cfg);
                let mut probes = Vec::new();
                let mut degenerate = 0usize;
                for (index, tuple) in tuples.iter().enumerate() {
                    match probe_ball(&tuple.state, &self.cfg) {
                        Some((center, radius_rad)) => probes.push(TupleProbe {
                            index,
                            center,
                            radius_rad,
                        }),
                        None => degenerate += 1,
                    }
                }
                let cfg = self.cfg.clone();
                let ctx = StepContext {
                    schema: self.ctx.schema.clone(),
                    ra_ci: self.ctx.ra_ci,
                    dec_ci: self.ctx.dec_ci,
                    appended: self.ctx.appended.clone(),
                    carried_ci: self.ctx.carried_ci.clone(),
                };
                let tuples_ref = &tuples;
                self.run_chunk(
                    table,
                    snapshots,
                    probes,
                    degenerate,
                    &global,
                    &|task: &ZoneTask, prober: &mut ZoneProber<'_>| {
                        let mut out = Vec::with_capacity(task.probes.len());
                        for probe in &task.probes {
                            let pstats = prober.probe(probe.center, probe.radius_rad)?;
                            let tuple = &tuples_ref[probe.index];
                            let found = tuple_has_counterpart(
                                &cfg,
                                &ctx,
                                table,
                                &tuple.state,
                                prober.hits(),
                            )?;
                            out.push(TupleOutcome {
                                index: probe.index,
                                probed: prober.hits().len(),
                                examined: pstats.examined,
                                accepted: usize::from(found),
                                reused: usize::from(pstats.reused),
                                tile_decodes: pstats.tile_decodes,
                                tile_hits: pstats.tile_hits,
                                // Encode keep/drop as an extension so the
                                // match merge reassembles both step kinds:
                                // a kept tuple passes through unchanged, a
                                // dropped one contributes nothing.
                                action: TupleAction::Extend(if found {
                                    Vec::new()
                                } else {
                                    vec![tuple.clone()]
                                }),
                            });
                        }
                        Ok(out)
                    },
                )
            }
        }
    }

    fn finish(self: Box<Self>, _db: &mut Database) -> Result<(PartialSet, StepStats)> {
        let mut this = *self;
        // The accumulated indices must form a dense 0..n — anything else
        // means the transfer dropped or duplicated tuples.
        this.indices_seen.sort_unstable();
        for (expected, index) in this.indices_seen.iter().enumerate() {
            if *index != expected {
                return Err(FederationError::protocol(format!(
                    "incremental transfer is not a permutation of 0..{}: saw index {index} at position {expected}",
                    this.indices_seen.len()
                )));
            }
        }
        let columns = match this.kind {
            StepKind::Match => {
                let mut columns = this.columns_in;
                columns.extend(this.ctx.appended.iter().cloned());
                columns
            }
            StepKind::Dropout => this.columns_in,
        };
        let total = this.indices_seen.len();
        let (out, mut stats) = merge_match(columns, total, this.outcomes);
        stats.tile_builds = this.tile_builds;
        let merged = (out, stats);
        this.engine.record_stream(
            this.reports,
            PipelineReport {
                chunks: this.chunks,
                tuples: total,
                zones_processed: this.zones_processed,
                first_zone_done: this.first_zone_done,
                last_chunk_ingested: this.last_chunk_ingested,
                finished: this.started.elapsed(),
            },
        );
        Ok(merged)
    }
}
