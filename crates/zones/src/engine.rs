//! The zone-partitioned parallel cross-match engine.
//!
//! The engine reproduces the sequential stored-procedure steps *exactly* —
//! same output tuples, same order, same statistics — while running the
//! per-tuple kernels concurrently:
//!
//! 1. incoming tuples are materialized into the §5.3 temp table and read
//!    back (sharing the sequential path's schema conformance), then
//!    bucketed into declination zones by their maximum-likelihood
//!    position;
//! 2. each zone task gets the archive rows inside its padded declination
//!    band and a worker builds a private HTM index over just those rows —
//!    the full-table index is never touched, so workers need only shared
//!    `&Table` access;
//! 3. a crossbeam scoped worker pool pulls tasks off an atomic cursor and
//!    runs the shared match / drop-out kernels from `skyquery_core::xmatch`
//!    against the zone-local index;
//! 4. outcomes are merged back into incoming-tuple order.
//!
//! Equality with the sequential engine holds because the HTM cover of a
//! probe ball depends only on the mesh (identical at both index scales),
//! full-cover rows are geometrically guaranteed to lie inside the padded
//! band, and partial-cover rows are verified by the same distance test —
//! so every tuple sees the identical candidate hit list it would have seen
//! against the full-table index.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use skyquery_core::engine::{BufferingIngest, CrossMatchEngine, PartialIngest, StepKind};
use skyquery_core::error::{FederationError, Result};
use skyquery_core::xmatch::{
    decode_materialized, dropout_step, extend_tuple, match_step, materialize_temp, probe_ball,
    tuple_has_counterpart, PartialSet, StepConfig, StepContext, StepStats,
};
use skyquery_core::ResultColumn;
use skyquery_htm::SkyPoint;
use skyquery_storage::{resolve_range_candidates, Database, HtmPositionIndex, Table};

use crate::merge::{
    merge_dropout, merge_match, zone_reports, TupleAction, TupleOutcome, ZoneReport,
};
use crate::partition::{partition, sorted_declinations, TupleProbe, ZonePlan, ZoneTask};
use crate::zonemap::ZoneMap;

/// A [`CrossMatchEngine`] running match and drop-out steps across a pool
/// of zone workers. With `xmatch_workers <= 1` (the default federation
/// configuration) every step delegates to the sequential kernels, so
/// installing the engine unconditionally is safe.
#[derive(Debug, Default)]
pub struct ZoneEngine {
    /// Per-zone summaries of the most recent partitioned step.
    last_reports: Mutex<Vec<ZoneReport>>,
    /// Timing summary of the most recent streaming ingest session.
    last_pipeline: Mutex<Option<crate::stream::PipelineReport>>,
}

impl ZoneEngine {
    /// Creates the engine.
    pub fn new() -> ZoneEngine {
        ZoneEngine::default()
    }

    /// Per-zone summaries of the most recent partitioned step (empty
    /// until the engine has run a parallel step). Diagnostics only.
    pub fn last_zone_reports(&self) -> Vec<ZoneReport> {
        self.last_reports.lock().expect("reports lock").clone()
    }

    /// Timing summary of the most recent streaming ingest session (`None`
    /// until a chunked transfer has been pipelined). Diagnostics only.
    pub fn last_pipeline_report(&self) -> Option<crate::stream::PipelineReport> {
        *self.last_pipeline.lock().expect("pipeline lock")
    }

    /// Stores a finished streaming session's diagnostics.
    pub(crate) fn record_stream(
        &self,
        reports: Vec<ZoneReport>,
        pipeline: crate::stream::PipelineReport,
    ) {
        *self.last_reports.lock().expect("reports lock") = reports;
        *self.last_pipeline.lock().expect("pipeline lock") = Some(pipeline);
    }

    /// Splits the non-degenerate tuples of a step into zone tasks.
    fn plan_step<I>(cfg: &StepConfig, table: &Table, dec_ci: usize, states: I) -> ZonePlan
    where
        I: Iterator<Item = Option<(SkyPoint, f64)>>,
    {
        let mut probes = Vec::new();
        let mut degenerate = 0usize;
        for (index, ball) in states.enumerate() {
            match ball {
                Some((center, radius_rad)) => probes.push(TupleProbe {
                    index,
                    center,
                    radius_rad,
                }),
                None => degenerate += 1,
            }
        }
        let map = ZoneMap::new(cfg.zone_height_deg);
        let decs = sorted_declinations(table, dec_ci);
        partition(&map, probes, &decs, degenerate)
    }
}

impl CrossMatchEngine for ZoneEngine {
    fn name(&self) -> &str {
        "zones"
    }

    fn match_tuples(
        &self,
        db: &mut Database,
        cfg: &StepConfig,
        incoming: &PartialSet,
    ) -> Result<(PartialSet, StepStats)> {
        if cfg.xmatch_workers <= 1 {
            return match_step(db, cfg, incoming);
        }
        let ctx = StepContext::new(db, cfg)?;
        let mut columns = incoming.columns.clone();
        columns.extend(ctx.appended.iter().cloned());

        // Materialize and read back through the temp table exactly like
        // the sequential step, so schema conformance (e.g. numeric
        // coercion) cannot make the two engines diverge.
        let temp = materialize_temp(db, incoming)?;
        let temp_rows = db.table(&temp)?.rows().to_vec();
        db.drop_table(&temp)?;
        let table = db.table(&cfg.table)?;

        let plan = ZoneEngine::plan_step(
            cfg,
            table,
            ctx.dec_ci,
            temp_rows
                .iter()
                .map(|trow| probe_ball(&decode_materialized(trow).0, cfg)),
        );
        *self.last_reports.lock().expect("reports lock") = zone_reports(&plan.tasks);

        let outcomes = run_zone_tasks(
            table,
            &ctx,
            &plan.tasks,
            cfg.xmatch_workers,
            &|task: &ZoneTask, index: &HtmPositionIndex| {
                let mut out = Vec::with_capacity(task.probes.len());
                for probe in &task.probes {
                    let cands = index.search_sorted(probe.center, probe.radius_rad);
                    let hits = resolve_range_candidates(
                        table,
                        ctx.ra_ci,
                        ctx.dec_ci,
                        probe.center,
                        probe.radius_rad,
                        &cands,
                    )
                    .map_err(FederationError::Storage)?;
                    let (state, carried) = decode_materialized(&temp_rows[probe.index]);
                    let mut extensions = Vec::new();
                    extend_tuple(cfg, &ctx, table, &state, carried, &hits, &mut extensions)?;
                    out.push(TupleOutcome {
                        index: probe.index,
                        probed: hits.len(),
                        action: TupleAction::Extend(extensions),
                    });
                }
                Ok(out)
            },
        )?;
        Ok(merge_match(columns, incoming.len(), outcomes))
    }

    fn dropout(
        &self,
        db: &mut Database,
        cfg: &StepConfig,
        incoming: &PartialSet,
    ) -> Result<(PartialSet, StepStats)> {
        if cfg.xmatch_workers <= 1 {
            return dropout_step(db, cfg, incoming);
        }
        let ctx = StepContext::new(db, cfg)?;
        let table = db.table(&cfg.table)?;

        let plan = ZoneEngine::plan_step(
            cfg,
            table,
            ctx.dec_ci,
            incoming.tuples.iter().map(|t| probe_ball(&t.state, cfg)),
        );
        *self.last_reports.lock().expect("reports lock") = zone_reports(&plan.tasks);

        let outcomes = run_zone_tasks(
            table,
            &ctx,
            &plan.tasks,
            cfg.xmatch_workers,
            &|task: &ZoneTask, index: &HtmPositionIndex| {
                let mut out = Vec::with_capacity(task.probes.len());
                for probe in &task.probes {
                    let cands = index.search_sorted(probe.center, probe.radius_rad);
                    let hits = resolve_range_candidates(
                        table,
                        ctx.ra_ci,
                        ctx.dec_ci,
                        probe.center,
                        probe.radius_rad,
                        &cands,
                    )
                    .map_err(FederationError::Storage)?;
                    let state = &incoming.tuples[probe.index].state;
                    let keep = !tuple_has_counterpart(cfg, &ctx, table, state, &hits)?;
                    out.push(TupleOutcome {
                        index: probe.index,
                        probed: hits.len(),
                        action: if keep {
                            TupleAction::Keep
                        } else {
                            TupleAction::Drop
                        },
                    });
                }
                Ok(out)
            },
        )?;
        Ok(merge_dropout(incoming, outcomes))
    }

    fn begin_partial<'a>(
        &'a self,
        db: &mut Database,
        cfg: &StepConfig,
        kind: StepKind,
        columns: Vec<ResultColumn>,
    ) -> Result<Box<dyn PartialIngest + 'a>> {
        if cfg.xmatch_workers <= 1 {
            // Sequential mode: buffer and delegate, exactly like the
            // default engine.
            return Ok(Box::new(BufferingIngest::new(
                self,
                cfg.clone(),
                kind,
                columns,
            )));
        }
        Ok(Box::new(crate::stream::ZoneIngest::begin(
            self,
            db,
            cfg.clone(),
            kind,
            columns,
        )?))
    }
}

/// Runs zone tasks on a scoped worker pool. Workers pull tasks off an
/// atomic cursor (cheap dynamic load balancing — dense zones near the
/// galactic plane can be arbitrarily heavier than sparse ones), build the
/// zone-local HTM index, and hand it to the step kernel.
pub(crate) fn run_zone_tasks<K>(
    table: &Table,
    ctx: &StepContext,
    tasks: &[ZoneTask],
    workers: usize,
    kernel: &K,
) -> Result<Vec<TupleOutcome>>
where
    K: Fn(&ZoneTask, &HtmPositionIndex) -> Result<Vec<TupleOutcome>> + Sync,
{
    let depth = ctx
        .schema
        .position
        .as_ref()
        .expect("cross-match table has a position index")
        .htm_depth;
    let threads = workers.min(tasks.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let worker = || -> Result<Vec<TupleOutcome>> {
        let mut local = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(task) = tasks.get(i) else {
                break;
            };
            let mut index = HtmPositionIndex::new(depth);
            for &rid in &task.rows {
                let row = table.row(rid).expect("partitioned row exists");
                let ra = row[ctx.ra_ci].as_f64().expect("position column");
                let dec = row[ctx.dec_ci].as_f64().expect("position column");
                index.insert(SkyPoint::from_radec_deg(ra, dec), rid);
            }
            index.ensure_sorted();
            local.extend(kernel(task, &index)?);
        }
        Ok(local)
    };

    let joined = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|_| s.spawn(|_| worker())).collect();
        handles
            .into_iter()
            .map(|h| h.join())
            .collect::<Vec<std::result::Result<_, _>>>()
    })
    .expect("zone worker scope");

    let mut outcomes = Vec::new();
    for result in joined {
        let worker_outcomes = result.unwrap_or_else(|panic| std::panic::resume_unwind(panic))?;
        outcomes.extend(worker_outcomes);
    }
    Ok(outcomes)
}
