//! The zone-partitioned parallel cross-match engine.
//!
//! The engine reproduces the sequential stored-procedure steps *exactly* —
//! same output tuples, same order, same statistics — while running the
//! per-tuple kernels concurrently:
//!
//! 1. incoming tuples are materialized into the §5.3 temp table and read
//!    back (sharing the sequential path's schema conformance), then
//!    bucketed into declination zones by their maximum-likelihood
//!    position;
//! 2. each zone task gets a probing mode: with the default columnar
//!    kernel, the archive's shared [`ColumnarPositions`] layout (built
//!    once, zone ranges scanned directly); with the HTM kernel, a private
//!    HTM index built over the archive rows inside the task's padded
//!    declination band — either way workers need only shared `&Table`
//!    access;
//! 3. a crossbeam scoped worker pool pulls tasks off an atomic cursor and
//!    runs the shared match / drop-out kernels from `skyquery_core::xmatch`
//!    against a per-worker `ZoneProber` whose scratch buffers stay warm
//!    across tasks;
//! 4. outcomes are merged back into incoming-tuple order.
//!
//! Equality with the sequential engine holds because the HTM cover of a
//! probe ball depends only on the mesh (identical at both index scales),
//! full-cover rows are geometrically guaranteed to lie inside the padded
//! band, and partial-cover rows are verified by the same distance test —
//! so every tuple sees the identical candidate hit list it would have seen
//! against the full-table index. The columnar mode's zone-range scan is
//! held to the same contract: every hit is verified by the exact distance
//! test, so both modes produce the identical hit list for every probe.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use skyquery_core::engine::{BufferingIngest, CrossMatchEngine, PartialIngest, StepKind};
use skyquery_core::error::{FederationError, Result};
use skyquery_core::xmatch::{
    decode_materialized, dropout_step, extend_tuple_staged, match_step, materialize_temp,
    probe_ball, tuple_has_counterpart, MatchKernel, PartialSet, StepConfig, StepContext, StepStats,
};
use skyquery_core::ResultColumn;
use skyquery_htm::SkyPoint;
use skyquery_storage::{
    resolve_range_candidates_into, BatchScratch, ColumnarPositions, Database, HtmPositionIndex,
    ProbeScratch, ProbeStats, RangeSearchHit, Table, Value, ZoneTileSet,
};

use crate::merge::{
    merge_dropout, merge_match, zone_reports, TupleAction, TupleOutcome, ZoneReport,
};
use crate::partition::{partition, sorted_declinations, TupleProbe, ZonePlan, ZoneTask};
use crate::zonemap::ZoneMap;

/// A [`CrossMatchEngine`] running match and drop-out steps across a pool
/// of zone workers. With `xmatch_workers <= 1` (the default federation
/// configuration) every step delegates to the sequential kernels, so
/// installing the engine unconditionally is safe.
#[derive(Debug, Default)]
pub struct ZoneEngine {
    /// Per-zone summaries of the most recent partitioned step.
    last_reports: Mutex<Vec<ZoneReport>>,
    /// Timing summary of the most recent streaming ingest session.
    last_pipeline: Mutex<Option<crate::stream::PipelineReport>>,
}

impl ZoneEngine {
    /// Creates the engine.
    pub fn new() -> ZoneEngine {
        ZoneEngine::default()
    }

    /// Per-zone summaries of the most recent partitioned step (empty
    /// until the engine has run a parallel step). Diagnostics only.
    pub fn last_zone_reports(&self) -> Vec<ZoneReport> {
        self.last_reports.lock().expect("reports lock").clone()
    }

    /// Timing summary of the most recent streaming ingest session (`None`
    /// until a chunked transfer has been pipelined). Diagnostics only.
    pub fn last_pipeline_report(&self) -> Option<crate::stream::PipelineReport> {
        *self.last_pipeline.lock().expect("pipeline lock")
    }

    /// Stores a finished streaming session's diagnostics.
    pub(crate) fn record_stream(
        &self,
        reports: Vec<ZoneReport>,
        pipeline: crate::stream::PipelineReport,
    ) {
        *self.last_reports.lock().expect("reports lock") = reports;
        *self.last_pipeline.lock().expect("pipeline lock") = Some(pipeline);
    }

    /// Splits the non-degenerate tuples of a step into zone tasks.
    fn plan_step<I>(cfg: &StepConfig, table: &Table, dec_ci: usize, states: I) -> ZonePlan
    where
        I: Iterator<Item = Option<(SkyPoint, f64)>>,
    {
        let mut probes = Vec::new();
        let mut degenerate = 0usize;
        for (index, ball) in states.enumerate() {
            match ball {
                Some((center, radius_rad)) => probes.push(TupleProbe {
                    index,
                    center,
                    radius_rad,
                }),
                None => degenerate += 1,
            }
        }
        let map = ZoneMap::new(cfg.zone_height_deg);
        let decs = sorted_declinations(table, dec_ci);
        partition(&map, probes, &decs, degenerate)
    }
}

impl CrossMatchEngine for ZoneEngine {
    fn name(&self) -> &str {
        "zones"
    }

    fn match_tuples(
        &self,
        db: &mut Database,
        cfg: &StepConfig,
        incoming: &PartialSet,
    ) -> Result<(PartialSet, StepStats)> {
        if cfg.xmatch_workers <= 1 {
            return match_step(db, cfg, incoming);
        }
        let ctx = StepContext::new(db, cfg)?;
        let mut columns = incoming.columns.clone();
        columns.extend(ctx.appended.iter().cloned());

        // Materialize and read back through the temp table exactly like
        // the sequential step, so schema conformance (e.g. numeric
        // coercion) cannot make the two engines diverge.
        let temp = materialize_temp(db, incoming)?;
        let temp_rows = db.table(&temp)?.rows().to_vec();
        db.drop_table(&temp)?;
        let mut tile_builds = 0usize;
        match cfg.kernel {
            MatchKernel::Columnar => db
                .ensure_columnar(&cfg.table, cfg.zone_height_deg)
                .map_err(FederationError::Storage)?,
            MatchKernel::Batch => {
                tile_builds += usize::from(
                    db.ensure_tiles(&cfg.table, cfg.zone_height_deg)
                        .map_err(FederationError::Storage)?,
                )
            }
            MatchKernel::Htm => {}
        }
        let table = db.table(&cfg.table)?;
        let snapshots = ProbeSnapshots::for_kernel(db, cfg);

        let plan = ZoneEngine::plan_step(
            cfg,
            table,
            ctx.dec_ci,
            temp_rows
                .iter()
                .map(|trow| probe_ball(&decode_materialized(trow).0, cfg)),
        );
        *self.last_reports.lock().expect("reports lock") = zone_reports(&plan.tasks);

        let outcomes = run_zone_tasks(
            table,
            &ctx,
            snapshots,
            &plan.tasks,
            cfg.xmatch_workers,
            &|task: &ZoneTask, prober: &mut ZoneProber<'_>| {
                let mut out = Vec::with_capacity(task.probes.len());
                for probe in &task.probes {
                    let pstats = prober.probe(probe.center, probe.radius_rad)?;
                    let (state, carried) = decode_materialized(&temp_rows[probe.index]);
                    let mut extensions = Vec::new();
                    let (hits, staging) = prober.parts();
                    let probed = hits.len();
                    let accepted = extend_tuple_staged(
                        cfg,
                        &ctx,
                        table,
                        &state,
                        carried,
                        hits,
                        staging,
                        &mut extensions,
                    )?;
                    out.push(TupleOutcome {
                        index: probe.index,
                        probed,
                        examined: pstats.examined,
                        accepted,
                        reused: usize::from(pstats.reused),
                        tile_decodes: pstats.tile_decodes,
                        tile_hits: pstats.tile_hits,
                        action: TupleAction::Extend(extensions),
                    });
                }
                Ok(out)
            },
        )?;
        let (out, mut stats) = merge_match(columns, incoming.len(), outcomes);
        stats.tile_builds = tile_builds;
        Ok((out, stats))
    }

    fn dropout(
        &self,
        db: &mut Database,
        cfg: &StepConfig,
        incoming: &PartialSet,
    ) -> Result<(PartialSet, StepStats)> {
        if cfg.xmatch_workers <= 1 {
            return dropout_step(db, cfg, incoming);
        }
        let ctx = StepContext::new(db, cfg)?;
        let mut tile_builds = 0usize;
        match cfg.kernel {
            MatchKernel::Columnar => db
                .ensure_columnar(&cfg.table, cfg.zone_height_deg)
                .map_err(FederationError::Storage)?,
            MatchKernel::Batch => {
                tile_builds += usize::from(
                    db.ensure_tiles(&cfg.table, cfg.zone_height_deg)
                        .map_err(FederationError::Storage)?,
                )
            }
            MatchKernel::Htm => {}
        }
        let table = db.table(&cfg.table)?;
        let snapshots = ProbeSnapshots::for_kernel(db, cfg);

        let plan = ZoneEngine::plan_step(
            cfg,
            table,
            ctx.dec_ci,
            incoming.tuples.iter().map(|t| probe_ball(&t.state, cfg)),
        );
        *self.last_reports.lock().expect("reports lock") = zone_reports(&plan.tasks);

        let outcomes = run_zone_tasks(
            table,
            &ctx,
            snapshots,
            &plan.tasks,
            cfg.xmatch_workers,
            &|task: &ZoneTask, prober: &mut ZoneProber<'_>| {
                let mut out = Vec::with_capacity(task.probes.len());
                for probe in &task.probes {
                    let pstats = prober.probe(probe.center, probe.radius_rad)?;
                    let state = &incoming.tuples[probe.index].state;
                    let found = tuple_has_counterpart(cfg, &ctx, table, state, prober.hits())?;
                    out.push(TupleOutcome {
                        index: probe.index,
                        probed: prober.hits().len(),
                        examined: pstats.examined,
                        accepted: usize::from(found),
                        reused: usize::from(pstats.reused),
                        tile_decodes: pstats.tile_decodes,
                        tile_hits: pstats.tile_hits,
                        action: if found {
                            TupleAction::Drop
                        } else {
                            TupleAction::Keep
                        },
                    });
                }
                Ok(out)
            },
        )?;
        let (out, mut stats) = merge_dropout(incoming, outcomes);
        stats.tile_builds = tile_builds;
        Ok((out, stats))
    }

    fn begin_partial<'a>(
        &'a self,
        db: &mut Database,
        cfg: &StepConfig,
        kind: StepKind,
        columns: Vec<ResultColumn>,
    ) -> Result<Box<dyn PartialIngest + 'a>> {
        if cfg.xmatch_workers <= 1 {
            // Sequential mode: buffer and delegate, exactly like the
            // default engine.
            return Ok(Box::new(BufferingIngest::new(
                self,
                cfg.clone(),
                kind,
                columns,
            )));
        }
        Ok(Box::new(crate::stream::ZoneIngest::begin(
            self,
            db,
            cfg.clone(),
            kind,
            columns,
        )?))
    }
}

/// Per-worker probing state handed to the zone step kernels: the probing
/// mode (a private zone-local HTM index, or the shared archive-wide
/// columnar layout) plus the worker's reusable scratch buffers. Both
/// modes fill the same scratch hit buffer with the identical verified
/// hit list — exact distance test, `sep <= radius + 1e-15`, sorted by
/// row id — so the choice of mode can never change step output.
pub(crate) struct ZoneProber<'a> {
    mode: ProberMode<'a>,
    table: &'a Table,
    ra_ci: usize,
    dec_ci: usize,
    scratch: &'a mut ProbeScratch,
}

enum ProberMode<'a> {
    /// A private HTM index over the zone's padded declination band.
    Htm(HtmPositionIndex),
    /// The archive-wide columnar layout, shared read-only across workers.
    Columnar(&'a ColumnarPositions),
    /// The batch tile kernel: the whole task's probes were swept through
    /// the compressed tiles when the prober was constructed; `probe()`
    /// pops the next per-probe hit group in task order.
    Batch {
        batch: &'a mut BatchScratch,
        next: usize,
    },
}

impl ZoneProber<'_> {
    /// Fills the scratch hit buffer with the verified candidates inside
    /// the probe ball and returns the kernel counters.
    pub(crate) fn probe(&mut self, center: SkyPoint, radius_rad: f64) -> Result<ProbeStats> {
        match &mut self.mode {
            ProberMode::Htm(index) => {
                let cands = index.search_sorted(center, radius_rad);
                resolve_range_candidates_into(
                    self.table,
                    self.ra_ci,
                    self.dec_ci,
                    center,
                    radius_rad,
                    &cands,
                    self.scratch.hits_mut(),
                )
                .map_err(FederationError::Storage)?;
                // The HTM path allocates the candidate cover per probe, so
                // it never reports a zero-allocation probe — mirroring the
                // sequential HTM arm, whose scratch_reuse is always zero.
                Ok(ProbeStats {
                    examined: cands.len(),
                    ..ProbeStats::default()
                })
            }
            ProberMode::Columnar(cols) => Ok(cols.probe(center, radius_rad, self.scratch)),
            ProberMode::Batch { batch, next } => {
                // Groups were computed for the task's probe list in order,
                // so the cursor pop corresponds to (center, radius_rad).
                let i = *next;
                *next += 1;
                let hits = self.scratch.hits_mut();
                hits.clear();
                hits.extend_from_slice(batch.group(i));
                Ok(batch.probe_stats(i))
            }
        }
    }

    /// The verified hits of the most recent probe, sorted by row id.
    pub(crate) fn hits(&self) -> &[RangeSearchHit] {
        self.scratch.hits()
    }

    /// The hits plus the carried-value staging buffer, for feeding
    /// `extend_tuple_staged` without per-tuple allocation.
    pub(crate) fn parts(&mut self) -> (&[RangeSearchHit], &mut Vec<Value>) {
        self.scratch.parts()
    }
}

/// The archive-wide probe snapshots shared read-only across zone
/// workers: whichever of the columnar layout / compressed tile set the
/// step's kernel uses (both `None` on the HTM path, which builds
/// private zone-local indexes instead).
#[derive(Clone, Copy)]
pub(crate) struct ProbeSnapshots<'a> {
    pub(crate) columnar: Option<&'a ColumnarPositions>,
    pub(crate) tiles: Option<&'a ZoneTileSet>,
}

impl<'a> ProbeSnapshots<'a> {
    /// Borrows the snapshots `cfg.kernel` probes through; the caller
    /// must already have warmed the matching cache
    /// (`ensure_columnar` / `ensure_tiles`).
    pub(crate) fn for_kernel(db: &'a Database, cfg: &StepConfig) -> ProbeSnapshots<'a> {
        ProbeSnapshots {
            columnar: match cfg.kernel {
                MatchKernel::Columnar => db.columnar_positions(&cfg.table),
                MatchKernel::Htm | MatchKernel::Batch => None,
            },
            tiles: match cfg.kernel {
                MatchKernel::Batch => db.zone_tiles(&cfg.table),
                _ => None,
            },
        }
    }
}

/// Runs zone tasks on a scoped worker pool. Workers pull tasks off an
/// atomic cursor (cheap dynamic load balancing — dense zones near the
/// galactic plane can be arbitrarily heavier than sparse ones), set up
/// the task's probing mode — the shared columnar layout when one is
/// supplied, otherwise a private zone-local HTM index — and hand a
/// [`ZoneProber`] wrapping it and the worker's scratch to the step
/// kernel.
pub(crate) fn run_zone_tasks<K>(
    table: &Table,
    ctx: &StepContext,
    snapshots: ProbeSnapshots<'_>,
    tasks: &[ZoneTask],
    workers: usize,
    kernel: &K,
) -> Result<Vec<TupleOutcome>>
where
    K: Fn(&ZoneTask, &mut ZoneProber<'_>) -> Result<Vec<TupleOutcome>> + Sync,
{
    let depth = ctx
        .schema
        .position
        .as_ref()
        .expect("cross-match table has a position index")
        .htm_depth;
    let threads = workers.min(tasks.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let worker = || -> Result<Vec<TupleOutcome>> {
        let mut local = Vec::new();
        // One scratch per worker: buffers stay warm across every task the
        // worker pulls, so steady-state probing is allocation-free.
        let mut scratch = ProbeScratch::new();
        let mut batch = BatchScratch::new();
        let mut balls: Vec<(SkyPoint, f64)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(task) = tasks.get(i) else {
                break;
            };
            let mode = if let Some(tiles) = snapshots.tiles {
                // Sweep the whole task as one batch up front; per-tuple
                // probe() calls then just pop their hit group.
                balls.clear();
                balls.extend(task.probes.iter().map(|p| (p.center, p.radius_rad)));
                tiles.probe_batch(&balls, &mut batch);
                ProberMode::Batch {
                    batch: &mut batch,
                    next: 0,
                }
            } else {
                match snapshots.columnar {
                    Some(cols) => ProberMode::Columnar(cols),
                    None => {
                        let mut index = HtmPositionIndex::new(depth);
                        for &rid in &task.rows {
                            let row = table.row(rid).expect("partitioned row exists");
                            let ra = row[ctx.ra_ci].as_f64().expect("position column");
                            let dec = row[ctx.dec_ci].as_f64().expect("position column");
                            index.insert(SkyPoint::from_radec_deg(ra, dec), rid);
                        }
                        index.ensure_sorted();
                        ProberMode::Htm(index)
                    }
                }
            };
            let mut prober = ZoneProber {
                mode,
                table,
                ra_ci: ctx.ra_ci,
                dec_ci: ctx.dec_ci,
                scratch: &mut scratch,
            };
            local.extend(kernel(task, &mut prober)?);
        }
        Ok(local)
    };

    let joined = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|_| s.spawn(|_| worker())).collect();
        handles
            .into_iter()
            .map(|h| h.join())
            .collect::<Vec<std::result::Result<_, _>>>()
    })
    .expect("zone worker scope");

    let mut outcomes = Vec::new();
    for result in joined {
        let worker_outcomes = result.unwrap_or_else(|panic| std::panic::resume_unwind(panic))?;
        outcomes.extend(worker_outcomes);
    }
    Ok(outcomes)
}
