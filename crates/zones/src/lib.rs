#![warn(missing_docs)]
//! # skyquery-zones — zone-partitioned parallel cross-match
//!
//! The paper's federated cross-match runs each archive's step as a single
//! sequential loop over the incoming partial tuples (§5.4). This crate
//! parallelizes that loop without changing a single output bit: the sky is
//! sliced into fixed-height declination **zones** (Gray et al.'s zoned
//! spatial-join scheme), tuples are bucketed into the zone of their
//! maximum-likelihood position, each zone's bucket of archive rows is
//! padded by the zone's largest pruning radius, and a scoped worker pool
//! runs the shared step kernels over the zones concurrently. A
//! deterministic merge then reassembles the outputs in incoming-tuple
//! order, so the parallel engine is byte-identical to the sequential one —
//! same tuples, same order, same `chi2_min`, same statistics.
//!
//! * [`zonemap`] — the declination slicing;
//! * [`mod@partition`] — tuple bucketing and padded archive bands;
//! * [`engine`] — the [`ZoneEngine`] worker pool implementing
//!   `skyquery_core::engine::CrossMatchEngine`;
//! * [`merge`] — deterministic reassembly and per-zone reports.
//!
//! The engine is driven by two `FederationConfig` knobs that flow through
//! the execution plan to every step: `xmatch_workers` (1 ⇒ delegate to the
//! sequential kernels) and `zone_height_deg`.

pub mod engine;
pub mod merge;
pub mod partition;
pub mod stream;
pub mod zonemap;

pub use engine::ZoneEngine;
pub use merge::{merge_dropout, merge_match, zone_reports, TupleAction, TupleOutcome, ZoneReport};
pub use partition::{partition, sorted_declinations, TupleProbe, ZonePlan, ZoneTask};
pub use stream::PipelineReport;
pub use zonemap::ZoneMap;
