#![warn(missing_docs)]
//! # skyquery-sim — synthetic sky surveys and federation builders
//!
//! The deployed SkyQuery federated the real SDSS, 2MASS, and FIRST
//! archives. This crate is the substitution (DESIGN.md §4): a seeded,
//! deterministic generator of synthetic surveys that share a common
//! catalog of astronomical **bodies**, each survey observing a subset of
//! them with its own Gaussian positional error, detection fraction, flux
//! scaling, and type labels. Cross-match behaviour depends only on
//! positions, σ's, densities, and schema shape — exactly what the
//! generator controls.
//!
//! * [`bodies`] — body catalogs: uniform points within a spherical cap;
//! * [`survey`] — per-survey observation model and archive databases with
//!   the paper's primary-table schema;
//! * [`federation`] — assembles networks of SkyNodes plus a Portal;
//! * [`workload`] — query builders for the experiments.

pub mod bodies;
pub mod federation;
pub mod survey;
pub mod workload;

pub use bodies::{Body, BodyCatalog, CatalogParams};
pub use federation::{FederationBuilder, TestFederation};
pub use survey::{Survey, SurveyParams};
pub use workload::{paper_query, xmatch_query, QuerySpec};
