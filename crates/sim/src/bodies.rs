//! Synthetic body catalogs: the "true sky" every survey observes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skyquery_htm::{SkyPoint, Vec3};

/// One astronomical body (the paper's term for the real object behind
/// per-archive observations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Stable body identifier (index into the catalog).
    pub id: u64,
    /// True position.
    pub position: SkyPoint,
    /// Intrinsic brightness (arbitrary flux units); surveys scale it.
    pub flux: f64,
    /// True class: galaxies vs stars (surveys label what they detect).
    pub is_galaxy: bool,
}

/// Parameters of a body catalog.
#[derive(Debug, Clone, Copy)]
pub struct CatalogParams {
    /// Number of bodies.
    pub count: usize,
    /// Right ascension of the populated region's center, degrees.
    pub center_ra_deg: f64,
    /// Declination of the populated region's center, degrees.
    pub center_dec_deg: f64,
    /// Angular radius of the populated cap, degrees.
    pub radius_deg: f64,
    /// Fraction of bodies that are galaxies.
    pub galaxy_fraction: f64,
    /// Fraction of bodies placed inside clusters (0 = fully uniform sky).
    pub cluster_fraction: f64,
    /// Number of cluster centers scattered over the cap.
    pub cluster_count: usize,
    /// Gaussian radius of each cluster, degrees.
    pub cluster_radius_deg: f64,
    /// RNG seed (catalogs are fully deterministic given parameters).
    pub seed: u64,
}

impl Default for CatalogParams {
    fn default() -> Self {
        CatalogParams {
            count: 1000,
            center_ra_deg: 185.0,
            center_dec_deg: -0.5,
            radius_deg: 1.0,
            galaxy_fraction: 0.6,
            cluster_fraction: 0.0,
            cluster_count: 0,
            cluster_radius_deg: 0.02,
            seed: 42,
        }
    }
}

/// A generated catalog of bodies.
#[derive(Debug, Clone)]
pub struct BodyCatalog {
    /// The parameters that generated this catalog.
    pub params: CatalogParams,
    /// The bodies, id == index.
    pub bodies: Vec<Body>,
}

impl BodyCatalog {
    /// Generates a catalog: positions uniform within the cap (area-true:
    /// uniform in `cos θ` radially, uniform azimuth), log-uniform fluxes.
    pub fn generate(params: CatalogParams) -> BodyCatalog {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let center =
            SkyPoint::from_radec_deg(params.center_ra_deg, params.center_dec_deg).to_vec3();
        let (u, w) = orthonormal_frame(center);
        let cos_r = params.radius_deg.to_radians().cos();
        // Cluster centers (galaxy clusters): uniform over the cap.
        let uniform_point = |rng: &mut StdRng| {
            let cos_t: f64 = rng.gen_range(cos_r..=1.0);
            let sin_t = (1.0 - cos_t * cos_t).max(0.0).sqrt();
            let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            center
                .scale(cos_t)
                .add(u.scale(sin_t * phi.cos()))
                .add(w.scale(sin_t * phi.sin()))
                .unit()
        };
        let cluster_centers: Vec<Vec3> = (0..params.cluster_count)
            .map(|_| uniform_point(&mut rng))
            .collect();
        let mut bodies = Vec::with_capacity(params.count);
        for id in 0..params.count as u64 {
            let clustered = !cluster_centers.is_empty()
                && rng.gen_bool(params.cluster_fraction.clamp(0.0, 1.0));
            let p = if clustered {
                // Gaussian scatter around a random cluster center.
                let c = cluster_centers[rng.gen_range(0..cluster_centers.len())];
                let (cu, cw) = orthonormal_frame(c);
                let r = params.cluster_radius_deg.to_radians();
                let dx: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
                let dy: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
                c.add(cu.scale(dx * r)).add(cw.scale(dy * r)).unit()
            } else {
                uniform_point(&mut rng)
            };
            let flux = 10f64.powf(rng.gen_range(0.0..3.0));
            bodies.push(Body {
                id,
                position: SkyPoint::from_vec3(p),
                flux,
                is_galaxy: rng.gen_bool(params.galaxy_fraction.clamp(0.0, 1.0)),
            });
        }
        BodyCatalog { params, bodies }
    }

    /// Number of bodies.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }
}

/// Two unit vectors orthogonal to `v` and each other.
pub(crate) fn orthonormal_frame(v: Vec3) -> (Vec3, Vec3) {
    let axis = if v.z.abs() < 0.9 {
        Vec3::new(0.0, 0.0, 1.0)
    } else {
        Vec3::new(1.0, 0.0, 0.0)
    };
    let u = v.cross(axis).unit();
    let w = v.cross(u).unit();
    (u, w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let p = CatalogParams::default();
        let a = BodyCatalog::generate(p);
        let b = BodyCatalog::generate(p);
        assert_eq!(a.bodies.len(), b.bodies.len());
        for (x, y) in a.bodies.iter().zip(&b.bodies) {
            assert_eq!(x.position, y.position);
            assert_eq!(x.flux, y.flux);
        }
        let mut p2 = p;
        p2.seed = 43;
        let c = BodyCatalog::generate(p2);
        assert_ne!(a.bodies[0].position, c.bodies[0].position);
    }

    #[test]
    fn bodies_inside_cap() {
        let p = CatalogParams {
            count: 500,
            radius_deg: 0.5,
            ..CatalogParams::default()
        };
        let cat = BodyCatalog::generate(p);
        let center = SkyPoint::from_radec_deg(p.center_ra_deg, p.center_dec_deg);
        for b in &cat.bodies {
            assert!(
                b.position.separation(center).to_degrees() <= p.radius_deg + 1e-9,
                "body {} outside cap",
                b.id
            );
        }
    }

    #[test]
    fn galaxy_fraction_roughly_respected() {
        let p = CatalogParams {
            count: 4000,
            galaxy_fraction: 0.7,
            ..CatalogParams::default()
        };
        let cat = BodyCatalog::generate(p);
        let galaxies = cat.bodies.iter().filter(|b| b.is_galaxy).count() as f64;
        let frac = galaxies / cat.len() as f64;
        assert!((frac - 0.7).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn clustering_concentrates_bodies() {
        let uniform = BodyCatalog::generate(CatalogParams {
            count: 2000,
            seed: 9,
            ..CatalogParams::default()
        });
        let clustered = BodyCatalog::generate(CatalogParams {
            count: 2000,
            seed: 9,
            cluster_fraction: 0.8,
            cluster_count: 5,
            cluster_radius_deg: 0.02,
            ..CatalogParams::default()
        });
        // Median nearest-neighbour distance should shrink sharply. (The
        // mean is the wrong statistic here: the uniform minority gets
        // *sparser* when most bodies move into clusters, and its inflated
        // distances swamp the mean. The median tracks the clustered
        // majority.)
        let median_nn = |cat: &BodyCatalog| {
            let sample = &cat.bodies[..300];
            let mut dists: Vec<f64> = sample
                .iter()
                .map(|b| {
                    let mut best = f64::MAX;
                    for o in &cat.bodies {
                        if o.id != b.id {
                            let d = b.position.separation(o.position);
                            if d < best {
                                best = d;
                            }
                        }
                    }
                    best
                })
                .collect();
            dists.sort_unstable_by(f64::total_cmp);
            dists[dists.len() / 2]
        };
        let u = median_nn(&uniform);
        let c = median_nn(&clustered);
        assert!(c < u * 0.5, "clustered NN {c} vs uniform {u}");
    }

    #[test]
    fn fluxes_positive_and_spread() {
        let cat = BodyCatalog::generate(CatalogParams::default());
        assert!(cat.bodies.iter().all(|b| b.flux >= 1.0 && b.flux <= 1000.0));
        let min = cat.bodies.iter().map(|b| b.flux).fold(f64::MAX, f64::min);
        let max = cat.bodies.iter().map(|b| b.flux).fold(0.0, f64::max);
        assert!(max / min > 10.0, "flux range too narrow");
    }
}
