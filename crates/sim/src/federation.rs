//! Federation assembly: surveys → SkyNodes → registered Portal.

use std::sync::Arc;

use skyquery_core::{ArchiveInfo, Client, FederationConfig, Portal, SkyNode, SkyNodeBuilder};
use skyquery_net::{CostModel, FaultPlan, SimNetwork, Url};

use crate::bodies::{BodyCatalog, CatalogParams};
use crate::survey::{Survey, SurveyParams};

/// A running test federation: the network, the Portal, the SkyNodes, and
/// the ground-truth catalog behind them.
pub struct TestFederation {
    /// The simulated network everything is bound to.
    pub net: SimNetwork,
    /// The mediator.
    pub portal: Arc<Portal>,
    /// The SkyNodes, in survey declaration order.
    pub nodes: Vec<Arc<SkyNode>>,
    /// The survey parameters used to build the nodes.
    pub surveys: Vec<SurveyParams>,
    /// The ground-truth body catalog behind every survey.
    pub catalog: BodyCatalog,
}

impl TestFederation {
    /// A [`Client`] attached to this federation's Portal.
    pub fn client(&self, host: &str) -> Client {
        Client::new(&self.net, host, self.portal.url())
    }

    /// The SkyNode for an archive name (the first shard, when the
    /// archive is sharded).
    pub fn node(&self, archive: &str) -> Option<&Arc<SkyNode>> {
        self.nodes
            .iter()
            .find(|n| n.info().name.eq_ignore_ascii_case(archive))
    }

    /// Every SkyNode of an archive's shard group, in zone-range order.
    pub fn shard_nodes(&self, archive: &str) -> Vec<&Arc<SkyNode>> {
        self.nodes
            .iter()
            .filter(|n| n.info().name.eq_ignore_ascii_case(archive))
            .collect()
    }
}

/// Builder for test federations.
pub struct FederationBuilder {
    catalog_params: CatalogParams,
    surveys: Vec<SurveyParams>,
    config: FederationConfig,
    cost_model: CostModel,
    register_via_soap: bool,
    faults: FaultPlan,
    shards: usize,
    replicas: usize,
}

impl FederationBuilder {
    /// A builder with a default catalog and no surveys yet.
    pub fn new() -> FederationBuilder {
        FederationBuilder {
            catalog_params: CatalogParams::default(),
            surveys: Vec::new(),
            config: FederationConfig::default(),
            cost_model: CostModel::free(),
            register_via_soap: false,
            faults: FaultPlan::new(),
            shards: 1,
            replicas: 1,
        }
    }

    /// The paper's three-archive setup (SDSS + 2MASS + FIRST analogues)
    /// over a shared catalog of `bodies` bodies.
    pub fn paper_triple(bodies: usize) -> FederationBuilder {
        FederationBuilder::new()
            .catalog(CatalogParams {
                count: bodies,
                ..CatalogParams::default()
            })
            .survey(SurveyParams::sdss_like())
            .survey(SurveyParams::twomass_like())
            .survey(SurveyParams::first_like())
    }

    /// Builder: sets the body-catalog parameters.
    pub fn catalog(mut self, params: CatalogParams) -> FederationBuilder {
        self.catalog_params = params;
        self
    }

    /// Builder: adds a survey (one archive / SkyNode).
    pub fn survey(mut self, params: SurveyParams) -> FederationBuilder {
        self.surveys.push(params);
        self
    }

    /// Builder: sets the Portal's execution configuration.
    pub fn config(mut self, config: FederationConfig) -> FederationBuilder {
        self.config = config;
        self
    }

    /// Builder: sets the network latency/bandwidth model.
    pub fn cost_model(mut self, model: CostModel) -> FederationBuilder {
        self.cost_model = model;
        self
    }

    /// Register nodes through the Portal's SOAP Registration service
    /// (exercising the §5.1 flow) instead of the local API.
    pub fn register_via_soap(mut self) -> FederationBuilder {
        self.register_via_soap = true;
        self
    }

    /// Builder: splits every archive into `n` declination-zone shards,
    /// each served by its own SkyNode (`{name}-s{i}.skyquery.net`)
    /// publishing the zone range it owns. `1` (the default) keeps the
    /// single-node path byte-for-byte.
    pub fn shards(mut self, n: usize) -> FederationBuilder {
        assert!(n >= 1, "a shard group needs at least one shard");
        self.shards = n;
        self
    }

    /// Builder: serves every zone extent from `n` identical replicas,
    /// each its own SkyNode. Replica `j >= 1` of an unsharded archive
    /// lives on `{name}r{j}.skyquery.net`; of shard `i` on
    /// `{name}-s{i}r{j}.skyquery.net`. Surveys are observed with a fixed
    /// seed, so every replica holds byte-identical data. `1` (the
    /// default) keeps the unreplicated path byte-for-byte.
    pub fn replicas(mut self, n: usize) -> FederationBuilder {
        assert!(n >= 1, "a replica group needs at least one replica");
        self.replicas = n;
        self
    }

    /// Builder: installs a fault-injection plan on the network. Faults
    /// are armed *after* registration, so the federation always builds
    /// cleanly; only query traffic sees them.
    pub fn faults(mut self, plan: FaultPlan) -> FederationBuilder {
        self.faults = plan;
        self
    }

    /// Generates surveys, starts SkyNodes and Portal, and registers every
    /// node.
    pub fn build(self) -> TestFederation {
        assert!(
            !self.surveys.is_empty(),
            "a federation needs at least one survey"
        );
        let net = SimNetwork::with_model(self.cost_model);
        let portal = Portal::start(&net, "portal.skyquery.net", self.config);
        let catalog = BodyCatalog::generate(self.catalog_params);
        let mut nodes = Vec::new();
        for params in &self.surveys {
            let survey = Survey::observe(&catalog, params.clone());
            // One (host, extent, database) per physical node: the whole
            // archive on `{name}.skyquery.net` when unsharded, or the
            // zone-range deal across `{name}-s{i}.skyquery.net` hosts.
            // Replica `j >= 1` repeats each piece under an `r{j}` host
            // suffix: the survey is observed with a fixed seed and the
            // shard deal is deterministic, so every replica of an
            // extent holds byte-identical data.
            let lower = params.name.to_ascii_lowercase();
            let suffix = |j: usize| {
                if j == 0 {
                    String::new()
                } else {
                    format!("r{j}")
                }
            };
            let mut pieces: Vec<(String, Option<skyquery_core::ZoneExtent>, _)> = Vec::new();
            if self.shards == 1 {
                let mut first_db = Some(survey.db);
                for j in 0..self.replicas {
                    let db = first_db
                        .take()
                        .unwrap_or_else(|| Survey::observe(&catalog, params.clone()).db);
                    pieces.push((format!("{lower}{}.skyquery.net", suffix(j)), None, db));
                }
            } else {
                for j in 0..self.replicas {
                    pieces.extend(survey.deal_shards(self.shards).into_iter().enumerate().map(
                        |(i, (extent, db))| {
                            (
                                format!("{lower}-s{i}{}.skyquery.net", suffix(j)),
                                Some(extent),
                                db,
                            )
                        },
                    ));
                }
            }
            for (host, extent, db) in pieces {
                let info = ArchiveInfo {
                    name: params.name.clone(),
                    sigma_arcsec: params.sigma_arcsec,
                    primary_table: params.table.clone(),
                    htm_depth: params.htm_depth,
                    extent,
                };
                // Every node gets the zone engine; with the default
                // `xmatch_workers = 1` it delegates to the sequential
                // kernels, so this changes nothing unless the config asks
                // for workers.
                let node = SkyNodeBuilder::new(info, db)
                    .engine(Arc::new(skyquery_zones::ZoneEngine::new()))
                    .start(&net, host.clone());
                if self.register_via_soap {
                    // The node calls the Portal's Registration service,
                    // which calls back into the node's Meta-data and
                    // Information services.
                    use skyquery_soap::{RpcCall, SoapValue};
                    let resp = skyquery_core::skynode::send_rpc(
                        &net,
                        &host,
                        &portal.url(),
                        &RpcCall::new("Register")
                            .param("url", SoapValue::Str(node.url().to_string())),
                    )
                    .expect("registration succeeds");
                    assert_eq!(
                        resp.require("archive").unwrap().as_str(),
                        Some(params.name.as_str())
                    );
                } else {
                    portal
                        .register_node(&Url::new(host, "/soap"))
                        .expect("registration succeeds");
                }
                nodes.push(node);
            }
        }
        net.install_faults(self.faults);
        TestFederation {
            net,
            portal,
            nodes,
            surveys: self.surveys,
            catalog,
        }
    }
}

impl Default for FederationBuilder {
    fn default() -> Self {
        FederationBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_registers_three_archives() {
        let fed = FederationBuilder::paper_triple(300).build();
        assert_eq!(
            fed.portal.archives(),
            vec!["FIRST".to_string(), "SDSS".into(), "TWOMASS".into()]
        );
        assert_eq!(fed.nodes.len(), 3);
        let sdss = fed.portal.node("sdss").unwrap();
        assert_eq!(sdss.info.primary_table, "Photo_Object");
        assert!(sdss.catalog.primary_table().is_some());
    }

    #[test]
    fn soap_registration_flow() {
        let fed = FederationBuilder::paper_triple(100)
            .register_via_soap()
            .build();
        assert_eq!(fed.portal.archives().len(), 3);
        // Registration traffic happened: portal ↔ nodes links exist.
        let m = fed.net.metrics();
        assert!(m.link("sdss.skyquery.net", "portal.skyquery.net").messages > 0);
        assert!(m.link("portal.skyquery.net", "sdss.skyquery.net").messages > 0);
    }

    #[test]
    fn sharded_federation_registers_groups() {
        let fed = FederationBuilder::paper_triple(200).shards(4).build();
        // Three logical archives, twelve physical nodes.
        assert_eq!(fed.portal.archives().len(), 3);
        assert_eq!(fed.nodes.len(), 12);
        let shards = fed.portal.shards_of("sdss");
        assert_eq!(shards.len(), 4);
        // Sorted by zone range, tiling the sky.
        assert_eq!(shards[0].extent().dec_lo_deg, -90.0);
        assert_eq!(shards[3].extent().dec_hi_deg, 90.0);
        for w in shards.windows(2) {
            assert_eq!(w[0].extent().dec_hi_deg, w[1].extent().dec_lo_deg);
        }
        assert_eq!(fed.shard_nodes("sdss").len(), 4);
        // node() resolves to the primary (lowest-range) shard.
        assert_eq!(
            fed.portal.node("sdss").unwrap().url.host,
            "sdss-s0.skyquery.net"
        );
        // The registry lists every shard.
        assert_eq!(fed.portal.discover("SkyNode").len(), 12);
    }

    #[test]
    fn replicated_federation_registers_replica_groups() {
        let fed = FederationBuilder::paper_triple(200)
            .shards(2)
            .replicas(2)
            .build();
        // Three logical archives, 2 shards x 2 replicas each.
        assert_eq!(fed.portal.archives().len(), 3);
        assert_eq!(fed.nodes.len(), 12);
        let group = fed.portal.shards_of("sdss");
        assert_eq!(group.len(), 4);
        // Deterministic (extent, host) order: each extent's primary
        // immediately followed by its replica.
        let hosts: Vec<&str> = group.iter().map(|n| n.url.host.as_str()).collect();
        assert_eq!(
            hosts,
            vec![
                "sdss-s0.skyquery.net",
                "sdss-s0r1.skyquery.net",
                "sdss-s1.skyquery.net",
                "sdss-s1r1.skyquery.net",
            ]
        );
        assert_eq!(group[0].extent(), group[1].extent());
        assert_eq!(group[2].extent(), group[3].extent());
        // Replicas hold identical data behind distinct hosts.
        let sdss_nodes = fed.shard_nodes("sdss");
        assert_eq!(sdss_nodes.len(), 4);
    }

    #[test]
    fn replicated_unsharded_federation_uses_r_suffix_hosts() {
        let fed = FederationBuilder::paper_triple(120).replicas(2).build();
        assert_eq!(fed.nodes.len(), 6);
        let group = fed.portal.shards_of("sdss");
        let hosts: Vec<&str> = group.iter().map(|n| n.url.host.as_str()).collect();
        assert_eq!(hosts, vec!["sdss.skyquery.net", "sdssr1.skyquery.net"]);
    }

    #[test]
    fn node_lookup() {
        let fed = FederationBuilder::paper_triple(100).build();
        assert!(fed.node("SDSS").is_some());
        assert!(fed.node("sdss").is_some());
        assert!(fed.node("HUBBLE").is_none());
    }
}
