//! Per-survey observation model and archive database construction.
//!
//! Each survey observes the shared body catalog with its own positional
//! error σ, detection fraction (creating genuine drop-outs), flux scale,
//! and false-detection rate, producing an archive database with the
//! paper's primary-table shape: `object_id, ra, dec, type, i_flux`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_free::sample_standard_normal;
use skyquery_core::transfer::zone_label;
use skyquery_core::ZoneExtent;
use skyquery_htm::SkyPoint;
use skyquery_storage::{ColumnDef, DataType, Database, PositionColumns, TableSchema, Value};

use crate::bodies::{orthonormal_frame, BodyCatalog};

/// Parameters of one synthetic survey.
#[derive(Debug, Clone)]
pub struct SurveyParams {
    /// Archive name (`SDSS`, `TWOMASS`, …).
    pub name: String,
    /// 1-σ positional error, arcseconds.
    pub sigma_arcsec: f64,
    /// Fraction of bodies this survey detects.
    pub detection_fraction: f64,
    /// Number of spurious detections (objects with no body) per 1000
    /// bodies.
    pub false_detections_per_1000: usize,
    /// Multiplier applied to intrinsic flux (different wavelengths).
    pub flux_scale: f64,
    /// Name of the primary table.
    pub table: String,
    /// HTM depth of the archive's position index.
    pub htm_depth: u8,
    /// Survey-specific RNG stream.
    pub seed: u64,
}

impl SurveyParams {
    /// An SDSS-like optical survey: dense, precise.
    pub fn sdss_like() -> SurveyParams {
        SurveyParams {
            name: "SDSS".into(),
            sigma_arcsec: 0.1,
            detection_fraction: 0.95,
            false_detections_per_1000: 5,
            flux_scale: 1.0,
            table: "Photo_Object".into(),
            htm_depth: 14,
            seed: 1001,
        }
    }

    /// A 2MASS-like infrared survey: slightly coarser positions, fewer
    /// detections.
    pub fn twomass_like() -> SurveyParams {
        SurveyParams {
            name: "TWOMASS".into(),
            sigma_arcsec: 0.3,
            detection_fraction: 0.7,
            false_detections_per_1000: 10,
            flux_scale: 0.5,
            table: "Photo_Primary".into(),
            htm_depth: 14,
            seed: 1002,
        }
    }

    /// A FIRST-like radio survey: sparse and coarse.
    pub fn first_like() -> SurveyParams {
        SurveyParams {
            name: "FIRST".into(),
            sigma_arcsec: 1.0,
            detection_fraction: 0.15,
            false_detections_per_1000: 3,
            flux_scale: 0.05,
            table: "Primary_Object".into(),
            htm_depth: 13,
            seed: 1003,
        }
    }
}

/// A generated survey: the archive database plus bookkeeping linking
/// objects back to true bodies (for ground-truth checks).
pub struct Survey {
    /// The parameters that generated this survey.
    pub params: SurveyParams,
    /// The archive database holding the observations.
    pub db: Database,
    /// `object_id → body id` for real detections (absent for spurious
    /// objects).
    pub provenance: std::collections::HashMap<u64, u64>,
}

impl Survey {
    /// Observes the body catalog.
    pub fn observe(catalog: &BodyCatalog, params: SurveyParams) -> Survey {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut db = Database::new(params.name.clone());
        db.create_table(primary_schema(&params.table, params.htm_depth))
            .expect("fresh database");
        // Archives index the object classification — the column the
        // paper's sample predicate (`O.type = GALAXY`) filters on.
        db.create_btree_index(&params.table, "type")
            .expect("type column exists");
        let sigma_deg = params.sigma_arcsec / 3600.0;
        let mut provenance = std::collections::HashMap::new();
        let mut object_id: u64 = 1;
        for body in &catalog.bodies {
            if !rng.gen_bool(params.detection_fraction.clamp(0.0, 1.0)) {
                continue;
            }
            let observed = perturb(body.position, sigma_deg, &mut rng);
            let flux =
                body.flux * params.flux_scale * (1.0 + 0.05 * sample_standard_normal(&mut rng));
            let ty = if body.is_galaxy { "GALAXY" } else { "STAR" };
            db.insert(
                &params.table,
                vec![
                    Value::Id(object_id),
                    Value::Float(observed.ra_deg),
                    Value::Float(observed.dec_deg),
                    Value::Text(ty.into()),
                    Value::Float(flux.max(0.0)),
                ],
            )
            .expect("conforming row");
            provenance.insert(object_id, body.id);
            object_id += 1;
        }
        // Spurious detections scattered over the same cap.
        let n_false = params.false_detections_per_1000 * catalog.len().div_ceil(1000);
        let cp = catalog.params;
        for _ in 0..n_false {
            let ra = cp.center_ra_deg + rng.gen_range(-cp.radius_deg..cp.radius_deg);
            let dec = cp.center_dec_deg + rng.gen_range(-cp.radius_deg..cp.radius_deg);
            db.insert(
                &params.table,
                vec![
                    Value::Id(object_id),
                    Value::Float(SkyPoint::from_radec_deg(ra, dec).ra_deg),
                    Value::Float(SkyPoint::from_radec_deg(ra, dec).dec_deg),
                    Value::Text(if rng.gen_bool(0.5) { "GALAXY" } else { "STAR" }.into()),
                    Value::Float(rng.gen_range(0.1..10.0)),
                ],
            )
            .expect("conforming row");
            object_id += 1;
        }
        Survey {
            params,
            db,
            provenance,
        }
    }

    /// Number of objects in the archive.
    pub fn object_count(&self) -> usize {
        self.db.row_count(&self.params.table).expect("table exists")
    }

    /// Deals this survey's archive into `n` declination-zone shards on
    /// the fixed 0.1° zone grid: shard `i` owns zones
    /// `[⌈i·Z/n⌉, ⌈(i+1)·Z/n⌉)` of the `Z = 1800` bands, so the extents
    /// tile the sky and differ in size by at most one zone. Every row is
    /// dealt (in insertion order) to the shard whose range contains its
    /// declination, carrying its global insertion rank in the extra
    /// [`RANK_COLUMN`] column — the key the Portal's gather sorts on to
    /// reproduce the unsharded archive's row order.
    pub fn deal_shards(&self, n: usize) -> Vec<(ZoneExtent, Database)> {
        assert!(n >= 1, "a shard group needs at least one shard");
        const ZONES: usize = 1800;
        const HEIGHT: f64 = 0.1;
        assert!(n <= ZONES, "more shards than zones");
        let bounds: Vec<usize> = (0..=n).map(|i| (i * ZONES).div_ceil(n)).collect();
        let mut shards: Vec<(ZoneExtent, Database)> = bounds
            .windows(2)
            .map(|w| {
                let lo = -90.0 + w[0] as f64 * HEIGHT;
                let hi = if w[1] == ZONES {
                    90.0
                } else {
                    -90.0 + w[1] as f64 * HEIGHT
                };
                let mut db = Database::new(self.params.name.clone());
                db.create_table(shard_schema(&self.params.table, self.params.htm_depth))
                    .expect("fresh database");
                db.create_btree_index(&self.params.table, "type")
                    .expect("type column exists");
                (ZoneExtent::new(lo, hi).expect("bounds increase"), db)
            })
            .collect();
        let table = self.db.table(&self.params.table).expect("table exists");
        for (rank, row) in table.rows().iter().enumerate() {
            let dec = row[2].as_f64().expect("dec is FLOAT");
            let zone = zone_label(dec, HEIGHT) as usize;
            let owner = bounds[..n].partition_point(|b| *b <= zone) - 1;
            let mut dealt = row.clone();
            dealt.push(Value::Id(rank as u64));
            shards[owner]
                .1
                .insert(&self.params.table, dealt)
                .expect("conforming row");
        }
        shards
    }
}

/// Name of the synthetic rank column every shard table carries: the
/// row's insertion rank in the unsharded archive.
pub const RANK_COLUMN: &str = "__rank";

/// The paper's primary-table schema.
pub fn primary_schema(table: &str, htm_depth: u8) -> TableSchema {
    TableSchema::new(
        table,
        vec![
            ColumnDef::new("object_id", DataType::Id),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("dec", DataType::Float),
            ColumnDef::new("type", DataType::Text),
            ColumnDef::new("i_flux", DataType::Float),
        ],
    )
    .with_position(PositionColumns::new("ra", "dec", htm_depth))
    .expect("ra/dec are FLOAT")
}

/// The primary-table schema of one shard: the paper's schema plus the
/// [`RANK_COLUMN`] rank column.
pub fn shard_schema(table: &str, htm_depth: u8) -> TableSchema {
    TableSchema::new(
        table,
        vec![
            ColumnDef::new("object_id", DataType::Id),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("dec", DataType::Float),
            ColumnDef::new("type", DataType::Text),
            ColumnDef::new("i_flux", DataType::Float),
            ColumnDef::new(RANK_COLUMN, DataType::Id),
        ],
    )
    .with_position(PositionColumns::new("ra", "dec", htm_depth))
    .expect("ra/dec are FLOAT")
}

/// Displaces a sky position by a 2-D Gaussian with the given σ (degrees).
fn perturb(p: SkyPoint, sigma_deg: f64, rng: &mut StdRng) -> SkyPoint {
    let v = p.to_vec3();
    let (u, w) = orthonormal_frame(v);
    let dx = sample_standard_normal(rng) * sigma_deg.to_radians();
    let dy = sample_standard_normal(rng) * sigma_deg.to_radians();
    let q = v.add(u.scale(dx)).add(w.scale(dy)).unit();
    SkyPoint::from_vec3(q)
}

/// A tiny Box–Muller standard-normal sampler, avoiding a rand_distr
/// dependency.
mod rand_distr_free {
    use rand::rngs::StdRng;
    use rand::Rng;

    pub fn sample_standard_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        (-2.0 * u1.ln()).sqrt() * u2.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bodies::CatalogParams;

    fn catalog() -> BodyCatalog {
        BodyCatalog::generate(CatalogParams {
            count: 1000,
            ..CatalogParams::default()
        })
    }

    #[test]
    fn detection_fraction_respected() {
        let cat = catalog();
        let s = Survey::observe(&cat, SurveyParams::twomass_like());
        let detected = s.provenance.len() as f64 / cat.len() as f64;
        assert!(
            (detected - 0.7).abs() < 0.06,
            "detected fraction {detected}"
        );
    }

    #[test]
    fn positions_perturbed_at_sigma_scale() {
        let cat = catalog();
        let s = Survey::observe(&cat, SurveyParams::sdss_like());
        // Mean offset of observations from true positions ≈ σ·√(π/2).
        let mut total = 0.0;
        let mut n = 0;
        for (oid, bid) in &s.provenance {
            let row_ra =
                s.db.table(&s.params.table)
                    .unwrap()
                    .rows()
                    .iter()
                    .find(|r| r[0] == Value::Id(*oid))
                    .unwrap()[1]
                    .as_f64()
                    .unwrap();
            let row_dec =
                s.db.table(&s.params.table)
                    .unwrap()
                    .rows()
                    .iter()
                    .find(|r| r[0] == Value::Id(*oid))
                    .unwrap()[2]
                    .as_f64()
                    .unwrap();
            let body = &cat.bodies[*bid as usize];
            total += SkyPoint::from_radec_deg(row_ra, row_dec).separation_arcsec(body.position);
            n += 1;
            if n >= 200 {
                break;
            }
        }
        let mean = total / n as f64;
        let expected = 0.1 * (std::f64::consts::PI / 2.0).sqrt();
        assert!(
            (mean - expected).abs() < 0.04,
            "mean offset {mean} vs {expected}"
        );
    }

    #[test]
    fn deterministic_surveys() {
        let cat = catalog();
        let a = Survey::observe(&cat, SurveyParams::first_like());
        let b = Survey::observe(&cat, SurveyParams::first_like());
        assert_eq!(a.object_count(), b.object_count());
    }

    #[test]
    fn spurious_objects_present() {
        let cat = catalog();
        let s = Survey::observe(&cat, SurveyParams::sdss_like());
        assert!(s.object_count() > s.provenance.len());
    }

    #[test]
    fn dealing_partitions_every_row_exactly_once() {
        let cat = catalog();
        let s = Survey::observe(&cat, SurveyParams::sdss_like());
        for n in [1usize, 2, 4, 8] {
            let shards = s.deal_shards(n);
            assert_eq!(shards.len(), n);
            // Extents tile the sky contiguously.
            assert_eq!(shards[0].0.dec_lo_deg, -90.0);
            assert_eq!(shards[n - 1].0.dec_hi_deg, 90.0);
            for w in shards.windows(2) {
                assert_eq!(w[0].0.dec_hi_deg, w[1].0.dec_lo_deg);
            }
            // Every row lands on exactly one shard, inside its extent,
            // tagged with a unique global rank.
            let mut ranks = Vec::new();
            let mut total = 0;
            for (extent, db) in &shards {
                let table = db.table(&s.params.table).unwrap();
                for row in table.rows() {
                    let dec = row[2].as_f64().unwrap();
                    assert!(extent.contains_dec(dec), "{dec} outside {extent:?}");
                    ranks.push(row[5].as_i64().unwrap());
                    total += 1;
                }
            }
            assert_eq!(total, s.object_count());
            ranks.sort_unstable();
            ranks.dedup();
            assert_eq!(ranks.len(), total);
        }
    }

    #[test]
    fn sparse_survey_is_small() {
        let cat = catalog();
        let first = Survey::observe(&cat, SurveyParams::first_like());
        let sdss = Survey::observe(&cat, SurveyParams::sdss_like());
        assert!(first.object_count() * 3 < sdss.object_count());
    }
}
