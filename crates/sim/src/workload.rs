//! Query builders for tests, examples, and benches.

/// A declarative cross-match query specification rendered to dialect SQL.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// `(archive, table, alias, dropout)` per participating archive.
    pub archives: Vec<(String, String, String, bool)>,
    /// XMATCH threshold.
    pub threshold: f64,
    /// Optional AREA: (ra°, dec°, radius arcmin).
    pub area: Option<(f64, f64, f64)>,
    /// Optional POLYGON vertices (ra°, dec°), CCW; mutually exclusive
    /// with `area`.
    pub polygon: Option<Vec<(f64, f64)>>,
    /// Extra WHERE conjuncts (dialect SQL).
    pub predicates: Vec<String>,
    /// SELECT items (dialect SQL); defaults to each mandatory alias's
    /// `object_id`.
    pub select: Vec<String>,
}

impl QuerySpec {
    /// Renders the spec as dialect SQL.
    pub fn to_sql(&self) -> String {
        let select = if self.select.is_empty() {
            self.archives
                .iter()
                .filter(|(_, _, _, dropout)| !dropout)
                .map(|(_, _, alias, _)| format!("{alias}.object_id"))
                .collect::<Vec<_>>()
                .join(", ")
        } else {
            self.select.join(", ")
        };
        let from = self
            .archives
            .iter()
            .map(|(archive, table, alias, _)| format!("{archive}:{table} {alias}"))
            .collect::<Vec<_>>()
            .join(", ");
        let xmatch_terms = self
            .archives
            .iter()
            .map(|(_, _, alias, dropout)| {
                if *dropout {
                    format!("!{alias}")
                } else {
                    alias.clone()
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        let mut conjuncts = Vec::new();
        if let Some((ra, dec, radius)) = self.area {
            conjuncts.push(format!("AREA({ra:?}, {dec:?}, {radius:?})"));
        }
        if let Some(vertices) = &self.polygon {
            let coords = vertices
                .iter()
                .map(|(ra, dec)| format!("{ra:?}, {dec:?}"))
                .collect::<Vec<_>>()
                .join(", ");
            conjuncts.push(format!("POLYGON({coords})"));
        }
        conjuncts.push(format!("XMATCH({xmatch_terms}) < {:?}", self.threshold));
        conjuncts.extend(self.predicates.iter().cloned());
        format!(
            "SELECT {select} FROM {from} WHERE {}",
            conjuncts.join(" AND ")
        )
    }
}

/// A plain N-way cross-match over the standard survey tables, covering
/// the whole populated cap.
pub fn xmatch_query(
    archives: &[(&str, &str, &str)],
    threshold: f64,
    area: Option<(f64, f64, f64)>,
) -> String {
    QuerySpec {
        archives: archives
            .iter()
            .map(|(ar, t, al)| (ar.to_string(), t.to_string(), al.to_string(), false))
            .collect(),
        threshold,
        area,
        polygon: None,
        predicates: vec![],
        select: vec![],
    }
    .to_sql()
}

/// The paper's §5.2 sample query, targeting the standard synthetic
/// federation (`SDSS`, `TWOMASS`, `FIRST`). The flux constant is scaled
/// to the synthetic flux model so the clause actually selects.
pub fn paper_query() -> String {
    "SELECT O.object_id, O.ra, T.object_id \
     FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
     WHERE AREA(185.0, -0.5, 60.0) AND XMATCH(O, T, P) < 3.5 \
       AND O.type = GALAXY AND (O.i_flux - T.i_flux) > 2"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyquery_sql::parse_query;

    #[test]
    fn spec_renders_parseable_sql() {
        let spec = QuerySpec {
            archives: vec![
                ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
                ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
                ("FIRST".into(), "Primary_Object".into(), "P".into(), true),
            ],
            threshold: 3.5,
            area: Some((185.0, -0.5, 30.0)),
            polygon: None,
            predicates: vec!["O.type = 'GALAXY'".into()],
            select: vec![],
        };
        let sql = spec.to_sql();
        let q = parse_query(&sql).unwrap();
        assert_eq!(q.from.len(), 3);
        assert!(sql.contains("!P"));
        assert!(!sql.contains("P.object_id"), "dropouts are not selected");
    }

    #[test]
    fn helpers_produce_valid_sql() {
        let sql = xmatch_query(
            &[("A", "T1", "X"), ("B", "T2", "Y")],
            2.5,
            Some((10.0, -5.0, 15.0)),
        );
        assert!(parse_query(&sql).is_ok());
        assert!(parse_query(&paper_query()).is_ok());
    }
}
