//! Recursive-descent parser for the cross-match dialect.
//!
//! Grammar (informal):
//!
//! ```text
//! query      := SELECT select_list FROM table_list [WHERE expr]
//!               [GROUP BY column {',' column}]
//!               [ORDER BY order_key {',' order_key}] [LIMIT int]
//! select_list:= select_item {',' select_item}
//! select_item:= COUNT '(' '*' ')' [AS ident]
//!             | agg_func '(' expr ')' [AS ident]      agg_func: count|min|max|sum|avg
//!             | expr [AS ident]
//! table_list := archive ':' table [alias] {',' …}
//! order_key  := expr [ASC | DESC]
//! expr       := or_expr
//! or_expr    := and_expr { OR and_expr }
//! and_expr   := not_expr { AND not_expr }
//! not_expr   := [NOT] cmp_expr
//! cmp_expr   := add_expr [ [NOT] BETWEEN add_expr AND add_expr
//!                        | [NOT] IN '(' literal {',' literal} ')'
//!                        | [NOT] LIKE string
//!                        | IS [NOT] NULL
//!                        | cmp_op add_expr ]
//! add_expr   := mul_expr { ('+'|'-') mul_expr }
//! mul_expr   := unary { ('*'|'/') unary }
//! unary      := ['-'] primary
//! primary    := literal | AREA '(' n ',' n ',' n ')'
//!             | POLYGON '(' n {',' n} ')'  (≥ 3 vertex pairs, CCW)
//!             | XMATCH '(' [!]alias {',' [!]alias} ')' ('<'|'<=') n
//!             | ident '.' ident | ident | '(' expr ')'
//! ```
//!
//! A bare identifier in expression position (e.g. the paper's
//! `O.type = GALAXY`) is treated as a **string constant** — a documented
//! dialect decision matching the paper's sample query.
//!
//! `XMATCH(...)` must be immediately compared with `<` or `<=` against a
//! numeric threshold; the comparison folds into a single
//! [`Expr::XMatch`] node.

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses a complete query.
pub fn parse_query(input: &str) -> Result<Query, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect(TokenKind::Eof)?;
    Ok(q)
}

/// Parses a standalone expression (used in tests and for filters shipped
/// to SkyNodes).
pub fn parse_expr(input: &str) -> Result<Expr, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), SqlError> {
        if self.peek() == &kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn error(&self, detail: String) -> SqlError {
        SqlError::Parse {
            offset: self.offset(),
            detail,
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        self.expect(TokenKind::Select)?;
        let mut select = vec![self.select_item()?];
        while self.eat(&TokenKind::Comma) {
            select.push(self.select_item()?);
        }
        self.expect(TokenKind::From)?;
        let mut from = vec![self.table_ref()?];
        while self.eat(&TokenKind::Comma) {
            from.push(self.table_ref()?);
        }
        // Reject duplicate aliases up front.
        for (i, t) in from.iter().enumerate() {
            if from[..i].iter().any(|u| u.alias == t.alias) {
                return Err(SqlError::semantic(format!(
                    "duplicate table alias {}",
                    t.alias
                )));
            }
        }
        let where_clause = if self.eat(&TokenKind::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat(&TokenKind::Group) {
            self.expect(TokenKind::By)?;
            group_by.push(self.group_key()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.group_key()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat(&TokenKind::Order) {
            self.expect(TokenKind::By)?;
            order_by.push(self.order_key()?);
            while self.eat(&TokenKind::Comma) {
                order_by.push(self.order_key()?);
            }
        }
        let limit = if self.eat(&TokenKind::Limit) {
            match self.advance() {
                TokenKind::Int(n) if n >= 0 => Some(n as usize),
                other => {
                    return Err(self.error(format!(
                        "LIMIT needs a non-negative integer, found {}",
                        other.describe()
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    /// A GROUP BY key: a plain `alias.column` reference.
    fn group_key(&mut self) -> Result<Expr, SqlError> {
        let alias = self.ident("GROUP BY column")?;
        self.expect(TokenKind::Dot)?;
        let column = self.ident("GROUP BY column")?;
        Ok(Expr::Column { alias, column })
    }

    /// An ORDER BY key: expression with optional ASC/DESC.
    fn order_key(&mut self) -> Result<OrderKey, SqlError> {
        let expr = self.expr()?;
        let direction = if self.eat(&TokenKind::Desc) {
            SortDirection::Desc
        } else {
            self.eat(&TokenKind::Asc);
            SortDirection::Asc
        };
        Ok(OrderKey { expr, direction })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let func = match self.peek() {
            TokenKind::Count => Some(AggFunc::Count),
            TokenKind::Min => Some(AggFunc::Min),
            TokenKind::Max => Some(AggFunc::Max),
            TokenKind::Sum => Some(AggFunc::Sum),
            TokenKind::Avg => Some(AggFunc::Avg),
            _ => None,
        };
        if let Some(func) = func {
            self.advance();
            self.expect(TokenKind::LParen)?;
            // count(*) is its own select-item kind; an aliased
            // `count(*) AS n` becomes count over the constant 1, which is
            // row-count with an alias slot.
            if func == AggFunc::Count && self.eat(&TokenKind::Star) {
                self.expect(TokenKind::RParen)?;
                if self.eat(&TokenKind::As) {
                    let alias = Some(self.ident("select alias")?);
                    return Ok(SelectItem::Aggregate {
                        func: AggFunc::Count,
                        arg: Expr::Literal(Literal::Int(1)),
                        alias,
                    });
                }
                return Ok(SelectItem::CountStar);
            }
            let arg = self.expr()?;
            self.expect(TokenKind::RParen)?;
            let alias = if self.eat(&TokenKind::As) {
                Some(self.ident("select alias")?)
            } else {
                None
            };
            return Ok(SelectItem::Aggregate { func, arg, alias });
        }
        let expr = self.expr()?;
        let alias = if self.eat(&TokenKind::As) {
            Some(self.ident("select alias")?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let archive = self.ident("archive name")?;
        self.expect(TokenKind::Colon)?;
        let table = self.ident("table name")?;
        // Optional alias; defaults to the table name.
        let alias = match self.peek() {
            TokenKind::Ident(_) => self.ident("table alias")?,
            _ => table.clone(),
        };
        Ok(TableRef {
            archive,
            table,
            alias,
        })
    }

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinaryOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.not_expr()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinaryOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat(&TokenKind::Not) {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, SqlError> {
        // XMATCH is special: it must head a `< threshold` comparison.
        if self.peek() == &TokenKind::XMatch {
            return self.xmatch_comparison();
        }
        let lhs = self.add_expr()?;
        // Postfix predicate forms: [NOT] BETWEEN/IN/LIKE, IS [NOT] NULL.
        let negated = if self.peek() == &TokenKind::Not
            && matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::Between) | Some(TokenKind::In) | Some(TokenKind::Like)
            ) {
            self.advance();
            true
        } else {
            false
        };
        match self.peek() {
            TokenKind::Between => {
                self.advance();
                let lo = self.add_expr()?;
                self.expect(TokenKind::And)?;
                let hi = self.add_expr()?;
                return Ok(Expr::Between {
                    expr: Box::new(lhs),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    negated,
                });
            }
            TokenKind::In => {
                self.advance();
                self.expect(TokenKind::LParen)?;
                let mut list = vec![self.in_list_literal()?];
                while self.eat(&TokenKind::Comma) {
                    list.push(self.in_list_literal()?);
                }
                self.expect(TokenKind::RParen)?;
                return Ok(Expr::InList {
                    expr: Box::new(lhs),
                    list,
                    negated,
                });
            }
            TokenKind::Like => {
                self.advance();
                let pattern = match self.advance() {
                    TokenKind::Str(s) => s,
                    other => {
                        return Err(self.error(format!(
                            "LIKE needs a string pattern, found {}",
                            other.describe()
                        )))
                    }
                };
                return Ok(Expr::Like {
                    expr: Box::new(lhs),
                    pattern,
                    negated,
                });
            }
            TokenKind::Is => {
                self.advance();
                let negated = self.eat(&TokenKind::Not);
                self.expect(TokenKind::Null)?;
                return Ok(Expr::IsNull {
                    expr: Box::new(lhs),
                    negated,
                });
            }
            _ if negated => {
                return Err(self.error("NOT here must be followed by BETWEEN, IN, or LIKE".into()))
            }
            _ => {}
        }
        let op = match self.peek() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    /// A literal inside an IN list: literals, bare identifiers (string
    /// constants, dialect rule), and signed numbers.
    fn in_list_literal(&mut self) -> Result<Literal, SqlError> {
        let neg = self.eat(&TokenKind::Minus);
        let lit = match self.advance() {
            TokenKind::Int(i) => Literal::Int(if neg { -i } else { i }),
            TokenKind::Number(x) => Literal::Float(if neg { -x } else { x }),
            TokenKind::Str(s) if !neg => Literal::Str(s),
            TokenKind::Ident(s) if !neg => Literal::Str(s),
            TokenKind::Null if !neg => Literal::Null,
            TokenKind::True if !neg => Literal::Bool(true),
            TokenKind::False if !neg => Literal::Bool(false),
            other => {
                return Err(self.error(format!(
                    "IN list expects literals, found {}",
                    other.describe()
                )))
            }
        };
        Ok(lit)
    }

    fn xmatch_comparison(&mut self) -> Result<Expr, SqlError> {
        self.expect(TokenKind::XMatch)?;
        self.expect(TokenKind::LParen)?;
        let mut terms = Vec::new();
        loop {
            let dropout = self.eat(&TokenKind::Bang);
            let alias = self.ident("XMATCH archive alias")?;
            terms.push(XMatchTerm { alias, dropout });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        // Accept `< t` or `<= t`.
        let strict = match self.advance() {
            TokenKind::Lt => true,
            TokenKind::LtEq => false,
            other => {
                return Err(self.error(format!(
                    "XMATCH must be followed by '<' or '<=' and a threshold, found {}",
                    other.describe()
                )))
            }
        };
        let _ = strict; // the probabilistic bound treats both inclusively
        let threshold = self.numeric_literal("XMATCH threshold")?;
        if threshold <= 0.0 || !threshold.is_finite() {
            return Err(SqlError::semantic(format!(
                "XMATCH threshold must be a positive finite number, got {threshold}"
            )));
        }
        if terms.iter().all(|t| t.dropout) {
            return Err(SqlError::semantic(
                "XMATCH needs at least one mandatory (non-!) archive",
            ));
        }
        {
            let mut seen = std::collections::HashSet::new();
            for t in &terms {
                if !seen.insert(t.alias.as_str()) {
                    return Err(SqlError::semantic(format!(
                        "alias {} appears twice in XMATCH",
                        t.alias
                    )));
                }
            }
        }
        Ok(Expr::XMatch(XMatchSpec { terms, threshold }))
    }

    fn numeric_literal(&mut self, what: &str) -> Result<f64, SqlError> {
        let neg = self.eat(&TokenKind::Minus);
        let v = match self.advance() {
            TokenKind::Number(x) => x,
            TokenKind::Int(i) => i as f64,
            other => {
                return Err(self.error(format!(
                    "expected numeric {what}, found {}",
                    other.describe()
                )))
            }
        };
        Ok(if neg { -v } else { v })
    }

    fn add_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            // Fold negation of numeric literals so `-3.5` is a single
            // literal (keeps print→parse a fixpoint).
            return Ok(match inner {
                Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
                Expr::Literal(Literal::Float(x)) => Expr::Literal(Literal::Float(-x)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Expr::Literal(Literal::Int(i)))
            }
            TokenKind::Number(x) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(x)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Null => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::True => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::False => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Area => {
                self.advance();
                self.expect(TokenKind::LParen)?;
                let ra_deg = self.numeric_literal("AREA right ascension")?;
                self.expect(TokenKind::Comma)?;
                let dec_deg = self.numeric_literal("AREA declination")?;
                self.expect(TokenKind::Comma)?;
                let radius_arcmin = self.numeric_literal("AREA radius")?;
                self.expect(TokenKind::RParen)?;
                if radius_arcmin <= 0.0 || !radius_arcmin.is_finite() {
                    return Err(SqlError::semantic(format!(
                        "AREA radius must be a positive finite number, got {radius_arcmin}"
                    )));
                }
                Ok(Expr::Area(AreaSpec {
                    ra_deg,
                    dec_deg,
                    radius_arcmin,
                }))
            }
            TokenKind::Polygon => {
                self.advance();
                self.expect(TokenKind::LParen)?;
                let mut coords = vec![self.numeric_literal("POLYGON coordinate")?];
                while self.eat(&TokenKind::Comma) {
                    coords.push(self.numeric_literal("POLYGON coordinate")?);
                }
                self.expect(TokenKind::RParen)?;
                if coords.len() < 6 || coords.len() % 2 != 0 {
                    return Err(SqlError::semantic(format!(
                        "POLYGON needs an even number of coordinates (>= 6), got {}",
                        coords.len()
                    )));
                }
                let vertices = coords.chunks(2).map(|c| (c[0], c[1])).collect();
                Ok(Expr::Polygon(PolygonSpec { vertices }))
            }
            TokenKind::XMatch => self.xmatch_comparison(),
            TokenKind::Ident(first) => {
                self.advance();
                if self.eat(&TokenKind::Dot) {
                    let column = self.ident("column name")?;
                    Ok(Expr::Column {
                        alias: first,
                        column,
                    })
                } else {
                    // Bare identifier: the paper writes `O.type = GALAXY`.
                    // Treat it as a string constant.
                    Ok(Expr::Literal(Literal::Str(first)))
                }
            }
            other => Err(self.error(format!("expected expression, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §5.2 sample query, with flux clause parenthesized as
    /// printed there.
    pub const PAPER_QUERY: &str = "SELECT O.object_id, O.right_ascension, T.object_id \
         FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
         WHERE AREA(185.0, -0.5, 4.5) AND XMATCH(O, T, P) < 3.5 \
           AND O.type = GALAXY AND (O.i_flux - T.i_flux) > 2";

    #[test]
    fn parses_paper_sample_query() {
        let q = parse_query(PAPER_QUERY).unwrap();
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.from.len(), 3);
        assert_eq!(q.from[0].archive, "SDSS");
        assert_eq!(q.from[0].table, "Photo_Object");
        assert_eq!(q.from[0].alias, "O");
        let w = q.where_clause.as_ref().unwrap();
        let conjuncts = w.conjuncts();
        assert_eq!(conjuncts.len(), 4);
        assert!(matches!(conjuncts[0], Expr::Area(_)));
        match conjuncts[1] {
            Expr::XMatch(x) => {
                assert_eq!(x.terms.len(), 3);
                assert!((x.threshold - 3.5).abs() < 1e-12);
                assert!(x.dropouts().is_empty());
            }
            other => panic!("expected XMATCH, got {other:?}"),
        }
        // Bare GALAXY parsed as string constant.
        match conjuncts[2] {
            Expr::Binary {
                op: BinaryOp::Eq,
                rhs,
                ..
            } => {
                assert_eq!(**rhs, Expr::Literal(Literal::Str("GALAXY".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_dropout_form() {
        let q = parse_query(
            "SELECT O.id FROM A:T1 O, B:T2 T, C:T3 P \
             WHERE XMATCH(O, T, !P) < 3.5",
        )
        .unwrap();
        match q.where_clause.unwrap() {
            Expr::XMatch(x) => {
                assert_eq!(x.mandatory(), vec!["O", "T"]);
                assert_eq!(x.dropouts(), vec!["P"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star_select() {
        let q = parse_query(
            "SELECT count(*) FROM SDSS:Photo_Object O WHERE AREA(185.0, 0.5, 4.5) AND O.type = GALAXY",
        )
        .unwrap();
        assert_eq!(q.select, vec![SelectItem::CountStar]);
    }

    #[test]
    fn alias_defaults_to_table_name() {
        let q = parse_query("SELECT Photo.ra FROM SDSS:Photo").unwrap();
        assert_eq!(q.from[0].alias, "Photo");
    }

    #[test]
    fn select_alias_with_as() {
        let q = parse_query("SELECT O.ra AS alpha FROM S:T O").unwrap();
        match &q.select[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("alpha")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn roundtrip_display_parse() {
        for sql in [
            "SELECT O.a FROM S:T O WHERE O.x > 2 AND O.y = 'z'",
            "SELECT O.a, T.b FROM S:T1 O, W:T2 T WHERE AREA(10.0, -5.0, 30.0) AND XMATCH(O, T) < 2.5",
            "SELECT count(*) FROM S:T O WHERE O.x + 1 < O.y * 2",
            "SELECT O.a FROM S:T O WHERE NOT O.flag = TRUE OR O.x = NULL",
        ] {
            let q = parse_query(sql).unwrap();
            let printed = q.to_string();
            let q2 = parse_query(&printed).unwrap();
            assert_eq!(q2, q, "roundtrip failed for {sql} -> {printed}");
        }
    }

    #[test]
    fn precedence_and_before_or() {
        let e = parse_expr("a.x = 1 OR a.y = 2 AND a.z = 3").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Or,
                rhs,
                ..
            } => {
                assert!(matches!(
                    *rhs,
                    Expr::Binary {
                        op: BinaryOp::And,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("a.x + a.y * 2").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(
                    *rhs,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_and_not() {
        let e = parse_expr("-a.x < 3").unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::Lt,
                ..
            }
        ));
        let e = parse_expr("NOT a.flag = TRUE").unwrap();
        assert!(matches!(
            e,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn xmatch_validation() {
        // All drop-outs.
        assert!(parse_query("SELECT O.a FROM S:T O WHERE XMATCH(!O) < 2").is_err());
        // Duplicate alias.
        assert!(parse_query("SELECT O.a FROM S:T O WHERE XMATCH(O, O) < 2").is_err());
        // Missing comparison.
        assert!(parse_query("SELECT O.a FROM S:T O WHERE XMATCH(O, T)").is_err());
        // Non-positive threshold.
        assert!(parse_query("SELECT O.a FROM S:T O, U:V T WHERE XMATCH(O, T) < 0").is_err());
        // Greater-than form is not the dialect.
        assert!(parse_query("SELECT O.a FROM S:T O, U:V T WHERE XMATCH(O, T) > 2").is_err());
    }

    #[test]
    fn area_validation() {
        assert!(parse_query("SELECT O.a FROM S:T O WHERE AREA(1.0, 2.0, 0)").is_err());
        assert!(parse_query("SELECT O.a FROM S:T O WHERE AREA(1.0, 2.0)").is_err());
        // Negative center coordinates are fine.
        assert!(parse_query("SELECT O.a FROM S:T O WHERE AREA(-10.0, -2.0, 5.0)").is_ok());
    }

    #[test]
    fn duplicate_from_alias_rejected() {
        assert!(parse_query("SELECT O.a FROM S:T O, U:V O").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("SELECT O.a FROM S:T O extra garbage, here").is_err());
    }

    #[test]
    fn parse_expr_entrypoint() {
        let e = parse_expr("(O.i_flux - T.i_flux) > 2").unwrap();
        assert_eq!(e.referenced_aliases(), vec!["O", "T"]);
    }
}
