//! Tokenizer for the cross-match dialect.

use crate::error::SqlError;

/// A lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset in the input where the token starts.
    pub offset: usize,
}

/// Token kinds. Keywords are case-insensitive and carried as distinct
/// variants; all other words are `Ident` (original casing preserved).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `SELECT`.
    Select,
    /// `FROM`.
    From,
    /// `WHERE`.
    Where,
    /// `AND`.
    And,
    /// `OR`.
    Or,
    /// `NOT`.
    Not,
    /// `AREA` (circular spatial range).
    Area,
    /// `POLYGON` (§6 polygon spatial range).
    Polygon,
    /// `XMATCH` (the probabilistic join clause).
    XMatch,
    /// `COUNT`.
    Count,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
    /// `SUM`.
    Sum,
    /// `AVG`.
    Avg,
    /// `GROUP`.
    Group,
    /// `BY`.
    By,
    /// `ORDER`.
    Order,
    /// `ASC`.
    Asc,
    /// `DESC`.
    Desc,
    /// `LIMIT`.
    Limit,
    /// `AS`.
    As,
    /// `BETWEEN`.
    Between,
    /// `IN`.
    In,
    /// `LIKE`.
    Like,
    /// `IS`.
    Is,
    /// `NULL`.
    Null,
    /// `TRUE`.
    True,
    /// `FALSE`.
    False,
    /// A non-keyword word (identifier or bare string constant).
    Ident(String),
    /// A floating-point literal.
    Number(f64),
    /// An integer literal.
    Int(i64),
    /// A `'quoted'` string literal, unescaped.
    Str(String),
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `:` (archive:table separator).
    Colon,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `*`.
    Star,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `/`.
    Slash,
    /// `!` (drop-out marker in XMATCH).
    Bang,
    /// `=`.
    Eq,
    /// `!=` or `<>`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// End of input (always the final token).
    Eof,
}

impl TokenKind {
    /// Human-readable token description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number(n) => format!("number {n}"),
            TokenKind::Int(n) => format!("integer {n}"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("{other:?}"),
        }
    }
}

/// Tokenizes a complete query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let c = bytes[pos];
        let start = pos;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                pos += 1;
                continue;
            }
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                // SQL line comment.
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
                continue;
            }
            b',' => push1(&mut out, TokenKind::Comma, &mut pos, start),
            b'.' => push1(&mut out, TokenKind::Dot, &mut pos, start),
            b':' => push1(&mut out, TokenKind::Colon, &mut pos, start),
            b'(' => push1(&mut out, TokenKind::LParen, &mut pos, start),
            b')' => push1(&mut out, TokenKind::RParen, &mut pos, start),
            b'*' => push1(&mut out, TokenKind::Star, &mut pos, start),
            b'+' => push1(&mut out, TokenKind::Plus, &mut pos, start),
            b'-' => push1(&mut out, TokenKind::Minus, &mut pos, start),
            b'/' => push1(&mut out, TokenKind::Slash, &mut pos, start),
            b'=' => push1(&mut out, TokenKind::Eq, &mut pos, start),
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::NotEq,
                        offset: start,
                    });
                    pos += 2;
                } else {
                    push1(&mut out, TokenKind::Bang, &mut pos, start);
                }
            }
            b'<' => match bytes.get(pos + 1) {
                Some(&b'=') => {
                    out.push(Token {
                        kind: TokenKind::LtEq,
                        offset: start,
                    });
                    pos += 2;
                }
                Some(&b'>') => {
                    out.push(Token {
                        kind: TokenKind::NotEq,
                        offset: start,
                    });
                    pos += 2;
                }
                _ => push1(&mut out, TokenKind::Lt, &mut pos, start),
            },
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::GtEq,
                        offset: start,
                    });
                    pos += 2;
                } else {
                    push1(&mut out, TokenKind::Gt, &mut pos, start);
                }
            }
            b'\'' => {
                pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(pos) {
                        Some(&b'\'') => {
                            // '' is an escaped quote.
                            if bytes.get(pos + 1) == Some(&b'\'') {
                                s.push('\'');
                                pos += 2;
                            } else {
                                pos += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            pos += 1;
                        }
                        None => {
                            return Err(SqlError::Lex {
                                offset: start,
                                detail: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let mut end = pos;
                let mut is_float = false;
                while end < bytes.len() {
                    match bytes[end] {
                        b'0'..=b'9' => end += 1,
                        // A '.' is part of the number only if followed by a
                        // digit (so `1.x` lexes as 1, DOT, x).
                        b'.' if !is_float && bytes.get(end + 1).is_some_and(u8::is_ascii_digit) => {
                            is_float = true;
                            end += 1;
                        }
                        b'e' | b'E'
                            if matches!(
                                bytes.get(end + 1),
                                Some(b'0'..=b'9') | Some(b'+') | Some(b'-')
                            ) =>
                        {
                            is_float = true;
                            end += 2;
                            while end < bytes.len() && bytes[end].is_ascii_digit() {
                                end += 1;
                            }
                            break;
                        }
                        _ => break,
                    }
                }
                let text = &input[pos..end];
                let kind = if is_float {
                    TokenKind::Number(text.parse().map_err(|_| SqlError::Lex {
                        offset: start,
                        detail: format!("bad number literal {text}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| SqlError::Lex {
                        offset: start,
                        detail: format!("bad integer literal {text}"),
                    })?)
                };
                out.push(Token {
                    kind,
                    offset: start,
                });
                pos = end;
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'#' => {
                let mut end = pos + 1;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                let word = &input[pos..end];
                let kind = match word.to_ascii_uppercase().as_str() {
                    "SELECT" => TokenKind::Select,
                    "FROM" => TokenKind::From,
                    "WHERE" => TokenKind::Where,
                    "AND" => TokenKind::And,
                    "OR" => TokenKind::Or,
                    "NOT" => TokenKind::Not,
                    "AREA" => TokenKind::Area,
                    "POLYGON" => TokenKind::Polygon,
                    "XMATCH" => TokenKind::XMatch,
                    "COUNT" => TokenKind::Count,
                    "MIN" => TokenKind::Min,
                    "MAX" => TokenKind::Max,
                    "SUM" => TokenKind::Sum,
                    "AVG" => TokenKind::Avg,
                    "GROUP" => TokenKind::Group,
                    "BY" => TokenKind::By,
                    "ORDER" => TokenKind::Order,
                    "ASC" => TokenKind::Asc,
                    "DESC" => TokenKind::Desc,
                    "LIMIT" => TokenKind::Limit,
                    "AS" => TokenKind::As,
                    "BETWEEN" => TokenKind::Between,
                    "IN" => TokenKind::In,
                    "LIKE" => TokenKind::Like,
                    "IS" => TokenKind::Is,
                    "NULL" => TokenKind::Null,
                    "TRUE" => TokenKind::True,
                    "FALSE" => TokenKind::False,
                    _ => TokenKind::Ident(word.to_string()),
                };
                out.push(Token {
                    kind,
                    offset: start,
                });
                pos = end;
            }
            other => {
                return Err(SqlError::Lex {
                    offset: start,
                    detail: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(out)
}

fn push1(out: &mut Vec<Token>, kind: TokenKind, pos: &mut usize, offset: usize) {
    out.push(Token { kind, offset });
    *pos += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        tokenize(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select FROM Where AnD xmatch AREA"),
            vec![
                TokenKind::Select,
                TokenKind::From,
                TokenKind::Where,
                TokenKind::And,
                TokenKind::XMatch,
                TokenKind::Area,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_int_vs_float() {
        assert_eq!(
            kinds("42 3.5 -0.5 1e3 2E-2"),
            vec![
                TokenKind::Int(42),
                TokenKind::Number(3.5),
                TokenKind::Minus,
                TokenKind::Number(0.5),
                TokenKind::Number(1e3),
                TokenKind::Number(2e-2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn qualified_names() {
        assert_eq!(
            kinds("SDSS:Photo_Object O"),
            vec![
                TokenKind::Ident("SDSS".into()),
                TokenKind::Colon,
                TokenKind::Ident("Photo_Object".into()),
                TokenKind::Ident("O".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("O.type"),
            vec![
                TokenKind::Ident("O".into()),
                TokenKind::Dot,
                TokenKind::Ident("type".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("< <= > >= = != <> !"),
            vec![
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Bang,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'GALAXY' 'it''s'"),
            vec![
                TokenKind::Str("GALAXY".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("SELECT -- comment\n 1"),
            vec![TokenKind::Select, TokenKind::Int(1), TokenKind::Eof]
        );
    }

    #[test]
    fn dot_not_consumed_by_int_before_ident() {
        // `O.i_flux` after an int: `2.x` should not lex `.x` into the number.
        assert_eq!(
            kinds("2.i"),
            vec![
                TokenKind::Int(2),
                TokenKind::Dot,
                TokenKind::Ident("i".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT ;").is_err());
        assert!(tokenize("a @ b").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("SELECT x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }

    #[test]
    fn temp_table_names() {
        assert_eq!(
            kinds("#tmp_1"),
            vec![TokenKind::Ident("#tmp_1".into()), TokenKind::Eof]
        );
    }
}
