#![warn(missing_docs)]
//! # skyquery-sql — the cross-match query dialect
//!
//! SkyQuery accepts "a SQL-like query with special clauses to specify
//! spatial constraints" (paper §5.2):
//!
//! * `AREA(ra, dec, radius)` — a circular sky range (center in degrees,
//!   radius in arcminutes, as the deployed system used);
//! * `XMATCH(A, B, !C) < t` — the probabilistic spatial join, where `!`
//!   marks a *drop-out* archive (the tuple must have **no** counterpart
//!   there) and `t` is the threshold in standard deviations.
//!
//! This crate provides the full pipeline from text to an executable
//! federation plan input:
//!
//! * [`lexer`] / [`parser`] — text → [`ast::Query`];
//! * [`ast`] — the query tree, with `Display` impls that regenerate SQL
//!   (used to ship per-archive queries to SkyNodes as text, exactly like
//!   the paper's performance-query examples);
//! * [`eval`] — expression evaluation with SQL three-valued logic, used by
//!   SkyNodes to apply their local clauses;
//! * [`decompose()`] — splits a parsed query into the per-archive local
//!   queries, cross-archive residual clauses, the AREA/XMATCH specs, and
//!   the count-star performance queries of §5.3.
//!
//! ```
//! use skyquery_sql::parse_query;
//! let q = parse_query(
//!     "SELECT O.object_id, T.object_id \
//!      FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T \
//!      WHERE AREA(185.0, -0.5, 4.5) AND XMATCH(O, T) < 3.5 \
//!        AND O.type = 'GALAXY'",
//! ).unwrap();
//! assert_eq!(q.from.len(), 2);
//! ```

pub mod ast;
pub mod decompose;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{
    AreaSpec, BinaryOp, Expr, Literal, PolygonSpec, Query, RegionSpec, SelectItem, TableRef,
    UnaryOp, XMatchSpec, XMatchTerm,
};
pub use decompose::{decompose, ArchiveQuery, DecomposedQuery, PerformanceQuery};
pub use error::SqlError;
pub use eval::{Bindings, EmptyBindings, MultiBindings, RowBindings};
pub use parser::{parse_expr, parse_query};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SqlError>;
