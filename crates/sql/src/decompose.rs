//! Query decomposition (paper §5.1/§5.3).
//!
//! The Portal "decomposes the queries to generate performance queries that
//! are used for query optimization" and per-archive local queries. Given a
//! parsed cross-match [`Query`], [`decompose`] produces:
//!
//! * the single [`RegionSpec`] (if any) — compiled into range searches,
//! * the single [`XMatchSpec`] — the probabilistic join,
//! * one [`ArchiveQuery`] per FROM entry: the conjuncts evaluable entirely
//!   at that archive, plus the columns that must travel down the chain,
//! * cross-archive *residual* conjuncts (e.g. the paper's
//!   `(O.i_flux - T.i_flux) > 2`), applied once every referenced archive
//!   has joined the partial tuple,
//! * the count-star [`PerformanceQuery`] for each mandatory archive,
//!   whose `to_sql()` text matches the §5.3 examples.

use std::collections::BTreeSet;

use crate::ast::{Expr, Query, RegionSpec, SelectItem, TableRef, XMatchSpec};
use crate::error::SqlError;

/// The per-archive slice of a decomposed query.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveQuery {
    /// The FROM entry this slice belongs to.
    pub table: TableRef,
    /// True when the XMATCH clause marks this archive `!` (drop-out).
    pub dropout: bool,
    /// Conjuncts referencing only this archive's alias. Evaluated locally
    /// by the SkyNode ("its own (non-spatial) query").
    pub local_predicates: Vec<Expr>,
    /// Columns of this archive that must be carried along the chain:
    /// referenced by the SELECT list or by residual clauses.
    pub carried_columns: Vec<String>,
}

impl ArchiveQuery {
    /// The local predicates joined back into one expression.
    pub fn predicate(&self) -> Option<Expr> {
        Expr::and_all(self.local_predicates.clone())
    }
}

/// A count-star performance query for one mandatory archive.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceQuery {
    /// The alias of the archive this query probes.
    pub alias: String,
    /// The archive's name.
    pub archive: String,
    /// The equivalent AST (count(*) over the archive's local clauses).
    pub query: Query,
}

impl PerformanceQuery {
    /// The SQL text shipped to the SkyNode's Query service — the form of
    /// the paper's §5.3 examples.
    pub fn to_sql(&self) -> String {
        self.query.to_string()
    }
}

/// A fully decomposed cross-match query.
#[derive(Debug, Clone, PartialEq)]
pub struct DecomposedQuery {
    /// The original query (for the SELECT list and FROM entries).
    pub query: Query,
    /// The spatial range, if an AREA or POLYGON clause was present.
    pub region: Option<RegionSpec>,
    /// The probabilistic join spec.
    pub xmatch: XMatchSpec,
    /// Per-archive slices, in FROM order.
    pub archives: Vec<ArchiveQuery>,
    /// Conjuncts spanning several archives.
    pub residuals: Vec<Expr>,
    /// Performance queries, one per mandatory archive, in XMATCH order.
    pub performance_queries: Vec<PerformanceQuery>,
}

impl DecomposedQuery {
    /// The slice for an alias.
    pub fn archive(&self, alias: &str) -> Option<&ArchiveQuery> {
        self.archives.iter().find(|a| a.table.alias == alias)
    }

    /// For a residual conjunct, the set of aliases it needs.
    pub fn residual_aliases(residual: &Expr) -> Vec<&str> {
        residual.referenced_aliases()
    }
}

/// Decomposes a parsed cross-match query. See module docs for the rules.
pub fn decompose(query: Query) -> Result<DecomposedQuery, SqlError> {
    let where_clause = query.where_clause.clone().ok_or_else(|| {
        SqlError::semantic("a cross-match query needs a WHERE clause with XMATCH")
    })?;

    let conjuncts: Vec<Expr> = where_clause.conjuncts().into_iter().cloned().collect();

    let mut region: Option<RegionSpec> = None;
    let mut xmatch: Option<XMatchSpec> = None;
    let mut plain: Vec<Expr> = Vec::new();

    for c in conjuncts {
        match c {
            Expr::Area(a) => {
                if region.replace(RegionSpec::Circle(a)).is_some() {
                    return Err(SqlError::semantic("more than one AREA/POLYGON clause"));
                }
            }
            Expr::Polygon(p) => {
                if region.replace(RegionSpec::Polygon(p)).is_some() {
                    return Err(SqlError::semantic("more than one AREA/POLYGON clause"));
                }
            }
            Expr::XMatch(x) => {
                if xmatch.replace(x).is_some() {
                    return Err(SqlError::semantic("more than one XMATCH clause"));
                }
            }
            other => {
                if other.contains_spatial() {
                    return Err(SqlError::semantic(
                        "AREA/XMATCH may only appear as top-level AND conjuncts",
                    ));
                }
                plain.push(other);
            }
        }
    }

    let xmatch =
        xmatch.ok_or_else(|| SqlError::semantic("a cross-match query needs an XMATCH clause"))?;

    if !query.group_by.is_empty() {
        return Err(SqlError::semantic(
            "GROUP BY is not supported in federated cross-match queries",
        ));
    }
    if query
        .select
        .iter()
        .any(|s| matches!(s, SelectItem::Aggregate { .. }))
    {
        return Err(SqlError::semantic(
            "aggregates are not supported in federated cross-match queries",
        ));
    }
    // ORDER BY keys may only touch carried (selected/residual) columns —
    // validated like select items below.
    for key in &query.order_by {
        if key.expr.contains_spatial() {
            return Err(SqlError::semantic(
                "ORDER BY cannot contain spatial clauses",
            ));
        }
        for (a, _) in key.expr.referenced_columns() {
            if query.table_for_alias(a).is_none() {
                return Err(SqlError::semantic(format!(
                    "ORDER BY references unknown alias {a}"
                )));
            }
        }
    }

    // Alias bookkeeping: XMATCH terms ↔ FROM entries must agree.
    for term in &xmatch.terms {
        if query.table_for_alias(&term.alias).is_none() {
            return Err(SqlError::semantic(format!(
                "XMATCH references alias {} which is not in FROM",
                term.alias
            )));
        }
    }
    for t in &query.from {
        if !xmatch.terms.iter().any(|term| term.alias == t.alias) {
            return Err(SqlError::semantic(format!(
                "FROM entry {} is not part of the XMATCH clause; plain joins are not federated",
                t.alias
            )));
        }
    }

    // SELECT validation: cross-match queries return columns/expressions,
    // not count(*) (count(*) is the performance-query form).
    let mut selected: Vec<(String, String)> = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::CountStar | SelectItem::Aggregate { .. } => {
                return Err(SqlError::semantic(
                    "aggregates are not valid in a cross-match query",
                ))
            }
            SelectItem::Expr { expr, .. } => {
                for (a, c) in expr.referenced_columns() {
                    if query.table_for_alias(a).is_none() {
                        return Err(SqlError::semantic(format!(
                            "SELECT references unknown alias {a}"
                        )));
                    }
                    selected.push((a.to_string(), c.to_string()));
                }
                if expr.contains_spatial() {
                    return Err(SqlError::semantic(
                        "AREA/XMATCH cannot appear in the SELECT list",
                    ));
                }
            }
        }
    }

    // Split plain conjuncts into single-alias (local) and multi-alias
    // (residual); validate all referenced aliases.
    let mut residuals: Vec<Expr> = Vec::new();
    let mut local: Vec<(String, Expr)> = Vec::new();
    for c in plain {
        let aliases = c.referenced_aliases();
        for a in &aliases {
            if query.table_for_alias(a).is_none() {
                return Err(SqlError::semantic(format!(
                    "WHERE references unknown alias {a}"
                )));
            }
        }
        match aliases.len() {
            0 => {
                // Constant conjunct: keep as residual so it is still
                // enforced (e.g. WHERE 1 = 2 yields nothing).
                residuals.push(c);
            }
            1 => local.push((aliases[0].to_string(), c)),
            _ => residuals.push(c),
        }
    }

    // Columns each archive must carry: SELECT references + residual
    // references (dropouts never contribute rows, so they carry nothing).
    let mut carried: std::collections::HashMap<&str, BTreeSet<String>> =
        std::collections::HashMap::new();
    for (a, c) in &selected {
        carried
            .entry(query.table_for_alias(a).map(|t| t.alias.as_str()).unwrap())
            .or_default()
            .insert(c.clone());
    }
    for r in &residuals {
        for (a, c) in r.referenced_columns() {
            let alias = query.table_for_alias(a).map(|t| t.alias.as_str()).unwrap();
            carried.entry(alias).or_default().insert(c.to_string());
        }
    }
    for key in &query.order_by {
        for (a, c) in key.expr.referenced_columns() {
            let alias = query.table_for_alias(a).map(|t| t.alias.as_str()).unwrap();
            carried.entry(alias).or_default().insert(c.to_string());
        }
    }

    for (a, _) in &selected {
        let term = xmatch.terms.iter().find(|t| t.alias == *a).unwrap();
        if term.dropout {
            return Err(SqlError::semantic(format!(
                "SELECT references drop-out archive {a}, which contributes no rows"
            )));
        }
    }
    for r in &residuals {
        for a in r.referenced_aliases() {
            if let Some(term) = xmatch.terms.iter().find(|t| t.alias == a) {
                if term.dropout {
                    return Err(SqlError::semantic(format!(
                        "WHERE residual references drop-out archive {a}"
                    )));
                }
            }
        }
    }

    let archives: Vec<ArchiveQuery> = query
        .from
        .iter()
        .map(|t| {
            let dropout = xmatch
                .terms
                .iter()
                .find(|term| term.alias == t.alias)
                .map(|term| term.dropout)
                .unwrap_or(false);
            ArchiveQuery {
                table: t.clone(),
                dropout,
                local_predicates: local
                    .iter()
                    .filter(|(a, _)| *a == t.alias)
                    .map(|(_, e)| e.clone())
                    .collect(),
                carried_columns: carried
                    .get(t.alias.as_str())
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default(),
            }
        })
        .collect();

    // Performance queries: one per mandatory archive, in XMATCH order,
    // containing only clauses evaluable entirely at that SkyNode.
    let performance_queries = xmatch
        .mandatory()
        .iter()
        .map(|alias| {
            let slice = archives
                .iter()
                .find(|a| a.table.alias == *alias)
                .expect("mandatory alias is in FROM");
            let mut conj: Vec<Expr> = Vec::new();
            match &region {
                Some(RegionSpec::Circle(a)) => conj.push(Expr::Area(*a)),
                Some(RegionSpec::Polygon(p)) => conj.push(Expr::Polygon(p.clone())),
                None => {}
            }
            conj.extend(slice.local_predicates.iter().cloned());
            PerformanceQuery {
                alias: alias.to_string(),
                archive: slice.table.archive.clone(),
                query: Query {
                    select: vec![SelectItem::CountStar],
                    from: vec![slice.table.clone()],
                    where_clause: Expr::and_all(conj),
                    group_by: Vec::new(),
                    order_by: Vec::new(),
                    limit: None,
                },
            }
        })
        .collect();

    Ok(DecomposedQuery {
        query,
        region,
        xmatch,
        archives,
        residuals,
        performance_queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    const PAPER_QUERY: &str = "SELECT O.object_id, O.right_ascension, T.object_id \
         FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
         WHERE AREA(185.0, -0.5, 4.5) AND XMATCH(O, T, P) < 3.5 \
           AND O.type = GALAXY AND (O.i_flux - T.i_flux) > 2";

    fn paper() -> DecomposedQuery {
        decompose(parse_query(PAPER_QUERY).unwrap()).unwrap()
    }

    #[test]
    fn paper_query_decomposes() {
        let d = paper();
        let area = match d.region.clone().unwrap() {
            RegionSpec::Circle(a) => a,
            other => panic!("expected circle, got {other:?}"),
        };
        assert!((area.ra_deg - 185.0).abs() < 1e-12);
        assert!((area.dec_deg + 0.5).abs() < 1e-12);
        assert_eq!(d.xmatch.mandatory(), vec!["O", "T", "P"]);
        assert_eq!(d.archives.len(), 3);
        // O carries object_id, right_ascension (select) + i_flux (residual).
        let o = d.archive("O").unwrap();
        assert_eq!(
            o.carried_columns,
            vec!["i_flux", "object_id", "right_ascension"]
        );
        assert_eq!(o.local_predicates.len(), 1);
        assert_eq!(o.local_predicates[0].to_string(), "O.type = 'GALAXY'");
        // T carries object_id (select) + i_flux (residual).
        let t = d.archive("T").unwrap();
        assert_eq!(t.carried_columns, vec!["i_flux", "object_id"]);
        assert!(t.local_predicates.is_empty());
        // P carries nothing and has no local predicates.
        let p = d.archive("P").unwrap();
        assert!(p.carried_columns.is_empty());
        // One residual: the flux difference.
        assert_eq!(d.residuals.len(), 1);
        assert_eq!(d.residuals[0].to_string(), "O.i_flux - T.i_flux > 2");
    }

    #[test]
    fn paper_performance_queries_match_section_5_3() {
        let d = paper();
        assert_eq!(d.performance_queries.len(), 3);
        assert_eq!(
            d.performance_queries[0].to_sql(),
            "SELECT count(*) FROM SDSS:Photo_Object O \
             WHERE AREA(185.0, -0.5, 4.5) AND O.type = 'GALAXY'"
        );
        assert_eq!(
            d.performance_queries[1].to_sql(),
            "SELECT count(*) FROM TWOMASS:Photo_Primary T WHERE AREA(185.0, -0.5, 4.5)"
        );
        assert_eq!(
            d.performance_queries[2].to_sql(),
            "SELECT count(*) FROM FIRST:Primary_Object P WHERE AREA(185.0, -0.5, 4.5)"
        );
    }

    #[test]
    fn dropout_gets_no_performance_query() {
        let d = decompose(
            parse_query(
                "SELECT O.id FROM A:T1 O, B:T2 T, C:T3 P \
                 WHERE AREA(10.0, 0.0, 5.0) AND XMATCH(O, T, !P) < 3.5",
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(d.performance_queries.len(), 2);
        assert!(d.archive("P").unwrap().dropout);
        assert!(!d.archive("O").unwrap().dropout);
    }

    #[test]
    fn missing_xmatch_rejected() {
        let q = parse_query("SELECT O.a FROM S:T O WHERE O.a > 1").unwrap();
        assert!(decompose(q).is_err());
        let q = parse_query("SELECT O.a FROM S:T O").unwrap();
        assert!(decompose(q).is_err());
    }

    #[test]
    fn from_entry_outside_xmatch_rejected() {
        let q =
            parse_query("SELECT O.a FROM S:T O, U:V T, W:X Y WHERE XMATCH(O, T) < 2.0").unwrap();
        assert!(decompose(q).is_err());
    }

    #[test]
    fn xmatch_alias_not_in_from_rejected() {
        let q = parse_query("SELECT O.a FROM S:T O WHERE XMATCH(O, Z) < 2.0").unwrap();
        assert!(decompose(q).is_err());
    }

    #[test]
    fn duplicate_spatial_clauses_rejected() {
        let q = parse_query(
            "SELECT O.a FROM S:T O, U:V T \
             WHERE AREA(1.0, 2.0, 3.0) AND AREA(4.0, 5.0, 6.0) AND XMATCH(O, T) < 2.0",
        )
        .unwrap();
        assert!(decompose(q).is_err());
    }

    #[test]
    fn spatial_under_or_rejected() {
        let q = parse_query(
            "SELECT O.a FROM S:T O, U:V T \
             WHERE XMATCH(O, T) < 2.0 AND (O.a > 1 OR AREA(1.0, 2.0, 3.0))",
        )
        .unwrap();
        assert!(decompose(q).is_err());
    }

    #[test]
    fn count_star_in_cross_match_rejected() {
        let q = parse_query("SELECT count(*) FROM S:T O, U:V T WHERE XMATCH(O, T) < 2.0").unwrap();
        assert!(decompose(q).is_err());
    }

    #[test]
    fn select_from_dropout_rejected() {
        let q = parse_query("SELECT P.id FROM S:T O, U:V T, W:X P WHERE XMATCH(O, T, !P) < 2.0")
            .unwrap();
        assert!(decompose(q).is_err());
    }

    #[test]
    fn residual_on_dropout_rejected() {
        let q = parse_query(
            "SELECT O.id FROM S:T O, U:V T, W:X P \
             WHERE XMATCH(O, T, !P) < 2.0 AND (O.f - P.f) > 1",
        )
        .unwrap();
        assert!(decompose(q).is_err());
    }

    #[test]
    fn constant_conjunct_becomes_residual() {
        let q =
            parse_query("SELECT O.a FROM S:T O, U:V T WHERE XMATCH(O, T) < 2.0 AND 1 = 2").unwrap();
        let d = decompose(q).unwrap();
        assert_eq!(d.residuals.len(), 1);
    }

    #[test]
    fn or_of_single_alias_stays_local() {
        let q = parse_query(
            "SELECT O.a FROM S:T O, U:V T \
             WHERE XMATCH(O, T) < 2.0 AND (O.a > 1 OR O.b < 2)",
        )
        .unwrap();
        let d = decompose(q).unwrap();
        assert_eq!(d.archive("O").unwrap().local_predicates.len(), 1);
        assert!(d.residuals.is_empty());
    }

    #[test]
    fn area_optional() {
        let q = parse_query("SELECT O.a FROM S:T O, U:V T WHERE XMATCH(O, T) < 2.0").unwrap();
        let d = decompose(q).unwrap();
        assert!(d.region.is_none());
        assert_eq!(
            d.performance_queries[0].to_sql(),
            "SELECT count(*) FROM S:T O"
        );
    }

    #[test]
    fn multiple_local_predicates_per_archive() {
        let q = parse_query(
            "SELECT O.a FROM S:T O, U:V T \
             WHERE XMATCH(O, T) < 2.0 AND O.a > 1 AND O.b < 5 AND T.c = 'x'",
        )
        .unwrap();
        let d = decompose(q).unwrap();
        assert_eq!(d.archive("O").unwrap().local_predicates.len(), 2);
        assert_eq!(d.archive("T").unwrap().local_predicates.len(), 1);
        let pred = d.archive("O").unwrap().predicate().unwrap();
        assert_eq!(pred.conjuncts().len(), 2);
    }
}
