//! The query tree, plus `Display` impls that regenerate dialect SQL.

use std::fmt;

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// SQL NULL.
    Null,
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// An integer constant.
    Int(i64),
    /// A floating-point constant.
    Float(f64),
    /// A string constant.
    Str(String),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "NULL"),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// Binary operators in increasing precedence groups: OR < AND < comparison
/// < additive < multiplicative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Logical `OR` (Kleene three-valued).
    Or,
    /// Logical `AND` (Kleene three-valued).
    And,
    /// `=`.
    Eq,
    /// `!=` / `<>`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (yields float; division by zero yields NULL).
    Div,
}

impl BinaryOp {
    /// The operator's SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }

    /// Precedence: higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 3,
            BinaryOp::Add | BinaryOp::Sub => 4,
            BinaryOp::Mul | BinaryOp::Div => 5,
        }
    }

    /// Whether this operator is a comparison (`=`, `<`, …).
    pub fn is_comparison(self) -> bool {
        self.precedence() == 3
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical `NOT x`.
    Not,
}

/// The spatial range of an `AREA(ra, dec, radius)` clause: center in
/// degrees, radius in arcminutes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaSpec {
    /// Right ascension of the circle center, degrees.
    pub ra_deg: f64,
    /// Declination of the circle center, degrees.
    pub dec_deg: f64,
    /// Circle radius, arcminutes (the deployed system's unit).
    pub radius_arcmin: f64,
}

impl AreaSpec {
    /// The radius in radians.
    pub fn radius_rad(&self) -> f64 {
        (self.radius_arcmin / 60.0).to_radians()
    }
}

impl fmt::Display for AreaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AREA({}, {}, {})",
            Literal::Float(self.ra_deg),
            Literal::Float(self.dec_deg),
            Literal::Float(self.radius_arcmin)
        )
    }
}

/// The `POLYGON(ra1, dec1, …, raN, decN)` clause: a convex sky polygon,
/// vertices in degrees, counter-clockwise on the sky — the paper's §6
/// extension of the AREA clause.
#[derive(Debug, Clone, PartialEq)]
pub struct PolygonSpec {
    /// `(ra°, dec°)` vertices, counter-clockwise on the sky.
    pub vertices: Vec<(f64, f64)>,
}

impl fmt::Display for PolygonSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "POLYGON(")?;
        for (i, (ra, dec)) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}, {}", Literal::Float(*ra), Literal::Float(*dec))?;
        }
        write!(f, ")")
    }
}

/// A spatial range clause: a circle (the original AREA) or a convex
/// polygon (the §6 extension).
#[derive(Debug, Clone, PartialEq)]
pub enum RegionSpec {
    /// The original `AREA(ra, dec, radius)` circle.
    Circle(AreaSpec),
    /// The §6 `POLYGON(…)` extension.
    Polygon(PolygonSpec),
}

impl fmt::Display for RegionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionSpec::Circle(a) => write!(f, "{a}"),
            RegionSpec::Polygon(p) => write!(f, "{p}"),
        }
    }
}

/// One archive term of an XMATCH clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XMatchTerm {
    /// Table alias from the FROM list.
    pub alias: String,
    /// True when written `!alias` — the drop-out ("exclusive outer join")
    /// form.
    pub dropout: bool,
}

/// The parsed `XMATCH(A, B, !C) < t` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct XMatchSpec {
    /// The participating archives, in clause order.
    pub terms: Vec<XMatchTerm>,
    /// Threshold in standard deviations.
    pub threshold: f64,
}

impl XMatchSpec {
    /// Aliases of the mandatory (non-drop-out) archives, in clause order.
    pub fn mandatory(&self) -> Vec<&str> {
        self.terms
            .iter()
            .filter(|t| !t.dropout)
            .map(|t| t.alias.as_str())
            .collect()
    }

    /// Aliases of the drop-out archives.
    pub fn dropouts(&self) -> Vec<&str> {
        self.terms
            .iter()
            .filter(|t| t.dropout)
            .map(|t| t.alias.as_str())
            .collect()
    }

    /// The chi-square acceptance bound: `XMATCH < t` accepts tuples with
    /// minimized chi-square ≤ t².
    pub fn chi2_bound(&self) -> f64 {
        self.threshold * self.threshold
    }
}

impl fmt::Display for XMatchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XMATCH(")?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if t.dropout {
                write!(f, "!")?;
            }
            write!(f, "{}", t.alias)?;
        }
        write!(f, ") < {}", Literal::Float(self.threshold))
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant.
    Literal(Literal),
    /// `alias.column`.
    Column {
        /// Table alias from the FROM list.
        alias: String,
        /// Column name within that table.
        column: String,
    },
    /// A unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operator application.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `expr [NOT] BETWEEN lo AND hi` (inclusive bounds).
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// True for the `NOT BETWEEN` form.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)` over literal values.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The literal membership list.
        list: Vec<Literal>,
        /// True for the `NOT IN` form.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'` with `%` (any run) and `_` (any char).
    Like {
        /// The tested expression (must evaluate to text).
        expr: Box<Expr>,
        /// The LIKE pattern.
        pattern: String,
        /// True for the `NOT LIKE` form.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for the `IS NOT NULL` form.
        negated: bool,
    },
    /// `AREA(ra, dec, radius)` used as a boolean predicate.
    Area(AreaSpec),
    /// `POLYGON(ra1, dec1, …)` used as a boolean predicate (§6 extension).
    Polygon(PolygonSpec),
    /// A complete `XMATCH(…) < t` comparison.
    XMatch(XMatchSpec),
}

impl Expr {
    /// Splits a conjunction into its top-level AND conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                op: BinaryOp::And,
                lhs,
                rhs,
            } => {
                let mut out = lhs.conjuncts();
                out.extend(rhs.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuilds a conjunction from conjuncts; `None` when empty.
    pub fn and_all(exprs: Vec<Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(|acc, e| Expr::Binary {
            op: BinaryOp::And,
            lhs: Box::new(acc),
            rhs: Box::new(e),
        })
    }

    /// Collects the distinct table aliases referenced by column refs, in
    /// first-appearance order.
    pub fn referenced_aliases(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        self.visit_columns(&mut |alias, _| {
            if !out.contains(&alias) {
                // Extending the borrow: alias lives as long as self.
                out.push(alias);
            }
        });
        out
    }

    /// Collects `(alias, column)` pairs.
    pub fn referenced_columns(&self) -> Vec<(&str, &str)> {
        let mut out = Vec::new();
        self.visit_columns(&mut |a, c| {
            if !out.contains(&(a, c)) {
                out.push((a, c));
            }
        });
        out
    }

    fn visit_columns<'a>(&'a self, f: &mut impl FnMut(&'a str, &'a str)) {
        match self {
            Expr::Column { alias, column } => f(alias, column),
            Expr::Unary { expr, .. } => expr.visit_columns(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_columns(f);
                rhs.visit_columns(f);
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.visit_columns(f);
                lo.visit_columns(f);
                hi.visit_columns(f);
            }
            Expr::InList { expr, .. } | Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => {
                expr.visit_columns(f)
            }
            Expr::Literal(_) | Expr::Area(_) | Expr::Polygon(_) | Expr::XMatch(_) => {}
        }
    }

    /// Whether the tree contains an AREA or XMATCH node (spatial clauses
    /// may only appear as top-level conjuncts; the decomposer uses this to
    /// reject them elsewhere).
    pub fn contains_spatial(&self) -> bool {
        match self {
            Expr::Area(_) | Expr::Polygon(_) | Expr::XMatch(_) => true,
            Expr::Unary { expr, .. } => expr.contains_spatial(),
            Expr::Binary { lhs, rhs, .. } => lhs.contains_spatial() || rhs.contains_spatial(),
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_spatial() || lo.contains_spatial() || hi.contains_spatial()
            }
            Expr::InList { expr, .. } | Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => {
                expr.contains_spatial()
            }
            _ => false,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Column { alias, column } => write!(f, "{alias}.{column}"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    write!(f, "-")?;
                    // `--x` would lex as a SQL comment; parenthesize a
                    // directly nested negation.
                    if matches!(
                        **expr,
                        Expr::Unary {
                            op: UnaryOp::Neg,
                            ..
                        }
                    ) {
                        write!(f, "(")?;
                        expr.fmt_prec(f, 0)?;
                        write!(f, ")")?;
                        Ok(())
                    } else {
                        expr.fmt_prec(f, 6)
                    }
                }
                UnaryOp::Not => {
                    write!(f, "NOT ")?;
                    expr.fmt_prec(f, 6)
                }
            },
            Expr::Binary { op, lhs, rhs } => {
                let prec = op.precedence();
                let need_parens = prec < parent_prec;
                if need_parens {
                    write!(f, "(")?;
                }
                // Comparisons are non-associative in the grammar: a nested
                // comparison on either side needs explicit parens.
                let lhs_prec = if op.is_comparison() { prec + 1 } else { prec };
                lhs.fmt_prec(f, lhs_prec)?;
                write!(f, " {} ", op.symbol())?;
                // Right operand of same precedence needs parens to preserve
                // left associativity on reparse (e.g. a - (b - c)).
                rhs.fmt_prec(f, prec + 1)?;
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                expr.fmt_prec(f, 4)?;
                write!(f, "{} BETWEEN ", if *negated { " NOT" } else { "" })?;
                lo.fmt_prec(f, 4)?;
                write!(f, " AND ")?;
                hi.fmt_prec(f, 4)
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                expr.fmt_prec(f, 4)?;
                write!(f, "{} IN (", if *negated { " NOT" } else { "" })?;
                for (i, l) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, ")")
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                expr.fmt_prec(f, 4)?;
                write!(
                    f,
                    "{} LIKE '{}'",
                    if *negated { " NOT" } else { "" },
                    pattern.replace('\'', "''")
                )
            }
            Expr::IsNull { expr, negated } => {
                expr.fmt_prec(f, 4)?;
                write!(f, " IS{} NULL", if *negated { " NOT" } else { "" })
            }
            Expr::Area(a) => write!(f, "{a}"),
            Expr::Polygon(p) => write!(f, "{p}"),
            Expr::XMatch(x) => write!(f, "{x}"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// A `FROM` entry: `ARCHIVE:Table alias`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// The archive (federation member) hosting the table.
    pub archive: String,
    /// The table name within the archive.
    pub table: String,
    /// The alias used to qualify column references.
    pub alias: String,
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} {}", self.archive, self.table, self.alias)
    }
}

/// Aggregate functions of the Query service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Non-NULL value count.
    Count,
    /// Minimum (NULLs skipped; empty input → NULL).
    Min,
    /// Maximum (NULLs skipped; empty input → NULL).
    Max,
    /// Numeric sum (NULLs skipped; empty input → NULL).
    Sum,
    /// Numeric mean (NULLs skipped; empty input → NULL).
    Avg,
}

impl AggFunc {
    /// The function's SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
        }
    }
}

/// A SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// An expression, optionally aliased with AS.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional `AS` output name.
        alias: Option<String>,
    },
    /// `count(*)` — the performance-query form.
    CountStar,
    /// An aggregate over an expression, e.g. `max(O.i_flux)`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Its argument expression.
        arg: Expr,
        /// Optional `AS` output name.
        alias: Option<String>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            SelectItem::CountStar => write!(f, "count(*)"),
            SelectItem::Aggregate { func, arg, alias } => {
                write!(f, "{}({arg})", func.name())?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

/// Sort direction of an ORDER BY key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDirection {
    /// Ascending (NULLs first).
    Asc,
    /// Descending (NULLs last).
    Desc,
}

/// One ORDER BY key: an expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort-key expression.
    pub expr: Expr,
    /// Sort direction.
    pub direction: SortDirection,
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.direction == SortDirection::Desc {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

/// A complete query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The SELECT list.
    pub select: Vec<SelectItem>,
    /// The FROM list, one entry per archive table.
    pub from: Vec<TableRef>,
    /// The WHERE expression, if any.
    pub where_clause: Option<Expr>,
    /// GROUP BY columns (`alias.column` references).
    pub group_by: Vec<Expr>,
    /// ORDER BY keys, applied after projection/aggregation.
    pub order_by: Vec<OrderKey>,
    /// Row-count cap, applied last.
    pub limit: Option<usize>,
}

impl Query {
    /// The FROM entry for an alias.
    pub fn table_for_alias(&self, alias: &str) -> Option<&TableRef> {
        self.from.iter().find(|t| t.alias == alias)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}")?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(alias: &str, column: &str) -> Expr {
        Expr::Column {
            alias: alias.into(),
            column: column.into(),
        }
    }

    #[test]
    fn conjunct_splitting() {
        let e = Expr::Binary {
            op: BinaryOp::And,
            lhs: Box::new(Expr::Binary {
                op: BinaryOp::And,
                lhs: Box::new(col("a", "x")),
                rhs: Box::new(col("b", "y")),
            }),
            rhs: Box::new(col("c", "z")),
        };
        assert_eq!(e.conjuncts().len(), 3);
        // OR is not split.
        let o = Expr::Binary {
            op: BinaryOp::Or,
            lhs: Box::new(col("a", "x")),
            rhs: Box::new(col("b", "y")),
        };
        assert_eq!(o.conjuncts().len(), 1);
    }

    #[test]
    fn and_all_rebuilds() {
        assert_eq!(Expr::and_all(vec![]), None);
        let single = Expr::and_all(vec![col("a", "x")]).unwrap();
        assert_eq!(single, col("a", "x"));
        let multi = Expr::and_all(vec![col("a", "x"), col("b", "y"), col("c", "z")]).unwrap();
        assert_eq!(multi.conjuncts().len(), 3);
    }

    #[test]
    fn alias_collection() {
        let e = Expr::Binary {
            op: BinaryOp::Gt,
            lhs: Box::new(Expr::Binary {
                op: BinaryOp::Sub,
                lhs: Box::new(col("O", "i_flux")),
                rhs: Box::new(col("T", "i_flux")),
            }),
            rhs: Box::new(Expr::Literal(Literal::Int(2))),
        };
        assert_eq!(e.referenced_aliases(), vec!["O", "T"]);
        assert_eq!(
            e.referenced_columns(),
            vec![("O", "i_flux"), ("T", "i_flux")]
        );
    }

    #[test]
    fn display_preserves_precedence() {
        // (a.x + b.y) * c.z must print with parens.
        let e = Expr::Binary {
            op: BinaryOp::Mul,
            lhs: Box::new(Expr::Binary {
                op: BinaryOp::Add,
                lhs: Box::new(col("a", "x")),
                rhs: Box::new(col("b", "y")),
            }),
            rhs: Box::new(col("c", "z")),
        };
        assert_eq!(e.to_string(), "(a.x + b.y) * c.z");
        // a.x + b.y * c.z needs none.
        let e2 = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(col("a", "x")),
            rhs: Box::new(Expr::Binary {
                op: BinaryOp::Mul,
                lhs: Box::new(col("b", "y")),
                rhs: Box::new(col("c", "z")),
            }),
        };
        assert_eq!(e2.to_string(), "a.x + b.y * c.z");
    }

    #[test]
    fn display_right_associativity_parens() {
        // a - (b - c) must keep its parens.
        let e = Expr::Binary {
            op: BinaryOp::Sub,
            lhs: Box::new(col("a", "x")),
            rhs: Box::new(Expr::Binary {
                op: BinaryOp::Sub,
                lhs: Box::new(col("b", "y")),
                rhs: Box::new(col("c", "z")),
            }),
        };
        assert_eq!(e.to_string(), "a.x - (b.y - c.z)");
    }

    #[test]
    fn xmatch_display() {
        let x = XMatchSpec {
            terms: vec![
                XMatchTerm {
                    alias: "O".into(),
                    dropout: false,
                },
                XMatchTerm {
                    alias: "T".into(),
                    dropout: false,
                },
                XMatchTerm {
                    alias: "P".into(),
                    dropout: true,
                },
            ],
            threshold: 3.5,
        };
        assert_eq!(x.to_string(), "XMATCH(O, T, !P) < 3.5");
        assert_eq!(x.mandatory(), vec!["O", "T"]);
        assert_eq!(x.dropouts(), vec!["P"]);
        assert!((x.chi2_bound() - 12.25).abs() < 1e-12);
    }

    #[test]
    fn area_display_and_radius() {
        let a = AreaSpec {
            ra_deg: 185.0,
            dec_deg: -0.5,
            radius_arcmin: 4.5,
        };
        assert_eq!(a.to_string(), "AREA(185.0, -0.5, 4.5)");
        assert!((a.radius_rad().to_degrees() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn string_literal_escaping() {
        assert_eq!(Literal::Str("it's".into()).to_string(), "'it''s'");
    }
}
