//! Errors for lexing, parsing, evaluation, and decomposition.

/// Errors raised anywhere in the SQL pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset of the offending character.
        offset: usize,
        /// What went wrong.
        detail: String,
    },
    /// Parse error with position and expectation.
    Parse {
        /// Byte offset of the offending token.
        offset: usize,
        /// What was expected vs found.
        detail: String,
    },
    /// Evaluation failure (type error, unknown column, arithmetic fault).
    Eval {
        /// What went wrong.
        detail: String,
    },
    /// The query's structure violates the cross-match dialect rules
    /// (e.g. two XMATCH clauses, AREA under OR, unknown alias).
    Semantic {
        /// The violated rule.
        detail: String,
    },
}

impl SqlError {
    /// Shorthand constructor for [`SqlError::Eval`].
    pub fn eval(detail: impl Into<String>) -> SqlError {
        SqlError::Eval {
            detail: detail.into(),
        }
    }

    /// Shorthand constructor for [`SqlError::Semantic`].
    pub fn semantic(detail: impl Into<String>) -> SqlError {
        SqlError::Semantic {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { offset, detail } => {
                write!(f, "lexical error at byte {offset}: {detail}")
            }
            SqlError::Parse { offset, detail } => {
                write!(f, "parse error at byte {offset}: {detail}")
            }
            SqlError::Eval { detail } => write!(f, "evaluation error: {detail}"),
            SqlError::Semantic { detail } => write!(f, "semantic error: {detail}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = SqlError::Parse {
            offset: 12,
            detail: "expected FROM".into(),
        };
        assert!(e.to_string().contains("byte 12"));
        assert!(e.to_string().contains("expected FROM"));
    }
}
