//! Expression evaluation with SQL three-valued logic.
//!
//! SkyNodes use this to apply the non-spatial clauses of their local query
//! (paper §5.3: "the Cross match service executes its own (non-spatial)
//! query"). Spatial nodes (`AREA`, `XMATCH`) are *not* evaluable here —
//! they are compiled away by the decomposer/planner before any expression
//! reaches a row.

use skyquery_storage::{Row, TableSchema, Value};

use crate::ast::{BinaryOp, Expr, Literal, UnaryOp};
use crate::error::SqlError;

/// Resolves `alias.column` references to values.
pub trait Bindings {
    /// The value bound to `alias.column`, or an error if unknown.
    fn resolve(&self, alias: &str, column: &str) -> Result<Value, SqlError>;
}

/// Bindings with no columns — for constant expressions.
pub struct EmptyBindings;

impl Bindings for EmptyBindings {
    fn resolve(&self, alias: &str, column: &str) -> Result<Value, SqlError> {
        Err(SqlError::eval(format!(
            "no columns available, cannot resolve {alias}.{column}"
        )))
    }
}

/// Bindings over a single table row under one alias.
pub struct RowBindings<'a> {
    /// The alias the row is bound under.
    pub alias: &'a str,
    /// The row's table schema (for column lookup).
    pub schema: &'a TableSchema,
    /// The row itself.
    pub row: &'a Row,
}

impl Bindings for RowBindings<'_> {
    fn resolve(&self, alias: &str, column: &str) -> Result<Value, SqlError> {
        if alias != self.alias {
            return Err(SqlError::eval(format!(
                "alias {alias} not bound here (have {})",
                self.alias
            )));
        }
        let ci = self
            .schema
            .column_index(column)
            .ok_or_else(|| SqlError::eval(format!("unknown column {alias}.{column}")))?;
        Ok(self.row[ci].clone())
    }
}

/// Bindings over several `(alias, schema, row)` triples — used when
/// evaluating cross-archive residual clauses along the chain.
pub struct MultiBindings<'a> {
    entries: Vec<RowBindings<'a>>,
}

impl<'a> MultiBindings<'a> {
    /// An empty binding set.
    pub fn new() -> MultiBindings<'a> {
        MultiBindings {
            entries: Vec::new(),
        }
    }

    /// Adds one `(alias, schema, row)` binding.
    pub fn push(&mut self, alias: &'a str, schema: &'a TableSchema, row: &'a Row) {
        self.entries.push(RowBindings { alias, schema, row });
    }
}

impl Default for MultiBindings<'_> {
    fn default() -> Self {
        MultiBindings::new()
    }
}

impl Bindings for MultiBindings<'_> {
    fn resolve(&self, alias: &str, column: &str) -> Result<Value, SqlError> {
        for e in &self.entries {
            if e.alias == alias {
                return e.resolve(alias, column);
            }
        }
        Err(SqlError::eval(format!("alias {alias} not bound")))
    }
}

impl Expr {
    /// Evaluates the expression against bindings. SQL semantics: NULL
    /// propagates through arithmetic and comparisons, AND/OR use Kleene
    /// three-valued logic.
    pub fn eval(&self, b: &dyn Bindings) -> Result<Value, SqlError> {
        match self {
            Expr::Literal(l) => Ok(match l {
                Literal::Null => Value::Null,
                Literal::Bool(x) => Value::Bool(*x),
                Literal::Int(i) => Value::Int(*i),
                Literal::Float(x) => Value::Float(*x),
                Literal::Str(s) => Value::Text(s.clone()),
            }),
            Expr::Column { alias, column } => b.resolve(alias, column),
            Expr::Unary { op, expr } => {
                let v = expr.eval(b)?;
                match op {
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(x) => Ok(Value::Float(-x)),
                        other => Err(SqlError::eval(format!("cannot negate {other}"))),
                    },
                    UnaryOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Bool(x) => Ok(Value::Bool(!x)),
                        other => Err(SqlError::eval(format!("NOT applied to {other}"))),
                    },
                }
            }
            Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, b),
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let v = expr.eval(b)?;
                let lo = lo.eval(b)?;
                let hi = hi.eval(b)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let ge = v
                    .sql_cmp(&lo)
                    .ok_or_else(|| SqlError::eval(format!("cannot compare {v} with {lo}")))?
                    != std::cmp::Ordering::Less;
                let le = v
                    .sql_cmp(&hi)
                    .ok_or_else(|| SqlError::eval(format!("cannot compare {v} with {hi}")))?
                    != std::cmp::Ordering::Greater;
                Ok(Value::Bool((ge && le) != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(b)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for lit in list {
                    let lv = Expr::Literal(lit.clone()).eval(b)?;
                    if lv.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if v.sql_eq(&lv) == Some(true) {
                        return Ok(Value::Bool(!negated));
                    }
                }
                // SQL: no match but a NULL in the list → UNKNOWN.
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(b)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Text(s) => Ok(Value::Bool(like_match(pattern, &s) != *negated)),
                    other => Err(SqlError::eval(format!("LIKE applied to non-text {other}"))),
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(b)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Area(_) | Expr::Polygon(_) => Err(SqlError::eval(
                "AREA/POLYGON cannot be evaluated per row; they are compiled into range searches",
            )),
            Expr::XMatch(_) => Err(SqlError::eval(
                "XMATCH cannot be evaluated per row; it is executed by the cross-match chain",
            )),
        }
    }

    /// Evaluates as a predicate: NULL (unknown) is *not* satisfied, per
    /// SQL WHERE semantics.
    pub fn eval_predicate(&self, b: &dyn Bindings) -> Result<bool, SqlError> {
        match self.eval(b)? {
            Value::Bool(x) => Ok(x),
            Value::Null => Ok(false),
            other => Err(SqlError::eval(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }
}

fn eval_binary(op: BinaryOp, lhs: &Expr, rhs: &Expr, b: &dyn Bindings) -> Result<Value, SqlError> {
    // Kleene logic short-circuits differently: FALSE AND x = FALSE even if
    // x is NULL, TRUE OR x = TRUE even if x is NULL.
    match op {
        BinaryOp::And => {
            let l = to_tristate(lhs.eval(b)?)?;
            if l == Some(false) {
                return Ok(Value::Bool(false));
            }
            let r = to_tristate(rhs.eval(b)?)?;
            return Ok(match (l, r) {
                (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            });
        }
        BinaryOp::Or => {
            let l = to_tristate(lhs.eval(b)?)?;
            if l == Some(true) {
                return Ok(Value::Bool(true));
            }
            let r = to_tristate(rhs.eval(b)?)?;
            return Ok(match (l, r) {
                (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            });
        }
        _ => {}
    }

    let l = lhs.eval(b)?;
    let r = rhs.eval(b)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l
            .sql_cmp(&r)
            .ok_or_else(|| SqlError::eval(format!("cannot compare {l} with {r}")))?;
        use std::cmp::Ordering::*;
        let result = match op {
            BinaryOp::Eq => ord == Equal,
            BinaryOp::NotEq => ord != Equal,
            BinaryOp::Lt => ord == Less,
            BinaryOp::LtEq => ord != Greater,
            BinaryOp::Gt => ord == Greater,
            BinaryOp::GtEq => ord != Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(result));
    }
    // Arithmetic.
    let (x, y) = match (l.as_f64(), r.as_f64()) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            return Err(SqlError::eval(format!(
                "arithmetic on non-numeric values {l} {} {r}",
                op.symbol()
            )))
        }
    };
    // Preserve integer arithmetic when both sides are integers (matters
    // for exact ids and counts); division always yields float.
    let both_int = matches!((&l, &r), (Value::Int(_), Value::Int(_)));
    let result = match op {
        BinaryOp::Add => x + y,
        BinaryOp::Sub => x - y,
        BinaryOp::Mul => x * y,
        BinaryOp::Div => {
            if y == 0.0 {
                return Ok(Value::Null); // SQL: division by zero → NULL here
            }
            x / y
        }
        _ => unreachable!(),
    };
    if both_int && op != BinaryOp::Div && result.fract() == 0.0 && result.abs() < 9.0e18 {
        Ok(Value::Int(result as i64))
    } else {
        Ok(Value::Float(result))
    }
}

/// SQL `LIKE` matching: `%` matches any run (including empty), `_` any
/// single character; everything else is literal. Case-sensitive, as SQL
/// Server's default collation for astronomy catalogs effectively was not —
/// but determinism beats fidelity here and the dialect documents it.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Iterative matcher with backtracking on the last `%`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((spi, sti)) = star {
            pi = spi + 1;
            ti = sti + 1;
            star = Some((spi, sti + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

fn to_tristate(v: Value) -> Result<Option<bool>, SqlError> {
    match v {
        Value::Bool(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        other => Err(SqlError::eval(format!(
            "boolean operator applied to {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use skyquery_storage::{ColumnDef, DataType};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("x", DataType::Float),
                ColumnDef::new("n", DataType::Int),
                ColumnDef::new("name", DataType::Text).nullable(),
                ColumnDef::new("flag", DataType::Bool),
            ],
        )
    }

    fn eval(expr: &str, row: Vec<Value>) -> Result<Value, SqlError> {
        let s = schema();
        let b = RowBindings {
            alias: "O",
            schema: &s,
            row: &row,
        };
        parse_expr(expr).unwrap().eval(&b)
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Float(2.5),
            Value::Int(4),
            Value::Text("GALAXY".into()),
            Value::Bool(true),
        ]
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(eval("O.x + 1", row()).unwrap(), Value::Float(3.5));
        assert_eq!(eval("O.n * 2", row()).unwrap(), Value::Int(8));
        assert_eq!(eval("O.n / 2", row()).unwrap(), Value::Float(2.0));
        assert_eq!(eval("O.x > 2", row()).unwrap(), Value::Bool(true));
        assert_eq!(eval("O.n <= 3", row()).unwrap(), Value::Bool(false));
        assert_eq!(eval("-O.x < 0", row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn string_equality_including_bare_ident() {
        assert_eq!(eval("O.name = 'GALAXY'", row()).unwrap(), Value::Bool(true));
        // Paper style: bare GALAXY is a string constant.
        assert_eq!(eval("O.name = GALAXY", row()).unwrap(), Value::Bool(true));
        assert_eq!(eval("O.name != STAR", row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_propagation() {
        let null_row = vec![
            Value::Float(1.0),
            Value::Int(1),
            Value::Null,
            Value::Bool(false),
        ];
        assert_eq!(eval("O.name = 'x'", null_row.clone()).unwrap(), Value::Null);
        assert_eq!(
            eval("O.name = NULL", null_row.clone()).unwrap(),
            Value::Null
        );
        assert_eq!(eval("O.x + NULL", null_row).unwrap(), Value::Null);
    }

    #[test]
    fn kleene_logic() {
        // FALSE AND NULL = FALSE; TRUE OR NULL = TRUE.
        assert_eq!(
            eval("1 = 2 AND O.name = 'x'", null_named()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval("1 = 1 OR O.name = 'x'", null_named()).unwrap(),
            Value::Bool(true)
        );
        // TRUE AND NULL = NULL; FALSE OR NULL = NULL.
        assert_eq!(
            eval("1 = 1 AND O.name = 'x'", null_named()).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval("1 = 2 OR O.name = 'x'", null_named()).unwrap(),
            Value::Null
        );
    }

    fn null_named() -> Vec<Value> {
        vec![
            Value::Float(1.0),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
        ]
    }

    #[test]
    fn predicate_null_is_false() {
        let e = parse_expr("O.name = 'x'").unwrap();
        let s = schema();
        let r = null_named();
        let b = RowBindings {
            alias: "O",
            schema: &s,
            row: &r,
        };
        assert!(!e.eval_predicate(&b).unwrap());
    }

    #[test]
    fn division_by_zero_yields_null() {
        assert_eq!(eval("O.n / 0", row()).unwrap(), Value::Null);
    }

    #[test]
    fn type_errors_reported() {
        assert!(eval("O.name + 1", row()).is_err());
        assert!(eval("NOT O.x", row()).is_err());
        assert!(eval("O.flag = 1 AND O.x", row()).is_err());
        assert!(eval("O.name < 1", row()).is_err());
    }

    #[test]
    fn unknown_alias_or_column() {
        assert!(eval("Q.x > 1", row()).is_err());
        assert!(eval("O.missing > 1", row()).is_err());
    }

    #[test]
    fn spatial_nodes_are_not_row_evaluable() {
        assert!(eval("AREA(1.0, 2.0, 3.0)", row()).is_err());
        let s = schema();
        let r = row();
        let b = RowBindings {
            alias: "O",
            schema: &s,
            row: &r,
        };
        let e = parse_expr("XMATCH(O, T) < 2.0").unwrap();
        assert!(e.eval(&b).is_err());
    }

    #[test]
    fn multibindings_resolve_across_aliases() {
        let s1 = schema();
        let mut s2 = schema();
        s2.name = "u".into();
        let r1 = row();
        let r2 = vec![
            Value::Float(0.5),
            Value::Int(9),
            Value::Text("STAR".into()),
            Value::Bool(false),
        ];
        let mut mb = MultiBindings::new();
        mb.push("O", &s1, &r1);
        mb.push("T", &s2, &r2);
        let e = parse_expr("(O.x - T.x) > 1").unwrap();
        assert_eq!(e.eval(&mb).unwrap(), Value::Bool(true));
        let e = parse_expr("O.name != T.name").unwrap();
        assert_eq!(e.eval(&mb).unwrap(), Value::Bool(true));
    }

    #[test]
    fn bool_literals() {
        assert_eq!(eval("O.flag = TRUE", row()).unwrap(), Value::Bool(true));
        assert_eq!(eval("O.flag = FALSE", row()).unwrap(), Value::Bool(false));
    }
}
