//! The extended predicate forms — BETWEEN, IN, LIKE, IS NULL — parsing,
//! printing, three-valued evaluation, and use as SkyNode-local clauses.

use skyquery_sql::eval::like_match;
use skyquery_sql::{decompose, parse_expr, parse_query, Bindings, SqlError};
use skyquery_storage::Value;

struct OneColumn(Value);

impl Bindings for OneColumn {
    fn resolve(&self, alias: &str, column: &str) -> Result<Value, SqlError> {
        if alias == "O" && column == "v" {
            Ok(self.0.clone())
        } else {
            Err(SqlError::eval(format!("unknown {alias}.{column}")))
        }
    }
}

fn eval(expr: &str, v: Value) -> Value {
    parse_expr(expr).unwrap().eval(&OneColumn(v)).unwrap()
}

#[test]
fn between_semantics() {
    assert_eq!(
        eval("O.v BETWEEN 1 AND 5", Value::Int(3)),
        Value::Bool(true)
    );
    assert_eq!(
        eval("O.v BETWEEN 1 AND 5", Value::Int(1)),
        Value::Bool(true)
    );
    assert_eq!(
        eval("O.v BETWEEN 1 AND 5", Value::Int(5)),
        Value::Bool(true)
    );
    assert_eq!(
        eval("O.v BETWEEN 1 AND 5", Value::Int(6)),
        Value::Bool(false)
    );
    assert_eq!(
        eval("O.v NOT BETWEEN 1 AND 5", Value::Int(6)),
        Value::Bool(true)
    );
    assert_eq!(eval("O.v BETWEEN 1 AND 5", Value::Null), Value::Null);
    // Floats and cross-type.
    assert_eq!(
        eval("O.v BETWEEN 0.5 AND 1.5", Value::Float(1.0)),
        Value::Bool(true)
    );
}

#[test]
fn between_binds_tighter_than_and() {
    // a BETWEEN 1 AND 2 AND a < 10: the second AND is a conjunction.
    let e = parse_expr("O.v BETWEEN 1 AND 2 AND O.v < 10").unwrap();
    assert_eq!(e.conjuncts().len(), 2);
}

#[test]
fn in_list_semantics() {
    let galaxy = Value::Text("GALAXY".into());
    assert_eq!(
        eval("O.v IN ('GALAXY', 'QSO')", galaxy.clone()),
        Value::Bool(true)
    );
    assert_eq!(
        eval("O.v IN ('STAR', 'QSO')", galaxy.clone()),
        Value::Bool(false)
    );
    assert_eq!(
        eval("O.v NOT IN ('STAR', 'QSO')", galaxy.clone()),
        Value::Bool(true)
    );
    // Bare identifiers are string constants (dialect rule).
    assert_eq!(eval("O.v IN (GALAXY, STAR)", galaxy), Value::Bool(true));
    // Numeric lists with negatives.
    assert_eq!(eval("O.v IN (-1, 2, 3)", Value::Int(-1)), Value::Bool(true));
    // NULL handling: no match + NULL in list → UNKNOWN; match wins.
    assert_eq!(eval("O.v IN (1, NULL)", Value::Int(2)), Value::Null);
    assert_eq!(eval("O.v IN (2, NULL)", Value::Int(2)), Value::Bool(true));
    assert_eq!(eval("O.v IN (1, 2)", Value::Null), Value::Null);
}

#[test]
fn like_semantics() {
    let t = |s: &str| Value::Text(s.into());
    assert_eq!(eval("O.v LIKE 'GAL%'", t("GALAXY")), Value::Bool(true));
    assert_eq!(eval("O.v LIKE '%AXY'", t("GALAXY")), Value::Bool(true));
    assert_eq!(eval("O.v LIKE 'G_LAXY'", t("GALAXY")), Value::Bool(true));
    assert_eq!(eval("O.v LIKE 'g%'", t("GALAXY")), Value::Bool(false));
    assert_eq!(eval("O.v NOT LIKE 'STAR%'", t("GALAXY")), Value::Bool(true));
    assert_eq!(eval("O.v LIKE '%'", t("")), Value::Bool(true));
    assert_eq!(eval("O.v LIKE '_'", t("")), Value::Bool(false));
    assert_eq!(eval("O.v LIKE 'x%'", Value::Null), Value::Null);
    // LIKE on a number is a type error.
    assert!(parse_expr("O.v LIKE 'x'")
        .unwrap()
        .eval(&OneColumn(Value::Int(1)))
        .is_err());
}

#[test]
fn like_match_unit_cases() {
    assert!(like_match("", ""));
    assert!(like_match("%", "anything"));
    assert!(like_match("a%b%c", "aXXbYYc"));
    assert!(!like_match("a%b%c", "aXXbYY"));
    assert!(like_match("%%%", ""));
    assert!(like_match("_%_", "ab"));
    assert!(!like_match("_%_", "a"));
    assert!(like_match("a_c", "abc"));
    assert!(!like_match("a_c", "ac"));
}

#[test]
fn is_null_semantics() {
    assert_eq!(eval("O.v IS NULL", Value::Null), Value::Bool(true));
    assert_eq!(eval("O.v IS NULL", Value::Int(1)), Value::Bool(false));
    assert_eq!(eval("O.v IS NOT NULL", Value::Int(1)), Value::Bool(true));
    assert_eq!(eval("O.v IS NOT NULL", Value::Null), Value::Bool(false));
}

#[test]
fn print_parse_roundtrip() {
    for sql in [
        "O.v BETWEEN 1 AND 5",
        "O.v NOT BETWEEN 1.5 AND 2.5",
        "O.v IN ('A', 'B', 3)",
        "O.v NOT IN (1, -2)",
        "O.v LIKE 'GAL%'",
        "O.v NOT LIKE '%''s%'",
        "O.v IS NULL",
        "O.v IS NOT NULL",
        "O.v BETWEEN 1 AND 2 AND O.v IS NOT NULL OR O.v IN (9)",
    ] {
        let e = parse_expr(sql).unwrap();
        let printed = e.to_string();
        let back = parse_expr(&printed).unwrap();
        assert_eq!(back, e, "{sql} -> {printed}");
    }
}

#[test]
fn parse_errors() {
    assert!(parse_expr("O.v BETWEEN 1").is_err());
    assert!(parse_expr("O.v IN ()").is_err());
    assert!(parse_expr("O.v IN (O.w)").is_err(), "IN needs literals");
    assert!(parse_expr("O.v LIKE 5").is_err());
    assert!(parse_expr("O.v IS 5").is_err());
    assert!(parse_expr("O.v NOT = 5").is_err());
}

#[test]
fn new_predicates_decompose_as_local_clauses() {
    let q = parse_query(
        "SELECT O.object_id FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T \
         WHERE XMATCH(O, T) < 3.5 AND O.type IN ('GALAXY', 'QSO') \
           AND O.i_flux BETWEEN 10 AND 100 AND T.type LIKE 'G%'",
    )
    .unwrap();
    let d = decompose(q).unwrap();
    assert_eq!(d.archive("O").unwrap().local_predicates.len(), 2);
    assert_eq!(d.archive("T").unwrap().local_predicates.len(), 1);
    // The performance queries carry the predicates verbatim.
    let sql = d.performance_queries[0].to_sql();
    assert!(sql.contains("IN ('GALAXY', 'QSO')"), "{sql}");
    assert!(sql.contains("BETWEEN 10 AND 100"), "{sql}");
}
