//! Property tests: printed queries reparse to the same AST, and expression
//! evaluation respects NULL/Kleene invariants.

use proptest::prelude::*;
use skyquery_sql::{parse_expr, parse_query, BinaryOp, Expr, Literal, UnaryOp};

fn ident() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,6}".prop_filter("avoid keywords", |s| {
        !matches!(
            s.to_ascii_uppercase().as_str(),
            "SELECT"
                | "FROM"
                | "WHERE"
                | "AND"
                | "OR"
                | "NOT"
                | "AREA"
                | "POLYGON"
                | "XMATCH"
                | "COUNT"
                | "AS"
                | "NULL"
                | "TRUE"
                | "FALSE"
                | "BETWEEN"
                | "IN"
                | "LIKE"
                | "IS"
                | "MIN"
                | "MAX"
                | "SUM"
                | "AVG"
                | "GROUP"
                | "BY"
                | "ORDER"
                | "ASC"
                | "DESC"
                | "LIMIT"
        )
    })
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Bool),
        (-1000i64..1000).prop_map(Literal::Int),
        (-1000.0f64..1000.0)
            .prop_filter("finite non-int-looking floats only", |x| x.fract() != 0.0)
            .prop_map(Literal::Float),
        "[a-zA-Z0-9 ']{0,8}".prop_map(Literal::Str),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal().prop_map(Expr::Literal),
        (ident(), ident()).prop_map(|(alias, column)| Expr::Column { alias, column }),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e),
            }),
            inner.prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Or),
        Just(BinaryOp::And),
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
    ]
}

/// NOT binds looser than comparisons in our grammar (`NOT a = b` parses as
/// `NOT (a = b)`), so a printed `NOT x` inside an arithmetic context can't
/// reparse identically. Restrict the roundtrip property to NOT-free trees
/// (NOT is covered by targeted unit tests in the parser).
/// Mirrors the parser's constant folding of unary minus over numeric
/// literals.
fn fold_neg_literals(e: Expr) -> Expr {
    match e {
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => match fold_neg_literals(*expr) {
            Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
            Expr::Literal(Literal::Float(x)) => Expr::Literal(Literal::Float(-x)),
            inner => Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            },
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(fold_neg_literals(*expr)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op,
            lhs: Box::new(fold_neg_literals(*lhs)),
            rhs: Box::new(fold_neg_literals(*rhs)),
        },
        other => other,
    }
}

fn not_free(e: &Expr) -> bool {
    match e {
        Expr::Unary {
            op: UnaryOp::Not, ..
        } => false,
        Expr::Unary { expr, .. } => not_free(expr),
        Expr::Binary { lhs, rhs, .. } => not_free(lhs) && not_free(rhs),
        _ => true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr().prop_filter("not-free", not_free)) {
        // The parser folds `-literal` into a negative literal, so compare
        // against the folded form of the generated tree.
        let e = fold_neg_literals(e);
        let printed = e.to_string();
        match parse_expr(&printed) {
            Ok(back) => prop_assert_eq!(back, e, "printed: {}", printed),
            Err(err) => prop_assert!(false, "reparse failed for {}: {}", printed, err),
        }
    }

    #[test]
    fn query_print_parse_roundtrip(
        cols in proptest::collection::vec((ident(), ident()), 1..4),
        tables in proptest::collection::vec((ident(), ident(), ident()), 1..4),
    ) {
        // Deduplicate aliases to keep the query legal.
        let mut seen = std::collections::HashSet::new();
        let tables: Vec<_> = tables.into_iter().filter(|(_, _, a)| seen.insert(a.clone())).collect();
        let froms: Vec<String> = tables.iter().map(|(ar, t, al)| format!("{ar}:{t} {al}")).collect();
        let selects: Vec<String> = cols.iter().map(|(a, c)| format!("{a}.{c}")).collect();
        let sql = format!("SELECT {} FROM {}", selects.join(", "), froms.join(", "));
        let q = parse_query(&sql).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        prop_assert_eq!(q2, q);
    }

    #[test]
    fn eval_never_panics(e in arb_expr()) {
        // Constant-fold evaluation with no bindings either yields a value
        // or an error — never a panic.
        let _ = e.eval(&skyquery_sql::EmptyBindings);
    }

    #[test]
    fn comparison_with_null_is_null(x in -100i64..100) {
        let e = parse_expr(&format!("{x} = NULL")).unwrap();
        prop_assert_eq!(e.eval(&skyquery_sql::EmptyBindings).unwrap(), skyquery_storage::Value::Null);
    }
}
