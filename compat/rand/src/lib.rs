//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the rand 0.8 API it uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen_range`,
//! `gen_bool`, and `gen`. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically strong for simulation workloads and fully
//! deterministic for a given seed (though its streams differ from the
//! real `StdRng`, which is fine: the workspace only relies on
//! *reproducibility*, never on specific values).

use std::ops::{Range, RangeInclusive};

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value API surface the workspace uses.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        next_f64(self) < p.clamp(0.0, 1.0)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

/// A uniform f64 in `[0, 1)` using the top 53 bits.
fn next_f64<G: Rng + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<G: Rng>(self, rng: &mut G) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = next_f64(rng);
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty inclusive f64 range");
        lo + (hi - lo) * next_f64(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty inclusive integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a natural uniform distribution for [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn generate<G: Rng>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn generate<G: Rng>(rng: &mut G) -> f64 {
        next_f64(rng)
    }
}

impl Standard for bool {
    fn generate<G: Rng>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn generate<G: Rng>(rng: &mut G) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<G: Rng>(rng: &mut G) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = r.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
            let c = r.gen_range(0.25f64..=1.0);
            assert!((0.25..=1.0).contains(&c));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "{heads}");
    }
}
