//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `parking_lot` API it actually uses:
//! non-poisoning [`Mutex`] and [`RwLock`] whose guards are returned
//! directly from `lock()`/`read()`/`write()` (no `Result`). Poisoned
//! std locks are recovered transparently, matching parking_lot's
//! panic-survival semantics closely enough for this workspace.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poison_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
