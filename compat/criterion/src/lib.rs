//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the criterion API its benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a plain
//! wall-clock loop (one warm-up iteration, then `sample_size` timed
//! iterations) reporting min / mean / max — adequate for the relative
//! comparisons the benches print, with none of criterion's statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `routine` (after one warm-up run).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b.samples);
        self
    }

    /// Runs one benchmark that closes over an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b.samples);
        self
    }

    /// Ends the group (report lines were already printed per benchmark).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples (routine never called iter?)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{group}/{id}: mean {} (min {}, max {}, n={})",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group with a default sample size of 10.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    /// Accepted for API compatibility; command-line filters are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("f", |b| {
            b.iter(|| runs += 1);
        });
        group.bench_with_input(BenchmarkId::new("with", 7), &7, |b, i| {
            b.iter(|| *i * 2);
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("n", 3).to_string(), "n/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
