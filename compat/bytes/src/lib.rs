//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the `bytes` API it uses: [`Bytes`], an immutable,
//! cheaply cloneable byte buffer (an `Arc<[u8]>` underneath).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// A buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from("hello".to_string());
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert_eq!(b, Bytes::copy_from_slice(b"hello"));
        let c = b.clone();
        assert_eq!(c.to_vec(), b"hello".to_vec());
        assert!(!c.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::copy_from_slice(&[0x41, 0x00]);
        assert_eq!(format!("{b:?}"), "b\"A\\x00\"");
    }
}
