//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the proptest API its property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter` / `prop_recursive`,
//! range and regex-like string strategies, `collection::vec`,
//! `char::range`, `num::f64` class strategies, `option::of`, `any`, and
//! the `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!`
//! macros. Differences from real proptest: no shrinking (a failing case
//! reports its inputs verbatim), and string strategies support only the
//! `literal` / `[class]` / `{m,n}` regex subset the tests use. Case
//! generation is deterministic per test name, so failures reproduce.

pub mod test_runner {
    //! Deterministic case generation and pass/reject/fail accounting.

    /// How a single generated case concluded.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed; the property does not hold.
        Fail(String),
        /// `prop_assume!` rejected the inputs; try another case.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with a formatted message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection (assumption not met).
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one property-test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration. Named `ProptestConfig` in the prelude.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of passing cases required.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config that runs `cases` passing cases.
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// xoshiro256++ seeded via SplitMix64: the sole entropy source for
    /// strategies, deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Expands a 64-bit seed into generator state.
        pub fn seed_from_u64(seed: u64) -> TestRng {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// A uniform f64 in `[0, 1)` from the top 53 bits.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform integer in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Runs one property over many generated cases.
    pub struct TestRunner {
        config: Config,
        name: String,
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner seeded deterministically from the test's name.
        pub fn new(config: Config, name: &str) -> TestRunner {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRunner {
                config,
                name: name.to_string(),
                rng: TestRng::seed_from_u64(h),
            }
        }

        /// Calls `case` until `config.cases` cases pass, panicking on the
        /// first failure or when rejections exceed the global cap.
        pub fn run(&mut self, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < self.config.cases {
                match case(&mut self.rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(why)) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            panic!(
                                "proptest '{}': too many prop_assume! rejections \
                                 ({rejected}, last: {why})",
                                self.name
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed after {passed} passing case(s):\n{msg}",
                            self.name
                        );
                    }
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// A strategy discarding values failing `keep` (regenerating
        /// rather than rejecting the whole case).
        fn prop_filter<F>(self, whence: &'static str, keep: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                keep,
            }
        }

        /// A recursive strategy: starting from `self` as the leaf, each
        /// of `depth` layers wraps the previous via `branch`, unioned
        /// with the leaf so generation stays size-bounded. The `_size`
        /// and `_items` tuning knobs of real proptest are accepted and
        /// ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _size: u32,
            _items: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                strat = Union::new(vec![leaf.clone(), branch(strat).boxed()]).boxed();
            }
            strat
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        keep: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.keep)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({:?}) rejected 10000 consecutive values",
                self.whence
            );
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            let v = self.start + (self.end - self.start) * rng.next_f64();
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty inclusive f64 range strategy");
            lo + (hi - lo) * rng.next_f64()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive integer range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// String patterns: the `literal` / `[class]` / `{m,n}` regex subset.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let choices: Vec<char> = if chars[i] == '[' {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        set.extend(lo..=hi);
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // skip ']'
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                i += 1;
                let read_int = |i: &mut usize| {
                    let mut n = 0usize;
                    while chars[*i].is_ascii_digit() {
                        n = n * 10 + (chars[*i] as usize - '0' as usize);
                        *i += 1;
                    }
                    n
                };
                let lo = read_int(&mut i);
                let hi = if chars[i] == ',' {
                    i += 1;
                    read_int(&mut i)
                } else {
                    lo
                };
                assert!(chars[i] == '}', "bad quantifier in pattern {pattern:?}");
                i += 1;
                (lo, hi)
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "bad quantifier bounds in pattern {pattern:?}");
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(choices[rng.below(choices.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod arbitrary {
    //! Default strategies for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one uniformly random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Inclusive bounds for generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod char {
    //! Character strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy returned by [`range`].
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    impl Strategy for CharRange {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            loop {
                let cp = self.lo + rng.below((self.hi - self.lo + 1) as u64) as u32;
                if let Some(c) = char::from_u32(cp) {
                    return c;
                }
            }
        }
    }

    /// A uniformly random scalar value in `[lo, hi]`.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }
}

pub mod num {
    //! Numeric class strategies.

    pub mod f64 {
        //! Strategies for f64 values by floating-point class.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A union of floating-point classes; combine with `|`.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Any(u32);

        /// Normal (full-exponent) finite values.
        pub const NORMAL: Any = Any(1);
        /// Positive and negative zero.
        pub const ZERO: Any = Any(2);
        /// Denormalized values.
        pub const SUBNORMAL: Any = Any(4);
        /// Positive and negative infinity.
        pub const INFINITE: Any = Any(8);

        impl std::ops::BitOr for Any {
            type Output = Any;
            fn bitor(self, rhs: Any) -> Any {
                Any(self.0 | rhs.0)
            }
        }

        impl Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                let classes: Vec<u32> = [1u32, 2, 4, 8]
                    .into_iter()
                    .filter(|c| self.0 & c != 0)
                    .collect();
                assert!(!classes.is_empty(), "empty f64 class strategy");
                let class = classes[rng.below(classes.len() as u64) as usize];
                let sign = rng.next_u64() & (1 << 63);
                let mantissa = rng.next_u64() & ((1 << 52) - 1);
                match class {
                    1 => {
                        // Exponent in [1, 2046]: normal, finite.
                        let exp = 1 + rng.below(2046);
                        f64::from_bits(sign | (exp << 52) | mantissa)
                    }
                    2 => f64::from_bits(sign),
                    4 => f64::from_bits(sign | mantissa.max(1)),
                    _ => f64::from_bits(sign | (2047u64 << 52)),
                }
            }
        }
    }
}

pub mod option {
    //! Option strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Some` of a value from `inner` half the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! The glob-import surface property tests use.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Re-export so `proptest::strategy::Strategy` paths work like upstream.
pub use arbitrary::any;
pub use strategy::{BoxedStrategy, Just, Strategy};

/// Hidden helper: binds a generated value, used by `proptest!` expansion.
#[doc(hidden)]
pub fn __generate<S: Strategy>(strat: &S, rng: &mut test_runner::TestRng) -> S::Value {
    strat.generate(rng)
}

/// Declares property tests: `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            runner.run(|__rng| {
                $(let $arg = $crate::__generate(&($strat), __rng);)+
                let __inputs = format!(
                    concat!($("    ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let mut __case = || -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                };
                match __case() {
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        Err($crate::test_runner::TestCaseError::Fail(format!(
                            "{msg}\n  inputs:\n{}", __inputs
                        )))
                    }
                    other => other,
                }
            });
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Rejects the current case (does not count toward the case quota)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// A uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = crate::__generate(&"[A-Za-z][A-Za-z0-9-]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            let p = crate::__generate(&"/[a-z0-9/]{0,20}", &mut rng);
            assert!(p.starts_with('/') && p.len() <= 21);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(9);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[crate::__generate(&s, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(depth(&crate::__generate(&strat, &mut rng)) <= 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_draws_in_range(x in 0i64..10, v in crate::collection::vec(any::<u8>(), 0..5)) {
            prop_assume!(x != 11); // never rejects
            prop_assert!((0..10).contains(&x));
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn f64_classes_respected(
            x in crate::num::f64::NORMAL | crate::num::f64::ZERO | crate::num::f64::SUBNORMAL,
        ) {
            prop_assert!(x.is_finite());
        }

        #[test]
        fn char_range_bounds(c in crate::char::range('a', 'f')) {
            prop_assert!(('a'..='f').contains(&c));
        }

        #[test]
        fn option_of_mixes(o in crate::option::of(0i64..1000)) {
            if let Some(v) = o {
                prop_assert!((0..1000).contains(&v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x too small: {x}");
            }
        }
        always_fails();
    }
}
