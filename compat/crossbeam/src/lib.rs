//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the crossbeam API it uses: `thread::scope` with
//! crossbeam's signature (the spawned closure receives the scope, and
//! `scope` returns a `Result`), implemented on top of the standard
//! library's `std::thread::scope`.

pub mod thread {
    //! Scoped threads with crossbeam's API shape.

    use std::any::Any;

    /// A scope for spawning threads that may borrow from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope, runs `f` inside it, and joins any threads still
    /// running when `f` returns. Unlike std's version this mirrors
    /// crossbeam's `Result` return: `Err` only if a *non-joined* spawned
    /// thread panicked — with std's scope underneath, such a panic
    /// propagates instead, so in practice the result is always `Ok` and
    /// callers' `.expect(..)` matches crossbeam's behaviour.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_spawn_borrows_and_joins() {
        let data = [1, 2, 3, 4];
        let total: i32 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn() {
        let n = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
