//! Kernel parity: the columnar structure-of-arrays kernel and the batch
//! tile kernel must be **byte-identical** to the HTM kernel — same
//! tuples, same order, same
//! `chi2_min` (tuple states compare exactly, field by field), same
//! engine-invariant statistics — through the sequential steps *and* the
//! zone-partitioned parallel engine, at every worker count and zone
//! height, on match and drop-out steps alike.
//!
//! The oracle is always the sequential HTM path. Fields are generated
//! both straddling declination 0 (a zone boundary at every height) and
//! straddling right ascension 0°/360°, where the columnar kernel's RA
//! windows must wrap.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use skyquery_core::engine::CrossMatchEngine;
use skyquery_core::xmatch::{
    dropout_step, match_step, MatchKernel, PartialSet, PartialTuple, StepConfig, TupleState,
};
use skyquery_core::ResultColumn;
use skyquery_htm::SkyPoint;
use skyquery_storage::{
    BufferCache, ColumnDef, DataType, Database, PositionColumns, TableSchema, Value,
};
use skyquery_zones::ZoneEngine;

const ARCSEC: f64 = 1.0 / 3600.0;
const WORKERS: [usize; 3] = [1, 2, 8];
const HEIGHTS: [f64; 4] = [0.05, 0.1, 0.5, 5.0];

fn sigma_rad(arcsec: f64) -> f64 {
    (arcsec * ARCSEC).to_radians()
}

/// An archive database with objects at the given (ra, dec) positions.
fn archive(name: &str, points: &[(f64, f64)]) -> Database {
    let mut db = Database::with_cache(name, BufferCache::new(4096, 16));
    let schema = TableSchema::new(
        "objects",
        vec![
            ColumnDef::new("object_id", DataType::Id),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("dec", DataType::Float),
        ],
    )
    .with_position(PositionColumns::new("ra", "dec", 14))
    .unwrap();
    db.create_table(schema).unwrap();
    for (i, &(ra, dec)) in points.iter().enumerate() {
        db.insert(
            "objects",
            vec![Value::Id(i as u64 + 1), Value::Float(ra), Value::Float(dec)],
        )
        .unwrap();
    }
    db
}

fn cfg(
    sigma_arcsec: f64,
    threshold: f64,
    workers: usize,
    height: f64,
    k: MatchKernel,
) -> StepConfig {
    StepConfig {
        alias: "B".into(),
        table: "objects".into(),
        sigma_rad: sigma_rad(sigma_arcsec),
        threshold,
        region: None,
        local_predicate: None,
        carried_columns: vec!["object_id".into()],
        xmatch_workers: workers,
        zone_height_deg: height,
        kernel: k,
    }
}

/// Incoming 1-tuples at the given positions.
fn singles(points: &[(f64, f64)], sigma_arcsec: f64) -> PartialSet {
    let mut set = PartialSet::new(vec![ResultColumn::new("A.object_id", DataType::Id)]);
    for (i, &(ra, dec)) in points.iter().enumerate() {
        set.tuples.push(PartialTuple {
            state: TupleState::single(
                SkyPoint::from_radec_deg(ra, dec).to_vec3(),
                sigma_rad(sigma_arcsec),
            ),
            values: vec![Value::Id(i as u64 + 1)],
        });
    }
    set
}

/// Runs both step kinds under every kernel × worker-count × zone-height
/// combination and asserts byte-identity against the sequential HTM
/// oracle. `StepStats` equality compares only the engine-invariant
/// fields, so kernel-granularity counters cannot cause false failures.
fn assert_kernel_parity(
    db: &mut Database,
    incoming: &PartialSet,
    sigma_arcsec: f64,
    threshold: f64,
) -> Result<(), TestCaseError> {
    let (m_oracle, m_stats) = match_step(
        db,
        &cfg(sigma_arcsec, threshold, 1, 0.1, MatchKernel::Htm),
        incoming,
    )
    .expect("oracle match");
    let (d_oracle, d_stats) = dropout_step(
        db,
        &cfg(sigma_arcsec, threshold, 1, 0.1, MatchKernel::Htm),
        incoming,
    )
    .expect("oracle dropout");
    let engine = ZoneEngine::new();
    for kernel in [MatchKernel::Columnar, MatchKernel::Htm, MatchKernel::Batch] {
        for &height in &HEIGHTS {
            for &workers in &WORKERS {
                let c = cfg(sigma_arcsec, threshold, workers, height, kernel);
                let (m, ms) = engine.match_tuples(db, &c, incoming).expect("match");
                prop_assert_eq!(
                    &m,
                    &m_oracle,
                    "match diverged: kernel={} workers={} height={}",
                    kernel,
                    workers,
                    height
                );
                prop_assert_eq!(
                    ms,
                    m_stats,
                    "match stats diverged: kernel={} workers={} height={}",
                    kernel,
                    workers,
                    height
                );
                let (d, ds) = engine.dropout(db, &c, incoming).expect("dropout");
                prop_assert_eq!(
                    &d,
                    &d_oracle,
                    "dropout diverged: kernel={} workers={} height={}",
                    kernel,
                    workers,
                    height
                );
                prop_assert_eq!(
                    ds,
                    d_stats,
                    "dropout stats diverged: kernel={} workers={} height={}",
                    kernel,
                    workers,
                    height
                );
            }
        }
    }
    Ok(())
}

/// Strategy: a correlated field near the given RA, straddling dec 0.
/// Each entry is (ra, dec, dra_arcsec, ddec_arcsec); the perturbation
/// builds the archive counterpart so real matches occur.
fn correlated_field(ra0: f64, n: usize) -> impl Strategy<Value = Vec<(f64, f64, f64, f64)>> {
    proptest::collection::vec(
        (
            (ra0 - 0.005..ra0 + 0.005),
            (-0.002f64..0.002),
            (-0.5f64..0.5),
            (-0.5f64..0.5),
        ),
        1..n,
    )
}

/// `(incoming positions, archive positions)`.
type FieldSplit = (Vec<(f64, f64)>, Vec<(f64, f64)>);

/// Splits a correlated field into incoming positions and perturbed
/// archive counterparts (every other point only, so drop-out steps both
/// keep and discard), normalizing RA into [0, 360).
fn split_field(field: &[(f64, f64, f64, f64)]) -> FieldSplit {
    let incoming = field
        .iter()
        .map(|&(ra, dec, _, _)| (ra.rem_euclid(360.0), dec))
        .collect();
    let archive = field
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, &(ra, dec, dra, ddec))| {
            ((ra + dra * ARCSEC).rem_euclid(360.0), dec + ddec * ARCSEC)
        })
        .collect();
    (incoming, archive)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn columnar_kernel_is_byte_identical_midsky(
        field in correlated_field(180.0, 20),
        sigma in 0.1f64..0.8,
        threshold in 2.0f64..5.0,
    ) {
        let (incoming_pts, archive_pts) = split_field(&field);
        let mut db = archive("B", &archive_pts);
        let incoming = singles(&incoming_pts, sigma);
        assert_kernel_parity(&mut db, &incoming, sigma, threshold)?;
    }

    #[test]
    fn columnar_kernel_is_byte_identical_across_ra_wrap(
        field in correlated_field(360.0, 20),
        sigma in 0.1f64..0.8,
        threshold in 2.0f64..5.0,
    ) {
        // Positions scatter across the 0°/360° seam: an incoming point at
        // 359.999° must find its archive counterpart at 0.001° and vice
        // versa, forcing the columnar kernel's two-subrange RA windows.
        let (incoming_pts, archive_pts) = split_field(&field);
        let mut db = archive("B", &archive_pts);
        let incoming = singles(&incoming_pts, sigma);
        assert_kernel_parity(&mut db, &incoming, sigma, threshold)?;
    }
}

/// A deterministic polar field: probe balls over the pole force the
/// columnar kernel's full-zone RA scan fallback.
#[test]
fn columnar_kernel_is_byte_identical_near_poles() {
    let mut pts = Vec::new();
    for i in 0..24 {
        let ra = 15.0 * i as f64;
        pts.push((ra, 89.9995));
        pts.push((ra + 0.3, -89.9995));
    }
    let mut db = archive("B", &pts);
    let incoming = singles(&pts, 0.4);
    assert_kernel_parity(&mut db, &incoming, 0.4, 3.5).unwrap();
}
