//! Sharded-archive parity: a federation whose archives are split across
//! declination-zone shards must return results *byte-identical* to the
//! single-node chain — across shard counts, kernels, chain modes, field
//! geometries (RA wrap, polar cap), and zone heights; and it must keep
//! that identity when a shard dies mid-scatter and the checkpointed
//! driver re-plans and resumes from the merged set.

use proptest::prelude::*;
use skyquery_core::{ChainMode, FederationConfig, MatchKernel};
use skyquery_net::{FaultKind, FaultPlan, FaultRule, Url};
use skyquery_sim::{CatalogParams, FederationBuilder, QuerySpec, SurveyParams, TestFederation};

/// A three-archive federation over a cap at `center`, split into
/// `shards` zone shards per archive (1 = the classic single-node
/// layout). Identical parameters yield identical skies, so the only
/// variable between two builds is the sharding itself.
fn fed(
    shards: usize,
    bodies: usize,
    center: (f64, f64),
    config: FederationConfig,
) -> TestFederation {
    FederationBuilder::new()
        .catalog(CatalogParams {
            count: bodies,
            center_ra_deg: center.0,
            center_dec_deg: center.1,
            radius_deg: 1.5,
            ..CatalogParams::default()
        })
        .survey(SurveyParams::sdss_like())
        .survey(SurveyParams::twomass_like())
        .survey(SurveyParams::first_like())
        .config(config)
        .shards(shards)
        .build()
}

/// The sweep query: a three-way cross-match, optionally demoting FIRST
/// to a drop-out term so the intersection merge is exercised too.
fn sweep_query(dropout: bool) -> String {
    QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
            ("FIRST".into(), "Primary_Object".into(), "P".into(), dropout),
        ],
        threshold: 4.0,
        area: None,
        polygon: None,
        predicates: vec![],
        select: vec![],
    }
    .to_sql()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance sweep: every (shard count, kernel, chain mode,
    /// field geometry, zone height, drop-out) combination renders the
    /// same bytes as the single-node federation.
    #[test]
    fn sharded_results_are_byte_identical(
        shards in prop_oneof![Just(2usize), Just(4usize), Just(8usize)],
        kernel in prop_oneof![
            Just(MatchKernel::Columnar),
            Just(MatchKernel::Htm),
            Just(MatchKernel::Batch),
        ],
        mode in prop_oneof![Just(ChainMode::Recursive), Just(ChainMode::Checkpointed)],
        center in prop_oneof![
            Just((185.0, -0.5)),  // the paper's equatorial field
            Just((0.05, 12.0)),   // RA wrap across 0h
            Just((140.0, 88.2)),  // polar cap
        ],
        zone_height in prop_oneof![Just(0.05), Just(0.1), Just(0.4)],
        dropout in any::<bool>(),
    ) {
        let config = FederationConfig {
            kernel,
            chain_mode: mode,
            zone_height_deg: zone_height,
            ..FederationConfig::default()
        };
        let sql = sweep_query(dropout);
        let baseline = fed(1, 160, center, config);
        let (want, base_trace) = baseline.portal.submit(&sql).unwrap();
        prop_assert!(
            base_trace.events().iter().all(|e| e.action != "scatter"),
            "single-node federations must take the classic chain"
        );
        let sharded = fed(shards, 160, center, config);
        let (got, trace) = sharded.portal.submit(&sql).unwrap();
        prop_assert_eq!(got.to_ascii(), want.to_ascii());
        prop_assert!(
            trace.events().iter().any(|e| e.action == "scatter"),
            "sharded submission recorded no scatter events"
        );
    }
}

/// Registering into a shard group returns the new [`Registration`]
/// summary: the archive, the registered node's zone range, the group
/// size after the call, and the catalog's table count.
#[test]
fn registration_reports_shard_group_summary() {
    let sharded = fed(4, 120, (185.0, -0.5), FederationConfig::default());
    // Re-register an existing shard: idempotent, and the summary sees
    // the whole four-shard group.
    let reg = sharded
        .portal
        .register_node(&Url::new("sdss-s2.skyquery.net", "/soap"))
        .unwrap();
    assert_eq!(reg.archive, "SDSS");
    assert_eq!(reg.shard_count, 4);
    assert!(reg.table_count >= 1);
    assert!(!reg.extent.is_full_sky());
    assert_eq!(sharded.portal.shards_of("sdss").len(), 4);
    // An unsharded archive registers as a group of one spanning the sky.
    let solo = fed(1, 120, (185.0, -0.5), FederationConfig::default());
    let reg = solo
        .portal
        .register_node(&Url::new("sdss.skyquery.net", "/soap"))
        .unwrap();
    assert_eq!(reg.shard_count, 1);
    assert!(reg.extent.is_full_sky());
}

/// Re-registering one shard reports the group registration and the
/// registry keeps per-shard info (name, extent) queryable through
/// [`Portal::shards_of`] — the supported surface since the
/// single-value `register_node_info` shim was removed.
#[test]
fn reregistered_shard_info_queryable_via_shards_of() {
    let fed = fed(2, 100, (185.0, -0.5), FederationConfig::default());
    let reg = fed
        .portal
        .register_node(&Url::new("sdss-s1.skyquery.net", "/soap"))
        .unwrap();
    assert_eq!(reg.shard_count, 2);
    let shard = fed
        .portal
        .shards_of("SDSS")
        .into_iter()
        .find(|n| n.url.host == "sdss-s1.skyquery.net")
        .expect("re-registered shard stays in the group");
    assert_eq!(shard.info.name, "SDSS");
    assert!(
        shard.info.extent.is_some(),
        "shard info must publish its extent"
    );
}

/// Maps the seed step's alias (first "scatter" trace event) to the
/// archive's shard-host prefix, so fault injection can target the shard
/// group that executes *first* regardless of count-star ordering.
fn seed_archive(trace: &skyquery_core::ExecutionTrace) -> &'static str {
    let ev = trace
        .events()
        .iter()
        .find(|e| e.action == "scatter")
        .expect("sharded run has scatter events");
    match ev.detail.split(':').next().unwrap() {
        "O" => "sdss",
        "T" => "twomass",
        "P" => "first",
        other => panic!("unknown alias {other}"),
    }
}

/// The fixed-seed soak: one shard of the *seed* archive goes down for
/// longer than one call's retry budget, mid-scatter. The checkpointed
/// driver defers the step ("replan"), drives the other archives from
/// the in-memory merged set, resumes ("resume") once the shard heals,
/// and the final bytes are identical to the clean run. No leases leak.
#[test]
fn shard_death_mid_scatter_resumes_to_identical_bytes() {
    let config = FederationConfig {
        chain_mode: ChainMode::Checkpointed,
        ..FederationConfig::default()
    };
    let sql = sweep_query(false);
    let clean = fed(4, 200, (185.0, -0.5), config);
    let (want, clean_trace) = clean.portal.submit(&sql).unwrap();
    assert!(want.row_count() > 0, "soak query must match something");
    let victim = format!("{}-s1.skyquery.net", seed_archive(&clean_trace));

    let faulted = FederationBuilder::new()
        .catalog(CatalogParams {
            count: 200,
            center_ra_deg: 185.0,
            center_dec_deg: -0.5,
            radius_deg: 1.5,
            ..CatalogParams::default()
        })
        .survey(SurveyParams::sdss_like())
        .survey(SurveyParams::twomass_like())
        .survey(SurveyParams::first_like())
        .config(config)
        .shards(4)
        .faults(
            FaultPlan::new().rule(
                // Four HostDown hits: the first ScatterStep call exhausts
                // its three attempts and fails; the deferred retry eats the
                // last fault and recovers within its own budget.
                FaultRule::new(FaultKind::HostDown)
                    .host(victim.clone())
                    .action("ScatterStep")
                    .times(4),
            ),
        )
        .build();
    let (got, trace) = faulted.portal.submit(&sql).unwrap();
    assert_eq!(got.to_ascii(), want.to_ascii(), "resumed bytes differ");

    let actions: Vec<&str> = trace.events().iter().map(|e| e.action.as_str()).collect();
    assert!(actions.contains(&"replan"), "no replan event: {actions:?}");
    assert!(actions.contains(&"resume"), "no resume event: {actions:?}");
    let events = faulted.net.metrics().node_events();
    assert!(events.iter().any(|((_, k), _)| k == "replan"));
    assert!(events.iter().any(|((_, k), _)| k == "resume"));
    // Scatter-gather keeps its checkpoint in the Portal: no node-side
    // lease survives the query.
    for node in &faulted.nodes {
        assert_eq!(
            node.active_leases(),
            0,
            "{} leaked a lease",
            node.url().host
        );
    }
    // Every shard whose zone range can see the field did real work. The
    // field sits at dec ≈ -0.5° ± 1.5°, so of each archive's four
    // quarter-sky shards only s1 ([-45°, 0°)) and s2 ([0°, 45°)) can
    // intersect it; the polar shards of non-seed archives are
    // extent-pruned and legitimately idle.
    for archive in ["sdss", "twomass", "first"] {
        for node in faulted.shard_nodes(archive) {
            let host = &node.url().host;
            if host.contains("-s1.") || host.contains("-s2.") {
                assert!(node.executed_steps() >= 1, "{} idle", node.url().host);
            }
        }
    }
}

/// Extent pruning: shards whose zone range cannot intersect the input
/// set's probe span are skipped entirely — the scatter trace notes the
/// prune, the merged step stats carry the `shards_pruned` counter, the
/// pruned nodes never execute a step, and the result bytes still match
/// the unsharded baseline.
#[test]
fn extent_pruning_skips_out_of_band_shards() {
    let config = FederationConfig::default();
    let sql = sweep_query(false);
    let baseline = fed(1, 150, (185.0, -0.5), config);
    let (want, _) = baseline.portal.submit(&sql).unwrap();
    let sharded = fed(4, 150, (185.0, -0.5), config);
    let (got, trace) = sharded.portal.submit(&sql).unwrap();
    assert_eq!(got.to_ascii(), want.to_ascii(), "pruned bytes differ");

    // The field spans dec ≈ [-2°, 1°]: only the two equatorial quarters
    // can intersect it, so each of the two non-seed steps prunes the two
    // polar shards.
    assert!(
        trace
            .events()
            .iter()
            .any(|e| e.detail.contains("extent-pruned")),
        "no extent-pruned scatter note in trace"
    );
    let pruned: usize = trace
        .events()
        .iter()
        .filter(|e| e.action == "cross match step")
        .filter_map(|e| e.detail.split("shards pruned ").nth(1))
        .filter_map(|tail| tail.trim().parse::<usize>().ok())
        .sum();
    assert_eq!(
        pruned, 4,
        "expected 2 pruned shards on each of 2 non-seed steps"
    );

    // The seed archive scatters to all of its shards (there is no input
    // to prune by); every other archive's polar shards stay idle.
    let seed = seed_archive(&trace);
    for archive in ["sdss", "twomass", "first"] {
        for node in sharded.shard_nodes(archive) {
            let host = &node.url().host;
            let polar = host.contains("-s0.") || host.contains("-s3.");
            if archive == seed || !polar {
                assert!(node.executed_steps() >= 1, "{host} idle");
            } else {
                assert_eq!(node.executed_steps(), 0, "{host} was not pruned");
            }
        }
    }
}

/// Transient shard faults inside one call's retry budget recover in the
/// transfer layer and never surface — in either chain mode.
#[test]
fn transient_shard_faults_recover_within_retry_budget() {
    for mode in [ChainMode::Recursive, ChainMode::Checkpointed] {
        let config = FederationConfig {
            chain_mode: mode,
            ..FederationConfig::default()
        };
        let sql = sweep_query(true);
        let clean = fed(2, 150, (185.0, -0.5), config);
        let (want, _) = clean.portal.submit(&sql).unwrap();

        let faulted = FederationBuilder::new()
            .catalog(CatalogParams {
                count: 150,
                center_ra_deg: 185.0,
                center_dec_deg: -0.5,
                radius_deg: 1.5,
                ..CatalogParams::default()
            })
            .survey(SurveyParams::sdss_like())
            .survey(SurveyParams::twomass_like())
            .survey(SurveyParams::first_like())
            .config(config)
            .shards(2)
            .faults(
                FaultPlan::new().rule(
                    FaultRule::new(FaultKind::HostDown)
                        .host("sdss-s1.skyquery.net")
                        .action("ScatterStep")
                        .times(2),
                ),
            )
            .build();
        let (got, _) = faulted.portal.submit(&sql).unwrap();
        assert_eq!(got.to_ascii(), want.to_ascii(), "{mode:?}: bytes differ");
        assert!(faulted.net.metrics().retry_total().retries > 0);
        assert!(faulted.portal.unhealthy_hosts().is_empty());
    }
}

/// A drop-out archive that loses a shard *permanently* degrades: the
/// checkpointed driver intersects over the shards that answered, which
/// can only weaken the filter — the result is a superset of the clean
/// run, flagged by a "degraded" event.
#[test]
fn permanent_dropout_shard_loss_degrades_to_superset() {
    let config = FederationConfig {
        chain_mode: ChainMode::Checkpointed,
        ..FederationConfig::default()
    };
    let sql = sweep_query(true);
    let clean = fed(4, 200, (185.0, -0.5), config);
    let (want, _) = clean.portal.submit(&sql).unwrap();

    let faulted = FederationBuilder::new()
        .catalog(CatalogParams {
            count: 200,
            center_ra_deg: 185.0,
            center_dec_deg: -0.5,
            radius_deg: 1.5,
            ..CatalogParams::default()
        })
        .survey(SurveyParams::sdss_like())
        .survey(SurveyParams::twomass_like())
        .survey(SurveyParams::first_like())
        .config(config)
        .shards(4)
        .faults(
            FaultPlan::new().rule(
                FaultRule::new(FaultKind::HostDown)
                    .host("first-s2.skyquery.net")
                    .action("ScatterStep")
                    .times(1000),
            ),
        )
        .build();
    let (got, trace) = faulted.portal.submit(&sql).unwrap();
    assert!(
        got.row_count() >= want.row_count(),
        "degraded drop-out must only weaken the filter ({} < {})",
        got.row_count(),
        want.row_count()
    );
    assert!(
        trace.events().iter().any(|e| e.action == "degraded"),
        "no degraded event recorded"
    );
    assert!(faulted
        .net
        .metrics()
        .node_events()
        .iter()
        .any(|((_, k), _)| k == "degraded"));
}
