//! End-to-end federation tests: registration, the paper's sample query,
//! execution traces, and plan ordering — the whole §5 pipeline over the
//! simulated network.

use skyquery_core::{FederationConfig, OrderingStrategy};
use skyquery_sim::{paper_query, xmatch_query, FederationBuilder};
use skyquery_storage::Value;

#[test]
fn paper_sample_query_end_to_end() {
    let fed = FederationBuilder::paper_triple(800).build();
    let (result, trace) = fed.portal.submit(&paper_query()).unwrap();
    // Columns follow the SELECT list.
    let names: Vec<&str> = result.columns.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, vec!["O.object_id", "O.ra", "T.object_id"]);
    // FIRST detects ~15% of bodies and the flux clause is selective, so
    // the result is a strict subset — but the setup guarantees some
    // matches exist.
    assert!(result.row_count() > 0, "expected some cross matches");
    // The trace shows the Figure-3 progression.
    let rendered = trace.render();
    assert!(rendered.contains("submit"));
    assert!(rendered.contains("performance quer"));
    assert!(rendered.contains("plan"));
    assert!(rendered.contains("cross match step"));
    assert!(rendered.contains("relay"));
}

#[test]
fn client_speaks_soap_to_portal() {
    let fed = FederationBuilder::paper_triple(300).build();
    let client = fed.client("astronomer.jhu.edu");
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
        ],
        3.5,
        Some((185.0, -0.5, 60.0)),
    );
    let (result, trace) = client.query(&sql).unwrap();
    assert!(result.row_count() > 0);
    assert!(!trace.is_empty());
    // Client ↔ portal traffic is visible on the network.
    let m = fed.net.metrics();
    assert!(m.link("astronomer.jhu.edu", "portal.skyquery.net").messages > 0);
}

#[test]
fn count_star_ordering_puts_smallest_archive_last() {
    let fed = FederationBuilder::paper_triple(600).build();
    let (_, trace) = fed
        .portal
        .submit(&xmatch_query(
            &[
                ("SDSS", "Photo_Object", "O"),
                ("TWOMASS", "Photo_Primary", "T"),
                ("FIRST", "Primary_Object", "P"),
            ],
            3.5,
            None,
        ))
        .unwrap();
    // SDSS detects ~95%, TWOMASS ~70%, FIRST ~15%: descending count
    // order is O -> T -> P, so FIRST (smallest) seeds the chain.
    let plan_line = trace
        .events()
        .iter()
        .find(|e| e.action == "plan")
        .expect("plan event")
        .detail
        .clone();
    assert!(
        plan_line.contains("O") && plan_line.ends_with(')'),
        "plan line: {plan_line}"
    );
    let o_pos = plan_line.find("O(").expect("O in plan");
    let t_pos = plan_line.find("T(").expect("T in plan");
    let p_pos = plan_line.find("P(").expect("P in plan");
    assert!(
        o_pos < t_pos && t_pos < p_pos,
        "plan order wrong: {plan_line}"
    );
}

#[test]
fn chain_vs_pull_to_portal_same_result() {
    let fed = FederationBuilder::paper_triple(400).build();
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
        ],
        3.5,
        Some((185.0, -0.5, 45.0)),
    );
    let (chained, _) = fed.portal.submit(&sql).unwrap();
    let pulled = fed.portal.submit_pull_to_portal(&sql).unwrap();
    let key = |rs: &skyquery_core::ResultSet| {
        let mut rows: Vec<(u64, u64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].as_id().unwrap(), r[1].as_id().unwrap()))
            .collect();
        rows.sort_unstable();
        rows
    };
    assert_eq!(key(&chained), key(&pulled));
    assert!(chained.row_count() > 0);
}

#[test]
fn chain_transmits_fewer_bytes_than_pull() {
    let fed = FederationBuilder::paper_triple(800).build();
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        3.5,
        None,
    );
    fed.net.reset_metrics();
    fed.portal.submit(&sql).unwrap();
    let chained_bytes = fed.net.metrics().total().bytes;

    fed.net.reset_metrics();
    fed.portal.submit_pull_to_portal(&sql).unwrap();
    let pulled_bytes = fed.net.metrics().total().bytes;

    assert!(
        chained_bytes < pulled_bytes,
        "chained {chained_bytes} should beat pull-to-portal {pulled_bytes}"
    );
}

#[test]
fn ordering_strategies_agree_on_results() {
    let fed = FederationBuilder::paper_triple(400).build();
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        3.5,
        Some((185.0, -0.5, 45.0)),
    );
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for ordering in [
        OrderingStrategy::CountStarDescending,
        OrderingStrategy::CountStarAscending,
        OrderingStrategy::DeclarationOrder,
        OrderingStrategy::Random(7),
    ] {
        fed.portal.set_config(FederationConfig {
            ordering,
            ..FederationConfig::default()
        });
        let (result, _) = fed.portal.submit(&sql).unwrap();
        let mut rows = result.rows.clone();
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        match &reference {
            None => reference = Some(rows),
            Some(r) => assert_eq!(
                &rows, r,
                "§5.4: the XMATCH scheme is fully symmetric — order must not change results (ordering {ordering:?})"
            ),
        }
    }
}

#[test]
fn descending_order_transmits_least() {
    let fed = FederationBuilder::paper_triple(800).build();
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        3.5,
        None,
    );
    let mut bytes = std::collections::HashMap::new();
    for (name, ordering) in [
        ("desc", OrderingStrategy::CountStarDescending),
        ("asc", OrderingStrategy::CountStarAscending),
    ] {
        fed.portal.set_config(FederationConfig {
            ordering,
            ..FederationConfig::default()
        });
        fed.net.reset_metrics();
        fed.portal.submit(&sql).unwrap();
        bytes.insert(name, fed.net.metrics().total().bytes);
    }
    assert!(
        bytes["desc"] < bytes["asc"],
        "§5.3 claim: descending count order reduces transmission ({} vs {})",
        bytes["desc"],
        bytes["asc"]
    );
}

#[test]
fn unregistered_archive_is_a_planning_error() {
    let fed = FederationBuilder::paper_triple(100).build();
    let err = fed
        .portal
        .submit(&xmatch_query(
            &[("HUBBLE", "Objects", "H"), ("SDSS", "Photo_Object", "O")],
            3.5,
            None,
        ))
        .unwrap_err();
    assert!(err.to_string().contains("not registered"), "{err}");
}

#[test]
fn archive_can_leave_the_federation() {
    let fed = FederationBuilder::paper_triple(100).build();
    assert!(fed.portal.unregister("FIRST"));
    assert!(!fed.portal.unregister("FIRST"));
    assert_eq!(fed.portal.archives().len(), 2);
    let err = fed.portal.submit(&paper_query()).unwrap_err();
    assert!(err.to_string().contains("not registered"));
}
