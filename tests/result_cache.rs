//! Result-cache behavior: a repeat query is served from the Portal's
//! cache without executing a single chain step; after archives grow, an
//! incremental repair (probing only the delta rows) is byte-identical
//! to a cold run over the same data — across kernels, chain modes, and
//! shard counts; an expired cache lease forces a clean cold re-run; and
//! failed best-effort cleanup RPCs (checkpoint release, lease renewal)
//! are tallied in the network metrics instead of being swallowed.

use proptest::prelude::*;
use skyquery_core::{ChainMode, FederationConfig, MatchKernel, RetryPolicy};
use skyquery_net::{FaultKind, FaultPlan, FaultRule};
use skyquery_sim::{CatalogParams, FederationBuilder, QuerySpec, SurveyParams, TestFederation};
use skyquery_storage::Value;

const SDSS_HOST: &str = "sdss.skyquery.net";
const TWOMASS_HOST: &str = "twomass.skyquery.net";

/// The paper's three-archive federation over a deterministic sky, with
/// the result cache dialed to `cache_capacity` entries. Identical
/// parameters build identical federations, so a cache-enabled build and
/// a cache-disabled twin can be compared byte for byte.
fn fed(
    cache_capacity: usize,
    shards: usize,
    kernel: MatchKernel,
    chain_mode: ChainMode,
) -> TestFederation {
    FederationBuilder::new()
        .catalog(CatalogParams {
            count: 140,
            ..CatalogParams::default()
        })
        .survey(SurveyParams::sdss_like())
        .survey(SurveyParams::twomass_like())
        .survey(SurveyParams::first_like())
        .config(FederationConfig {
            result_cache_capacity: cache_capacity,
            result_cache_ttl_s: 600.0,
            kernel,
            chain_mode,
            ..FederationConfig::default()
        })
        .shards(shards)
        .build()
}

/// Three-way cross-match, optionally demoting FIRST to a drop-out term
/// so the repair path has to reconcile all three step kinds (seed,
/// match, drop-out).
fn sweep_query(dropout: bool) -> String {
    QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
            ("FIRST".into(), "Primary_Object".into(), "P".into(), dropout),
        ],
        threshold: 4.0,
        area: None,
        polygon: None,
        predicates: vec![],
        select: vec![],
    }
    .to_sql()
}

fn total_executed_steps(fed: &TestFederation) -> u64 {
    fed.nodes.iter().map(|n| n.executed_steps()).sum()
}

/// Appends deterministic rows to an archive's primary table directly in
/// storage (bumping its modification version), the way an autonomous
/// archive grows between portal queries.
fn inject(fed: &TestFederation, archive: &str, rows: &[(u64, f64, f64)]) {
    let node = fed.node(archive).expect("archive registered");
    let table = node.info().primary_table.clone();
    node.with_db(|db| {
        for &(id, ra, dec) in rows {
            db.insert(
                &table,
                vec![
                    Value::Id(id),
                    Value::Float(ra),
                    Value::Float(dec),
                    Value::Text("GALAXY".into()),
                    Value::Float(1.0),
                ],
            )
            .expect("conforming row");
        }
    });
}

/// The delta workload: a tight clump of new objects near the cap center
/// that lands in every survey, plus one per-archive singleton, so the
/// repair has fresh seed rows, fresh match extensions, and fresh
/// drop-out probes to reconcile.
fn grow_archives(fed: &TestFederation) {
    inject(
        fed,
        "SDSS",
        &[(900_001, 185.02, -0.48), (900_002, 184.70, -0.30)],
    );
    inject(
        fed,
        "TWOMASS",
        &[(910_001, 185.0201, -0.4799), (910_002, 185.40, -0.90)],
    );
    inject(fed, "FIRST", &[(920_001, 185.0199, -0.4801)]);
    for archive in ["SDSS", "TWOMASS", "FIRST"] {
        fed.portal
            .refresh_table_versions(archive)
            .expect("archives stay reachable");
    }
}

#[test]
fn repeat_query_is_served_from_cache_without_chain_steps() {
    let fed = fed(4, 1, MatchKernel::default(), ChainMode::Recursive);
    let sql = sweep_query(false);
    let (first, _) = fed.portal.submit(&sql).unwrap();
    let before = total_executed_steps(&fed);
    assert!(before > 0, "the cold run executes the chain");

    let (second, trace) = fed.portal.submit(&sql).unwrap();
    assert_eq!(first, second, "a hit must serve the same bytes");
    assert_eq!(
        total_executed_steps(&fed),
        before,
        "a cache hit must not execute any chain step"
    );
    assert!(
        trace.events().iter().any(|e| e.action == "cache hit"),
        "the trace must show the hit"
    );
    let (counters, live) = fed.portal.cache_report();
    assert_eq!(counters.hits, 1);
    assert_eq!(counters.misses, 1);
    assert_eq!(live, 1);
}

#[test]
fn distinct_queries_occupy_distinct_entries() {
    let fed = fed(4, 1, MatchKernel::default(), ChainMode::Recursive);
    fed.portal.submit(&sweep_query(false)).unwrap();
    fed.portal.submit(&sweep_query(true)).unwrap();
    let (counters, live) = fed.portal.cache_report();
    assert_eq!(counters.misses, 2, "different semantics, different keys");
    assert_eq!(live, 2);

    // Both repeat submissions hit.
    fed.portal.submit(&sweep_query(false)).unwrap();
    fed.portal.submit(&sweep_query(true)).unwrap();
    assert_eq!(fed.portal.cache_report().0.hits, 2);
}

#[test]
fn expired_lease_forces_a_clean_cold_rerun() {
    let fed = FederationBuilder::new()
        .catalog(CatalogParams {
            count: 140,
            ..CatalogParams::default()
        })
        .survey(SurveyParams::sdss_like())
        .survey(SurveyParams::twomass_like())
        .config(FederationConfig {
            result_cache_capacity: 4,
            result_cache_ttl_s: 60.0,
            ..FederationConfig::default()
        })
        .build();
    let sql = QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
        ],
        threshold: 4.0,
        area: None,
        polygon: None,
        predicates: vec![],
        select: vec![],
    }
    .to_sql();

    let (first, _) = fed.portal.submit(&sql).unwrap();
    let before = total_executed_steps(&fed);

    // Let the entry's lease lapse; the sweep must reclaim it and the
    // re-submission must run the chain again rather than serve a set
    // whose lease expired.
    fed.net.advance_clock(120.0);
    let (second, trace) = fed.portal.submit(&sql).unwrap();
    assert_eq!(first, second);
    assert!(
        total_executed_steps(&fed) > before,
        "an expired entry must not short-circuit the chain"
    );
    assert!(trace.events().iter().all(|e| e.action != "cache hit"));
    let (counters, _) = fed.portal.cache_report();
    assert_eq!(counters.hits, 0);
    assert_eq!(counters.misses, 2);
    assert!(counters.evictions >= 1, "the sweep tallies the expiry");
}

#[test]
fn incremental_repair_probes_deltas_without_rerunning_the_chain_cold() {
    let cached = fed(4, 1, MatchKernel::default(), ChainMode::Recursive);
    let cold = fed(0, 1, MatchKernel::default(), ChainMode::Recursive);
    let sql = sweep_query(true);
    let (a, _) = cached.portal.submit(&sql).unwrap();
    let (b, _) = cold.portal.submit(&sql).unwrap();
    assert_eq!(a, b, "the caching walk must not change the result");

    grow_archives(&cached);
    grow_archives(&cold);
    let (repaired, trace) = cached.portal.submit(&sql).unwrap();
    let (rerun, _) = cold.portal.submit(&sql).unwrap();
    assert_eq!(
        repaired, rerun,
        "repair must be byte-identical to a cold run over the grown archives"
    );
    assert!(
        trace.events().iter().any(|e| e.action == "cache repair"),
        "the stale entry must be repaired, not discarded"
    );
    let (counters, _) = cached.portal.cache_report();
    assert_eq!(counters.repairs, 1);

    // The repaired entry validates as a plain hit on the next round.
    let before = total_executed_steps(&cached);
    let (again, _) = cached.portal.submit(&sql).unwrap();
    assert_eq!(again, rerun);
    assert_eq!(total_executed_steps(&cached), before);
    assert_eq!(cached.portal.cache_report().0.hits, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The identity sweep: across kernels, chain modes, shard counts,
    /// and drop-out shapes, a cache-enabled federation must return the
    /// same bytes as a cache-disabled twin — on the populating run, on
    /// the repeat (hit or repair) run, and after the archives grow.
    #[test]
    fn cached_and_repaired_results_match_cold_execution(
        kernel_ix in 0usize..3,
        mode_ix in 0usize..2,
        shards in 1usize..3,
        dropout in any::<bool>(),
    ) {
        let kernel = [MatchKernel::Columnar, MatchKernel::Htm, MatchKernel::Batch][kernel_ix];
        let mode = [ChainMode::Recursive, ChainMode::Checkpointed][mode_ix];
        let cached = fed(4, shards, kernel, mode);
        let cold = fed(0, shards, kernel, mode);
        let sql = sweep_query(dropout);

        let (a1, _) = cached.portal.submit(&sql).unwrap();
        let (b1, _) = cold.portal.submit(&sql).unwrap();
        prop_assert_eq!(&a1, &b1, "populating walk diverged from direct execution");

        let (a2, trace) = cached.portal.submit(&sql).unwrap();
        prop_assert_eq!(&a2, &b1, "cache hit diverged from the cold result");
        prop_assert!(trace.events().iter().any(|e| e.action == "cache hit"));

        if shards == 1 {
            // Grow every archive identically in both federations: the
            // cached side must repair incrementally and still match the
            // cold side's full re-run.
            grow_archives(&cached);
            grow_archives(&cold);
            let (a3, trace) = cached.portal.submit(&sql).unwrap();
            let (b3, _) = cold.portal.submit(&sql).unwrap();
            prop_assert_eq!(&a3, &b3, "incremental repair diverged from a cold run");
            prop_assert!(
                trace.events().iter().any(|e| e.action == "cache repair"),
                "unsharded monotone growth must take the repair path"
            );
        }
    }
}

/// Satellite regression: best-effort cleanup RPC failures during a
/// checkpointed walk (checkpoint release at finish, lease renewal
/// during a re-plan) must be tallied in the network metrics and leave
/// evidence in the trace — not vanish into `let _ =`.
#[test]
fn failed_cleanup_rpcs_are_tallied_not_swallowed() {
    let fed = FederationBuilder::new()
        .catalog(CatalogParams {
            count: 200,
            ..CatalogParams::default()
        })
        .survey(SurveyParams::sdss_like())
        .survey(SurveyParams::twomass_like())
        .survey(SurveyParams::first_like())
        .config(FederationConfig {
            chain_mode: ChainMode::Checkpointed,
            ..FederationConfig::default()
        })
        .build();

    // TWOMASS refuses one retry budget's worth of step calls — forcing
    // the walk to mark it unhealthy, re-plan, and renew the last good
    // checkpoint's lease — while every renewal and release RPC to the
    // seed and mid-chain hosts is refused outright.
    let attempts = RetryPolicy::default().max_attempts;
    let mut faults = FaultPlan::new().rule(
        FaultRule::new(FaultKind::HostDown)
            .host(TWOMASS_HOST)
            .action("ExecuteStep")
            .times(attempts),
    );
    for host in [SDSS_HOST, TWOMASS_HOST, "first.skyquery.net"] {
        faults = faults
            .rule(
                FaultRule::new(FaultKind::HostDown)
                    .host(host)
                    .action("RenewLease"),
            )
            .rule(
                FaultRule::new(FaultKind::HostDown)
                    .host(host)
                    .action("ReleaseCheckpoint"),
            );
    }
    fed.net.install_faults(faults);

    let (_, trace) = fed
        .portal
        .submit(
            "SELECT O.object_id, T.object_id, P.object_id \
             FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
             WHERE XMATCH(O, T, P) < 3.5 \
             ORDER BY O.object_id, T.object_id, P.object_id",
        )
        .expect("cleanup failures must not fail the walk");

    let m = fed.net.metrics();
    assert!(
        m.release_failures() > 0,
        "failed checkpoint releases must be counted"
    );
    assert!(
        m.renew_failures() > 0,
        "failed lease renewals must be counted"
    );
    assert!(
        trace.events().iter().any(|e| e.action == "release failed"),
        "release failures must surface in the trace"
    );
    assert!(
        trace.events().iter().any(|e| e.action == "renew failed"),
        "renew failures must surface in the trace"
    );
}

/// Satellite: malformed response bodies on the `DeltaStep` path —
/// truncated and garbage alike — exhaust the repair probes' retry
/// budget; the stale entry is evicted and the chain re-runs cold rather
/// than splicing a poisoned delta. The answer stays byte-identical to a
/// clean federation grown the same way.
#[test]
fn malformed_delta_bodies_fall_back_to_a_cold_run_not_a_poisoned_splice() {
    for kind in [FaultKind::TruncateBody, FaultKind::GarbageBody] {
        let cached = fed(4, 1, MatchKernel::default(), ChainMode::Recursive);
        let cold = fed(0, 1, MatchKernel::default(), ChainMode::Recursive);
        let sql = sweep_query(true);
        cached.portal.submit(&sql).unwrap();
        cold.portal.submit(&sql).unwrap();

        grow_archives(&cached);
        grow_archives(&cold);
        // Every DeltaStep reply from SDSS arrives malformed: each repair
        // probe retries, gives up, and the repair as a whole must abort.
        cached.net.install_faults(
            FaultPlan::new().rule(
                FaultRule::new(kind)
                    .host(SDSS_HOST)
                    .action("DeltaStep")
                    .times(1000),
            ),
        );
        let (repaired, trace) = cached.portal.submit(&sql).unwrap();
        let (rerun, _) = cold.portal.submit(&sql).unwrap();
        assert_eq!(
            repaired, rerun,
            "{kind:?}: fallback run diverged from the clean cold run"
        );
        assert!(
            trace.events().iter().any(
                |e| e.action == "cache evict" && e.detail.contains("incremental repair failed")
            ),
            "{kind:?}: the poisoned repair must be abandoned, not spliced"
        );
        assert!(
            cached.net.metrics().retry_total().retries > 0,
            "{kind:?}: the retry budget runs before the fallback"
        );
    }
}
