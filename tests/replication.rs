//! Replicated shard groups: R identical nodes per zone extent, with
//! replica-aware scatter. The invariants under test:
//!
//! * `Portal::shards_of` orders a replicated group deterministically by
//!   `(extent, host)` — primaries first within each extent run — and the
//!   ordering is pinned so plans and failover picks stay reproducible;
//! * a healthy replicated federation answers *byte-identical* to the
//!   unreplicated one, in both chain modes;
//! * killing one replica per extent mid-scatter fails over to the
//!   surviving siblings and still renders the unreplicated bytes, with
//!   nonzero failover counters and no leaked leases (the chaos soak;
//!   extra seeds via `SKYQUERY_SOAK_SEEDS=1,2,3`);
//! * with *every* replica of a group dead, the step defers (mandatory)
//!   or the archive is dropped (drop-out) — and a dropped archive is
//!   honestly flagged on the result header, visible to SOAP clients;
//! * a straggling replica past the hedge delay races a duplicate probe
//!   against its sibling, first response wins, and the loser's rows
//!   never reach the merge;
//! * truncated and garbage response bodies on the `ScatterStep` and
//!   `DeltaStep` paths exhaust their retry budget and then fail over
//!   (or fall back to a cold run) — they never poison the merge.

use skyquery_core::{ChainMode, FederationConfig};
use skyquery_net::{FaultKind, FaultPlan, FaultRule};
use skyquery_sim::{CatalogParams, FederationBuilder, QuerySpec, SurveyParams, TestFederation};

/// A three-archive federation over the paper's equatorial field, split
/// into `shards` zone shards with `replicas` identical nodes per extent.
fn builder(
    shards: usize,
    replicas: usize,
    seed: u64,
    config: FederationConfig,
) -> FederationBuilder {
    FederationBuilder::new()
        .catalog(CatalogParams {
            count: 180,
            seed,
            center_ra_deg: 185.0,
            center_dec_deg: -0.5,
            radius_deg: 1.5,
            ..CatalogParams::default()
        })
        .survey(SurveyParams::sdss_like())
        .survey(SurveyParams::twomass_like())
        .survey(SurveyParams::first_like())
        .config(config)
        .shards(shards)
        .replicas(replicas)
}

fn fed(shards: usize, replicas: usize, seed: u64, config: FederationConfig) -> TestFederation {
    builder(shards, replicas, seed, config).build()
}

/// Three-way cross-match with a total ORDER BY; `dropout` demotes FIRST
/// to an optional filter so degradation semantics are reachable.
fn sweep_query(dropout: bool) -> String {
    QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
            ("FIRST".into(), "Primary_Object".into(), "P".into(), dropout),
        ],
        threshold: 4.0,
        area: None,
        polygon: None,
        predicates: vec![],
        select: vec![],
    }
    .to_sql()
}

/// A fault plan killing the *primary* replica of every extent of every
/// archive, scoped to `ScatterStep` so registration, performance
/// queries, and checkpoint traffic stay clean.
fn kill_primaries(shards: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for archive in ["sdss", "twomass", "first"] {
        for s in 0..shards {
            plan = plan.rule(
                FaultRule::new(FaultKind::HostDown)
                    .host(format!("{archive}-s{s}.skyquery.net"))
                    .action("ScatterStep")
                    .times(1000),
            );
        }
    }
    plan
}

/// Sums one named counter out of the merged per-step statistics rendered
/// into "cross match step" trace lines (e.g. `"failovers "`,
/// `"hedge wins "`). The counter list keeps `shards pruned` last, so
/// every label is followed by its integer.
fn trace_counter(trace: &skyquery_core::ExecutionTrace, label: &str) -> usize {
    trace
        .events()
        .iter()
        .filter(|e| e.action == "cross match step")
        .filter_map(|e| e.detail.split(label).nth(1))
        .filter_map(|tail| {
            tail.split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|n| n.parse::<usize>().ok())
        })
        .sum()
}

/// Satellite: the replica-group catalog order is deterministic — sorted
/// by `(extent, host)`, primaries adjacent to their `r`-suffixed
/// siblings — and pinned, so scatter fan-out and failover candidate
/// order cannot drift between runs.
#[test]
fn shards_of_ordering_is_pinned_by_extent_then_host() {
    let fed = fed(2, 2, 7, FederationConfig::default());
    let hosts: Vec<String> = fed
        .portal
        .shards_of("SDSS")
        .iter()
        .map(|n| n.url.host.clone())
        .collect();
    assert_eq!(
        hosts,
        vec![
            "sdss-s0.skyquery.net",
            "sdss-s0r1.skyquery.net",
            "sdss-s1.skyquery.net",
            "sdss-s1r1.skyquery.net",
        ],
        "replica catalog order must stay (extent, host)"
    );
    // Extents never decrease, and same-extent runs are adjacent.
    let group = fed.portal.shards_of("SDSS");
    for pair in group.windows(2) {
        assert!(
            pair[0].extent().dec_lo_deg <= pair[1].extent().dec_lo_deg,
            "extent order regressed"
        );
    }
    assert_eq!(group[0].extent(), group[1].extent());
    assert_eq!(group[2].extent(), group[3].extent());
    // Determinism: a second query answers the identical sequence.
    let again: Vec<String> = fed
        .portal
        .shards_of("SDSS")
        .iter()
        .map(|n| n.url.host.clone())
        .collect();
    assert_eq!(hosts, again);
}

/// A healthy replicated federation is a pure redundancy change: the
/// answer bytes match the unreplicated run across shard counts and
/// chain modes, and no failover or hedge ever fires.
#[test]
fn healthy_replicated_results_are_byte_identical() {
    for mode in [ChainMode::Recursive, ChainMode::Checkpointed] {
        for shards in [1usize, 2] {
            let config = FederationConfig {
                chain_mode: mode,
                ..FederationConfig::default()
            };
            let sql = sweep_query(false);
            let baseline = fed(shards, 1, 11, config);
            let (want, _) = baseline.portal.submit(&sql).unwrap();
            let replicated = fed(shards, 2, 11, config);
            let (got, trace) = replicated.portal.submit(&sql).unwrap();
            assert_eq!(
                got.to_ascii(),
                want.to_ascii(),
                "{mode:?}/{shards} shards: replication changed the bytes"
            );
            assert!(!got.degraded, "healthy run must not be flagged partial");
            assert_eq!(trace_counter(&trace, "failovers "), 0);
            assert_eq!(trace_counter(&trace, "hedges "), 0);
        }
    }
}

/// The fixed-seed chaos soak: R=2 with the primary replica of *every*
/// extent killed mid-scatter. Each extent fails over to its surviving
/// sibling — same data, same bytes as the unreplicated healthy run —
/// with nonzero failover counters on both the metrics bus and the
/// per-step statistics, and every node's lease table drained to zero.
fn failover_soak(seed: u64) {
    for mode in [ChainMode::Recursive, ChainMode::Checkpointed] {
        let config = FederationConfig {
            chain_mode: mode,
            ..FederationConfig::default()
        };
        let sql = sweep_query(false);
        let clean = fed(2, 1, seed, config);
        let (want, _) = clean.portal.submit(&sql).unwrap();
        assert!(want.row_count() > 0, "soak query must match something");

        let faulted = builder(2, 2, seed, config)
            .faults(kill_primaries(2))
            .build();
        let (got, trace) = faulted.portal.submit(&sql).unwrap();
        assert_eq!(
            got.to_ascii(),
            want.to_ascii(),
            "{mode:?} seed {seed}: failed-over bytes differ"
        );
        assert!(!got.degraded, "every extent was answered by a sibling");
        assert!(
            trace_counter(&trace, "failovers ") > 0,
            "{mode:?} seed {seed}: no failover recorded in step stats"
        );
        assert!(
            faulted.net.metrics().node_event_total("failover") > 0,
            "{mode:?} seed {seed}: no failover event on the metrics bus"
        );
        // Scatter-gather keeps its state in the Portal: no node-side
        // lease survives the query, on primaries or replicas.
        for node in &faulted.nodes {
            assert_eq!(
                node.active_leases(),
                0,
                "{} leaked a lease",
                node.url().host
            );
        }
    }
}

#[test]
fn replica_failover_chaos_soak() {
    failover_soak(42);
}

/// Extra soak schedules via `SKYQUERY_SOAK_SEEDS=1,2,3`.
#[test]
fn replica_failover_chaos_soak_env_seeds() {
    let Ok(seeds) = std::env::var("SKYQUERY_SOAK_SEEDS") else {
        return;
    };
    for s in seeds.split(',').filter(|s| !s.trim().is_empty()) {
        let seed: u64 = s
            .trim()
            .parse()
            .expect("SKYQUERY_SOAK_SEEDS entries are u64");
        failover_soak(seed);
    }
}

/// A whole replica group transiently dark (both siblings down for one
/// call's retry budget each): failover exhausts the group, the
/// checkpointed driver defers the step, and the retry after re-planning
/// lands on a healed group — identical bytes, no degradation.
#[test]
fn group_outage_defers_then_recovers_through_failover() {
    let config = FederationConfig {
        chain_mode: ChainMode::Checkpointed,
        ..FederationConfig::default()
    };
    let sql = sweep_query(false);
    let clean = fed(2, 2, 13, config);
    let (want, _) = clean.portal.submit(&sql).unwrap();

    let mut plan = FaultPlan::new();
    for host in ["twomass-s1.skyquery.net", "twomass-s1r1.skyquery.net"] {
        plan = plan.rule(
            FaultRule::new(FaultKind::HostDown)
                .host(host)
                .action("ScatterStep")
                .times(3),
        );
    }
    let faulted = builder(2, 2, 13, config).faults(plan).build();
    let (got, trace) = faulted.portal.submit(&sql).unwrap();
    assert_eq!(got.to_ascii(), want.to_ascii(), "deferred bytes differ");
    assert!(!got.degraded);
    let actions: Vec<&str> = trace.events().iter().map(|e| e.action.as_str()).collect();
    assert!(actions.contains(&"replan"), "no replan event: {actions:?}");
    // The exhausting failover rode the *failed* attempt, whose step
    // statistics were discarded with the error — only the metrics bus
    // remembers it.
    assert!(
        faulted.net.metrics().node_event_total("failover") > 0,
        "the group was exhausted through failover first"
    );
}

/// Partial-result honesty, end to end: a drop-out archive whose entire
/// replica group is dead is dropped from the intersection, the answer
/// is a flagged superset, and a SOAP client polling the Portal's
/// `SkyQuery` service can *detect* the partial answer from the response
/// header — it never has to diff row counts against a healthy run.
#[test]
fn dead_group_degrades_and_clients_can_detect_the_partial_result() {
    let config = FederationConfig {
        chain_mode: ChainMode::Checkpointed,
        ..FederationConfig::default()
    };
    let sql = sweep_query(true);
    let clean = fed(2, 2, 17, config);
    let (want, _) = clean.portal.submit(&sql).unwrap();

    let mut plan = FaultPlan::new();
    for host in [
        "first-s0.skyquery.net",
        "first-s0r1.skyquery.net",
        "first-s1.skyquery.net",
        "first-s1r1.skyquery.net",
    ] {
        plan = plan.rule(
            FaultRule::new(FaultKind::HostDown)
                .host(host)
                .action("ScatterStep")
                .times(1000),
        );
    }
    let faulted = builder(2, 2, 17, config).faults(plan).build();
    let (got, trace) = faulted.portal.submit(&sql).unwrap();
    assert!(
        got.row_count() >= want.row_count(),
        "dropping a filter can only weaken it"
    );
    assert!(got.degraded, "the partial answer must be flagged");
    assert_eq!(got.dropped_archives, vec!["FIRST".to_string()]);
    assert!(
        trace.events().iter().any(|e| e.action == "partial result"),
        "the trace must note the partial result"
    );

    // The same header rides the SOAP wire: a remote client decodes the
    // flag without access to the Portal's internals.
    let rs = faulted
        .client("astronomer.example.org")
        .query(&sql)
        .unwrap()
        .0;
    assert!(rs.degraded, "SOAP clients must see the degraded flag");
    assert_eq!(rs.dropped_archives, vec!["FIRST".to_string()]);
    // Payload equality stays header-blind: the flagged rows compare by
    // columns and tuples only.
    assert_eq!(rs, got);
}

/// Losing *one extent* of a drop-out group (both its replicas) degrades
/// to the answering extents and names the lost shard `archive@host` by
/// its primary — the stable group identity.
#[test]
fn lost_dropout_extent_is_named_by_its_primary() {
    let config = FederationConfig {
        chain_mode: ChainMode::Checkpointed,
        ..FederationConfig::default()
    };
    let sql = sweep_query(true);
    let mut plan = FaultPlan::new();
    for host in ["first-s1.skyquery.net", "first-s1r1.skyquery.net"] {
        plan = plan.rule(
            FaultRule::new(FaultKind::HostDown)
                .host(host)
                .action("ScatterStep")
                .times(1000),
        );
    }
    let faulted = builder(2, 2, 19, config).faults(plan).build();
    let (got, _) = faulted.portal.submit(&sql).unwrap();
    assert!(got.degraded);
    assert_eq!(
        got.dropped_archives,
        vec!["FIRST@first-s1.skyquery.net".to_string()],
        "the dropped shard is identified by its primary host"
    );
}

/// Hedged probes: a primary straggling past the hedge delay races a
/// duplicate probe against its sibling; the sibling's fast answer wins,
/// the straggler is discarded before the gather, and the bytes match
/// the un-hedged run exactly — duplicates never merge.
#[test]
fn hedged_probe_wins_over_straggling_primary() {
    let config = FederationConfig {
        hedge_delay_s: 1.0,
        ..FederationConfig::default()
    };
    let sql = sweep_query(false);
    let clean = fed(1, 2, 23, config);
    let (want, _) = clean.portal.submit(&sql).unwrap();

    let plan = FaultPlan::new().rule(
        FaultRule::new(FaultKind::Latency(5.0))
            .host("sdss.skyquery.net")
            .action("ScatterStep"),
    );
    let slow = builder(1, 2, 23, config).faults(plan).build();
    let (got, trace) = slow.portal.submit(&sql).unwrap();
    assert_eq!(got.to_ascii(), want.to_ascii(), "hedged bytes differ");
    assert!(
        trace_counter(&trace, "hedges ") >= 1,
        "the straggler must trigger a hedge"
    );
    assert!(
        trace_counter(&trace, "hedge wins ") >= 1,
        "the fast sibling must win the race"
    );
    assert!(slow.net.metrics().node_event_total("hedge") >= 1);
    // Hedging is opt-in: the same latency without a hedge delay just
    // waits the straggler out.
    let patient = builder(1, 2, 23, FederationConfig::default())
        .faults(
            FaultPlan::new().rule(
                FaultRule::new(FaultKind::Latency(5.0))
                    .host("sdss.skyquery.net")
                    .action("ScatterStep"),
            ),
        )
        .build();
    let (got, trace) = patient.portal.submit(&sql).unwrap();
    assert_eq!(got.to_ascii(), want.to_ascii());
    assert_eq!(trace_counter(&trace, "hedges "), 0);
}

/// Satellite: malformed response bodies on the `ScatterStep` path —
/// truncated and garbage alike — burn the call's retry budget, surface
/// as an unhealthy verdict, and fail over to the sibling replica. The
/// merge never sees the poisoned replies.
#[test]
fn malformed_scatter_bodies_fail_over_not_poison() {
    for kind in [FaultKind::TruncateBody, FaultKind::GarbageBody] {
        for mode in [ChainMode::Recursive, ChainMode::Checkpointed] {
            let config = FederationConfig {
                chain_mode: mode,
                ..FederationConfig::default()
            };
            let sql = sweep_query(false);
            let clean = fed(2, 2, 29, config);
            let (want, _) = clean.portal.submit(&sql).unwrap();

            let plan = FaultPlan::new().rule(
                FaultRule::new(kind)
                    .host("sdss-s0.skyquery.net")
                    .action("ScatterStep")
                    .times(1000),
            );
            let faulted = builder(2, 2, 29, config).faults(plan).build();
            let (got, trace) = faulted.portal.submit(&sql).unwrap();
            assert_eq!(
                got.to_ascii(),
                want.to_ascii(),
                "{kind:?}/{mode:?}: bytes diverged around the malformed shard"
            );
            assert!(!got.degraded);
            assert!(
                trace_counter(&trace, "failovers ") > 0,
                "{kind:?}/{mode:?}: the malformed shard must fail over"
            );
            assert!(
                faulted.net.metrics().retry_total().retries > 0,
                "{kind:?}/{mode:?}: the retry budget runs before failover"
            );
        }
    }
}
