//! Integration tests for the multi-tenant asynchronous job service.
//!
//! The invariants under test:
//!
//! * a job's fetched result is byte-identical to the same query run
//!   synchronously through the Portal, in both chain modes;
//! * an oversized result paginates through the chunked-transfer
//!   machinery and the pagination sessions drain afterwards;
//! * an admission-control refusal is a deterministic `Client` SOAP fault
//!   the retry policy never re-sends;
//! * quotas admit exactly up to the bound; priorities order jobs within
//!   a tenant but never invert fairness across tenants;
//! * duplicate submissions under one client reference are idempotent;
//! * polling an unknown or swept job answers `LeaseExpired`, and an
//!   unfetched result decays `Succeeded → Expired` at its TTL;
//! * cancelling an in-flight checkpointed chain releases every retained
//!   checkpoint and transfer session immediately — no TTL wait;
//! * the generated WSDL describes every job method.

use std::sync::Arc;

use skyquery_core::{ChainMode, FederationConfig, FederationError, RetryPolicy};
use skyquery_jobs::{JobClient, JobService, JobServiceConfig, JobState, QuotaClass};
use skyquery_sim::{FederationBuilder, TestFederation};
use skyquery_soap::wsdl;
use skyquery_xml::Element;

const JOBS_HOST: &str = "jobs.skyquery.net";

/// Three mandatory archives with a total ORDER BY, so equal match *sets*
/// render to equal bytes regardless of execution order.
fn ordered_three_sql() -> &'static str {
    "SELECT O.object_id, T.object_id, P.object_id \
     FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
     WHERE XMATCH(O, T, P) < 3.5 \
     ORDER BY O.object_id, T.object_id, P.object_id"
}

fn federation(mode: ChainMode) -> TestFederation {
    let fed = FederationBuilder::paper_triple(200).build();
    fed.portal.set_config(FederationConfig {
        chain_mode: mode,
        ..fed.portal.config()
    });
    fed
}

fn job_service(fed: &TestFederation, config: JobServiceConfig) -> Arc<JobService> {
    JobService::start(&fed.net, JOBS_HOST, fed.portal.clone(), config)
}

fn client(fed: &TestFederation, svc: &JobService, name: &str) -> JobClient {
    JobClient::new(&fed.net, name, svc.url())
}

/// Drives the service to quiescence, recording the order in which jobs
/// entered the execution pool.
fn run_recording_admissions(svc: &JobService) -> Vec<u64> {
    let mut order: Vec<u64> = Vec::new();
    for _ in 0..100_000 {
        let progressed = svc.pump();
        for id in svc.running() {
            if !order.contains(&id) {
                order.push(id);
            }
        }
        if !progressed {
            return order;
        }
    }
    panic!("job service failed to quiesce");
}

#[test]
fn fetched_result_is_byte_identical_to_synchronous_portal() {
    for mode in [ChainMode::Recursive, ChainMode::Checkpointed] {
        let fed = federation(mode);
        let (reference, _) = fed.portal.submit(ordered_three_sql()).unwrap();
        let svc = job_service(&fed, JobServiceConfig::default());
        let cli = client(&fed, &svc, "alice-web");

        let id = cli.submit("alice", ordered_three_sql()).unwrap();
        svc.run_until_idle(100_000);

        let status = cli.poll(id).unwrap();
        assert_eq!(status.state, JobState::Succeeded, "mode {mode:?}");
        assert_eq!(status.result_rows, Some(reference.row_count()));
        assert!(status.error.is_none());

        let fetched = cli.fetch(id).unwrap();
        assert_eq!(
            fetched.to_votable("result").to_xml(),
            reference.to_votable("result").to_xml(),
            "mode {mode:?}: async result diverged from synchronous Portal run"
        );
    }
}

#[test]
fn oversized_results_paginate_through_chunked_transfer_and_drain() {
    let fed = federation(ChainMode::Recursive);
    let (reference, _) = fed.portal.submit(ordered_three_sql()).unwrap();
    assert!(
        reference.row_count() > 4,
        "test premise: a multi-row result"
    );
    // Squeeze the federation's message limit under the result VOTable's
    // size, so the job's result cannot ride one SOAP reply. (Not too far
    // under: intermediate partial-set rows are wider than result rows
    // and still must fit one per chunk.)
    let limit = reference.to_votable("result").to_xml().len() * 3 / 4;
    fed.portal.set_config(FederationConfig {
        max_message_bytes: limit,
        ..fed.portal.config()
    });
    let svc = job_service(&fed, JobServiceConfig::default());
    let cli = client(&fed, &svc, "alice-web");

    let id = cli.submit("alice", ordered_three_sql()).unwrap();
    svc.run_until_idle(100_000);
    let status = cli.poll(id).unwrap();
    assert_eq!(
        status.state,
        JobState::Succeeded,
        "job error: {:?}",
        status.error
    );

    let chunks_before = fed.net.metrics().chunk_total().chunks;
    let fetched = cli.fetch(id).unwrap();
    let chunks_after = fed.net.metrics().chunk_total().chunks;

    assert_eq!(
        fetched.to_votable("result").to_xml(),
        reference.to_votable("result").to_xml(),
        "paginated result diverged"
    );
    assert!(
        chunks_after > chunks_before,
        "the fetch should have streamed FetchChunk continuations"
    );
    assert!(
        svc.open_transfers().is_empty(),
        "serving the last chunk must free the pagination session"
    );
}

#[test]
fn queue_full_rejection_is_a_deterministic_client_fault_never_retried() {
    let fed = federation(ChainMode::Recursive);
    let svc = job_service(
        &fed,
        JobServiceConfig {
            tenant_max_queued: 2,
            max_queued: 4,
            ..JobServiceConfig::default()
        },
    );
    // A retry-happy client: the refusal must still surface immediately.
    let cli = client(&fed, &svc, "alice-web").with_retry(RetryPolicy::default());

    cli.submit("alice", ordered_three_sql()).unwrap();
    cli.submit("alice", ordered_three_sql()).unwrap();

    let retries_before = fed.net.metrics().retry_total().retries;
    let err = cli.submit("alice", ordered_three_sql()).unwrap_err();
    let retries_after = fed.net.metrics().retry_total().retries;

    match &err {
        FederationError::Fault(f) => {
            assert_eq!(f.code, "Client", "admission refusal must be a Client fault");
            assert!(
                f.message.contains("rejected") && f.message.contains("alice"),
                "fault names the tenant and the refusal: {}",
                f.message
            );
        }
        other => panic!("expected a SOAP fault, got {other}"),
    }
    assert!(!err.is_retryable(), "a quota refusal is deterministic");
    assert_eq!(
        retries_after, retries_before,
        "the retry policy must not have re-sent the refused submission"
    );
    assert_eq!(fed.net.metrics().job_stats("alice").rejected, 1);

    // The native API surfaces the typed error (the wire flattens it to a
    // fault; in-process callers keep the structure).
    match svc.submit("alice", ordered_three_sql(), 0, QuotaClass::Free, None) {
        Err(FederationError::JobRejected { tenant, .. }) => assert_eq!(tenant, "alice"),
        other => panic!("expected JobRejected, got {other:?}"),
    }
}

#[test]
fn quota_exactly_reached_admits_the_bound_and_not_one_more() {
    let fed = federation(ChainMode::Checkpointed);
    let svc = job_service(
        &fed,
        JobServiceConfig {
            max_running: 4,
            tenant_max_running: 1,
            tenant_max_queued: 2,
            ..JobServiceConfig::default()
        },
    );
    let cli = client(&fed, &svc, "alice-web");

    // Exactly at the queue bound: both accepted.
    let a = cli.submit("alice", ordered_three_sql()).unwrap();
    let b = cli.submit("alice", ordered_three_sql()).unwrap();

    // One pump admits: the concurrent-chain cap (1) holds the second job
    // back even though the pool (4) has room.
    svc.pump();
    assert_eq!(svc.running().len(), 1, "tenant_max_running caps the pool");
    assert_eq!(svc.queued().len(), 1);

    svc.run_until_idle(100_000);
    for id in [a, b] {
        assert_eq!(cli.poll(id).unwrap().state, JobState::Succeeded);
    }
}

#[test]
fn priorities_order_within_a_tenant_but_never_across_tenants() {
    let fed = federation(ChainMode::Recursive);
    let svc = job_service(
        &fed,
        JobServiceConfig {
            max_running: 1,
            tenant_max_running: 1,
            ..JobServiceConfig::default()
        },
    );
    let cli = client(&fed, &svc, "web");

    // Alice floods first with a high- and a low-priority job; Bob's
    // single low-priority job arrives last. Equal weights.
    let (a_high, _) = cli
        .submit_with("alice", ordered_three_sql(), 5, QuotaClass::Standard, None)
        .unwrap();
    let (a_low, _) = cli
        .submit_with("alice", ordered_three_sql(), 1, QuotaClass::Standard, None)
        .unwrap();
    let (b_low, _) = cli
        .submit_with("bob", ordered_three_sql(), 0, QuotaClass::Standard, None)
        .unwrap();

    let order = run_recording_admissions(&svc);
    // Within alice: the high-priority job runs before the low one.
    // Across tenants: bob's job is NOT starved behind alice's whole
    // backlog — fair queuing interleaves him after alice's first win,
    // despite every alice job outranking his on raw priority.
    assert_eq!(
        order,
        vec![a_high, b_low, a_low],
        "expected within-tenant priority order and cross-tenant fairness"
    );
    for id in [a_high, a_low, b_low] {
        assert_eq!(cli.poll(id).unwrap().state, JobState::Succeeded);
    }
}

#[test]
fn duplicate_submissions_under_one_client_ref_are_idempotent() {
    let fed = federation(ChainMode::Recursive);
    let svc = job_service(&fed, JobServiceConfig::default());
    let cli = client(&fed, &svc, "alice-web");

    let (first, dup) = cli
        .submit_with(
            "alice",
            ordered_three_sql(),
            0,
            QuotaClass::Standard,
            Some("req-42"),
        )
        .unwrap();
    assert!(!dup);
    let (second, dup) = cli
        .submit_with(
            "alice",
            ordered_three_sql(),
            0,
            QuotaClass::Standard,
            Some("req-42"),
        )
        .unwrap();
    assert!(dup, "the second submission must be flagged as a duplicate");
    assert_eq!(first, second);
    assert_eq!(svc.job_states().len(), 1, "no second job was queued");

    // Idempotency holds across the job's whole record lifetime: even
    // after it finishes, the same reference answers the same id.
    svc.run_until_idle(100_000);
    let (third, dup) = cli
        .submit_with(
            "alice",
            ordered_three_sql(),
            0,
            QuotaClass::Standard,
            Some("req-42"),
        )
        .unwrap();
    assert!(dup);
    assert_eq!(first, third);

    // A different tenant's identical reference is a different job.
    let (other, dup) = cli
        .submit_with(
            "bob",
            ordered_three_sql(),
            0,
            QuotaClass::Standard,
            Some("req-42"),
        )
        .unwrap();
    assert!(!dup);
    assert_ne!(first, other);
}

#[test]
fn unknown_and_swept_jobs_answer_lease_expired() {
    let fed = federation(ChainMode::Recursive);
    let svc = job_service(
        &fed,
        JobServiceConfig {
            result_ttl_s: 30.0,
            record_ttl_s: 120.0,
            ..JobServiceConfig::default()
        },
    );
    let cli = client(&fed, &svc, "alice-web");

    // Unknown id: a deterministic Client fault naming the job lease.
    match cli.poll(999).unwrap_err() {
        FederationError::Fault(f) => {
            assert_eq!(f.code, "Client");
            assert!(f.message.contains("job"), "fault: {}", f.message);
        }
        other => panic!("expected a fault, got {other}"),
    }
    match svc.poll(999) {
        Err(FederationError::LeaseExpired { kind, id, .. }) => {
            assert_eq!(kind, "job");
            assert_eq!(id, 999);
        }
        other => panic!("expected LeaseExpired, got {other:?}"),
    }

    // An unfetched result decays Succeeded → Expired at its TTL...
    let id = cli.submit("alice", ordered_three_sql()).unwrap();
    svc.run_until_idle(100_000);
    assert_eq!(cli.poll(id).unwrap().state, JobState::Succeeded);
    fed.net.advance_clock(31.0);
    let status = cli.poll(id).unwrap();
    assert_eq!(status.state, JobState::Expired);
    assert!(status.result_rows.is_none(), "reclaimed rows are gone");
    assert!(svc.held_results().is_empty());
    assert_eq!(fed.net.metrics().job_stats("alice").expired, 1);
    assert_eq!(
        fed.net.metrics().job_stats("alice").succeeded,
        0,
        "expiry reclassifies the terminal outcome, not double-counts it"
    );
    match cli.fetch(id).unwrap_err() {
        FederationError::Fault(f) => {
            assert!(f.message.contains("result"), "fault: {}", f.message)
        }
        other => panic!("expected a fault, got {other}"),
    }

    // ...and once the record lease lapses too, the job id itself is gone.
    fed.net.advance_clock(120.0);
    match svc.poll(id) {
        Err(FederationError::LeaseExpired { kind, .. }) => assert_eq!(kind, "job"),
        other => panic!("expected LeaseExpired, got {other:?}"),
    }
    assert_eq!(svc.active_leases(), 0, "everything drained");
}

#[test]
fn cancelling_an_inflight_chain_releases_checkpoints_immediately() {
    let fed = federation(ChainMode::Checkpointed);
    let svc = job_service(&fed, JobServiceConfig::default());
    let cli = client(&fed, &svc, "alice-web");

    let id = cli.submit("alice", ordered_three_sql()).unwrap();
    // Admit, plan, then execute the first chain step — the walk now
    // retains a checkpoint on some archive.
    svc.pump();
    svc.pump();
    svc.pump();
    assert_eq!(cli.poll(id).unwrap().state, JobState::Running);
    let retained: usize = fed.nodes.iter().map(|n| n.checkpoints().len()).sum();
    assert!(retained > 0, "test premise: the walk holds a checkpoint");

    assert!(cli.cancel(id).unwrap());

    // Immediately — no clock advance, no janitor sweep — every archive
    // is clean: the checkpoint release rode the cancellation itself.
    for node in &fed.nodes {
        assert!(
            node.checkpoints().is_empty(),
            "{} still retains checkpoints after cancel",
            node.info().name
        );
        assert!(node.open_transfers().is_empty());
        assert_eq!(node.active_leases(), 0);
    }
    assert!(svc.held_results().is_empty());
    assert!(svc.running().is_empty());
    let status = cli.poll(id).unwrap();
    assert_eq!(status.state, JobState::Cancelled);
    assert_eq!(fed.net.metrics().job_stats("alice").cancelled, 1);

    // Cancelling a terminal job is a no-op answer, not an error.
    assert!(!cli.cancel(id).unwrap());
    // And the pool is free for the next job.
    let id2 = cli.submit("alice", ordered_three_sql()).unwrap();
    svc.run_until_idle(100_000);
    assert_eq!(cli.poll(id2).unwrap().state, JobState::Succeeded);
}

#[test]
fn wsdl_describes_every_job_method() {
    let fed = federation(ChainMode::Recursive);
    let svc = job_service(&fed, JobServiceConfig::default());
    let doc = Element::parse(&svc.wsdl()).unwrap();
    let ops = wsdl::operation_names(&doc).unwrap();
    for method in JobService::service_names() {
        assert!(
            ops.iter().any(|o| o == method),
            "WSDL is missing {method}: {ops:?}"
        );
    }
    assert_eq!(wsdl::endpoint_address(&doc).unwrap(), svc.url().to_string());
}

/// Partial-result honesty on the async path: a job that succeeds around
/// a dead drop-out replica group carries the degraded flag and the
/// dropped archive names on both `PollJob` and `FetchResults`, so an
/// asynchronous client can detect the partial answer without diffing
/// row counts against a reference run.
#[test]
fn degraded_jobs_flag_partial_results_on_poll_and_fetch() {
    use skyquery_net::{FaultKind, FaultPlan, FaultRule};

    let mut plan = FaultPlan::new();
    for host in [
        "first-s0.skyquery.net",
        "first-s0r1.skyquery.net",
        "first-s1.skyquery.net",
        "first-s1r1.skyquery.net",
    ] {
        plan = plan.rule(
            FaultRule::new(FaultKind::HostDown)
                .host(host)
                .action("ScatterStep")
                .times(1000),
        );
    }
    let fed = FederationBuilder::paper_triple(200)
        .shards(2)
        .replicas(2)
        .faults(plan)
        .build();
    fed.portal.set_config(FederationConfig {
        chain_mode: ChainMode::Checkpointed,
        ..fed.portal.config()
    });
    let svc = job_service(&fed, JobServiceConfig::default());
    let cli = client(&fed, &svc, "alice-web");

    let sql = "SELECT O.object_id, T.object_id \
               FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
               WHERE XMATCH(O, T, !P) < 3.5 \
               ORDER BY O.object_id, T.object_id";
    let id = cli.submit("alice", sql).unwrap();
    svc.run_until_idle(100_000);

    let status = cli.poll(id).unwrap();
    assert_eq!(status.state, JobState::Succeeded);
    assert!(status.degraded, "PollJob must carry the degraded flag");
    assert_eq!(status.dropped_archives, vec!["FIRST".to_string()]);

    let fetched = cli.fetch(id).unwrap();
    assert!(
        fetched.degraded,
        "FetchResults must carry the degraded flag"
    );
    assert_eq!(fetched.dropped_archives, vec!["FIRST".to_string()]);
    assert!(fetched.row_count() > 0, "the partial answer still has rows");

    // A healthy job on the same service shape stays unflagged.
    let clean = FederationBuilder::paper_triple(200)
        .shards(2)
        .replicas(2)
        .build();
    clean.portal.set_config(FederationConfig {
        chain_mode: ChainMode::Checkpointed,
        ..clean.portal.config()
    });
    let svc2 = job_service(&clean, JobServiceConfig::default());
    let cli2 = client(&clean, &svc2, "alice-web");
    let id2 = cli2.submit("alice", sql).unwrap();
    svc2.run_until_idle(100_000);
    let st = cli2.poll(id2).unwrap();
    assert_eq!(st.state, JobState::Succeeded);
    assert!(!st.degraded);
    assert!(st.dropped_archives.is_empty());
    assert!(!cli2.fetch(id2).unwrap().degraded);
}
