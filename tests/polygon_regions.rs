//! The §6 polygon extension, end to end: "The AREA clause can also be
//! extended to specify arbitrary polygons rather than just simple
//! circles."

use skyquery_core::Region;
use skyquery_htm::{ConvexPolygon, SkyPoint};
use skyquery_sim::{FederationBuilder, QuerySpec};
use skyquery_storage::Value;

fn polygon_query(vertices: Vec<(f64, f64)>) -> String {
    QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
        ],
        threshold: 3.5,
        area: None,
        polygon: Some(vertices),
        predicates: vec![],
        select: vec![
            "O.object_id".into(),
            "O.ra".into(),
            "O.dec".into(),
            "T.object_id".into(),
        ],
    }
    .to_sql()
}

/// A 0.8° × 0.8° CCW square centered on the synthetic sky.
fn square_vertices() -> Vec<(f64, f64)> {
    vec![(184.6, -0.9), (185.4, -0.9), (185.4, -0.1), (184.6, -0.1)]
}

#[test]
fn polygon_query_end_to_end() {
    let fed = FederationBuilder::paper_triple(1200).build();
    let (result, _) = fed
        .portal
        .submit(&polygon_query(square_vertices()))
        .unwrap();
    assert!(result.row_count() > 0, "square should contain matches");
    // Every returned O position must be inside the polygon.
    let poly = ConvexPolygon::from_radec_deg(&square_vertices()).unwrap();
    for row in &result.rows {
        let ra = row[1].as_f64().unwrap();
        let dec = row[2].as_f64().unwrap();
        assert!(
            poly.contains(SkyPoint::from_radec_deg(ra, dec).to_vec3()),
            "object at ({ra}, {dec}) outside the polygon"
        );
    }
}

#[test]
fn polygon_is_subset_of_circumscribing_circle() {
    let fed = FederationBuilder::paper_triple(1200).build();
    let (poly_result, _) = fed
        .portal
        .submit(&polygon_query(square_vertices()))
        .unwrap();
    // A circle covering the square entirely.
    let circle_sql = QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
        ],
        threshold: 3.5,
        area: Some((185.0, -0.5, 60.0)), // 1° radius ⊇ the 0.8° square
        polygon: None,
        predicates: vec![],
        select: vec![
            "O.object_id".into(),
            "O.ra".into(),
            "O.dec".into(),
            "T.object_id".into(),
        ],
    }
    .to_sql();
    let (circle_result, _) = fed.portal.submit(&circle_sql).unwrap();
    let keys = |rs: &skyquery_core::ResultSet| -> std::collections::HashSet<(u64, u64)> {
        rs.rows
            .iter()
            .map(|r| (r[0].as_id().unwrap(), r[3].as_id().unwrap()))
            .collect()
    };
    let poly_keys = keys(&poly_result);
    let circle_keys = keys(&circle_result);
    assert!(
        poly_keys.is_subset(&circle_keys),
        "polygon matches must be a subset of the covering circle's"
    );
    assert!(
        poly_keys.len() < circle_keys.len(),
        "the square is a strict subset of the circle"
    );
}

#[test]
fn polygon_agrees_with_postfilter_oracle() {
    // Polygon query == whole-sky query filtered by polygon containment
    // (for columns of the seed archive this is exact).
    let fed = FederationBuilder::paper_triple(800).build();
    let poly = ConvexPolygon::from_radec_deg(&square_vertices()).unwrap();

    let (poly_result, _) = fed
        .portal
        .submit(&polygon_query(square_vertices()))
        .unwrap();

    let whole_sql = QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
        ],
        threshold: 3.5,
        area: None,
        polygon: None,
        predicates: vec![],
        select: vec![
            "O.object_id".into(),
            "O.ra".into(),
            "O.dec".into(),
            "T.object_id".into(),
        ],
    }
    .to_sql();
    let (whole, _) = fed.portal.submit(&whole_sql).unwrap();

    // Oracle: keep pairs whose O observation falls inside the polygon AND
    // whose T counterpart also does. We can't see T positions here, so
    // compare against the polygon run restricted to pairs the whole-sky
    // run also found — membership in one direction, counts via O-side.
    let poly_pairs: std::collections::HashSet<(u64, u64)> = poly_result
        .rows
        .iter()
        .map(|r| (r[0].as_id().unwrap(), r[3].as_id().unwrap()))
        .collect();
    let whole_pairs: std::collections::HashSet<(u64, u64)> = whole
        .rows
        .iter()
        .map(|r| (r[0].as_id().unwrap(), r[3].as_id().unwrap()))
        .collect();
    assert!(poly_pairs.is_subset(&whole_pairs));
    // Every whole-sky pair whose O observation is *well inside* the
    // polygon (1 arcmin margin) must appear in the polygon run (the T
    // counterpart is within a few arcsec, so it is inside too).
    let margin = (1.0 / 60.0_f64).to_radians();
    for row in &whole.rows {
        let ra = row[1].as_f64().unwrap();
        let dec = row[2].as_f64().unwrap();
        let p = SkyPoint::from_radec_deg(ra, dec);
        let deep_inside = poly.contains(p.to_vec3())
            && poly
                .edge_normals()
                .iter()
                .all(|n| p.to_vec3().dot(*n).asin() > margin);
        if deep_inside {
            let key = (row[0].as_id().unwrap(), row[3].as_id().unwrap());
            assert!(
                poly_pairs.contains(&key),
                "pair {key:?} deep inside the polygon missing from polygon run"
            );
        }
    }
}

#[test]
fn polygon_chain_equals_pull_baseline() {
    let fed = FederationBuilder::paper_triple(600).build();
    let sql = polygon_query(square_vertices());
    let (chained, _) = fed.portal.submit(&sql).unwrap();
    let pulled = fed.portal.submit_pull_to_portal(&sql).unwrap();
    let key = |rs: &skyquery_core::ResultSet| {
        let mut v: Vec<(u64, u64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].as_id().unwrap(), r[3].as_id().unwrap()))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(key(&chained), key(&pulled));
}

#[test]
fn invalid_polygons_rejected_before_execution() {
    let fed = FederationBuilder::paper_triple(100).build();
    fed.net.reset_metrics();
    // Clockwise winding.
    let cw = polygon_query(vec![
        (184.6, -0.1),
        (185.4, -0.1),
        (185.4, -0.9),
        (184.6, -0.9),
    ]);
    assert!(fed.portal.submit(&cw).is_err());
    // Non-convex.
    let dart = polygon_query(vec![
        (184.0, -1.0),
        (186.0, -1.0),
        (185.0, -0.8),
        (185.0, 1.0),
    ]);
    assert!(fed.portal.submit(&dart).is_err());
    // Too few coordinates is already a parse error.
    assert!(fed
        .portal
        .submit(
            "SELECT O.object_id FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T \
             WHERE POLYGON(1.0, 2.0) AND XMATCH(O, T) < 3.5",
        )
        .is_err());
}

#[test]
fn area_and_polygon_together_rejected() {
    let fed = FederationBuilder::paper_triple(100).build();
    let sql = "SELECT O.object_id FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T \
               WHERE AREA(185.0, -0.5, 30.0) AND POLYGON(184.0, -1.0, 186.0, -1.0, 186.0, 1.0) \
                 AND XMATCH(O, T) < 3.5";
    let err = fed.portal.submit(sql).unwrap_err();
    assert!(err.to_string().contains("more than one"), "{err}");
}

#[test]
fn region_type_consistency() {
    // The Region plumbing: polygon spec → Region → plan element → Region
    // keeps containment identical.
    let poly = ConvexPolygon::from_radec_deg(&square_vertices()).unwrap();
    let region = Region::Polygon(poly);
    let round = Region::from_element(&region.to_element()).unwrap();
    for &(ra, dec) in &[
        (185.0, -0.5),
        (184.61, -0.89),
        (186.0, 0.0),
        (0.0, 0.0),
        (185.0, -0.1001),
    ] {
        let p = SkyPoint::from_radec_deg(ra, dec);
        assert_eq!(region.contains(p), round.contains(p), "({ra}, {dec})");
    }
}

#[test]
fn polygon_results_carry_no_nulls() {
    let fed = FederationBuilder::paper_triple(400).build();
    let (result, _) = fed
        .portal
        .submit(&polygon_query(square_vertices()))
        .unwrap();
    for row in &result.rows {
        for v in row {
            assert!(!matches!(v, Value::Null));
        }
    }
}
