//! Zone-aware streaming chunk transfer: byte-identity parity suite.
//!
//! The pipelined path — zone-boundary chunk splitting on the sender,
//! incremental per-chunk ingest on the receiver — must be a pure
//! transport optimization: for every worker count, zone height, and
//! message budget, query results must be **byte-identical** to a
//! monolithic (unchunked) run, and to the legacy byte-budget chunking
//! the §6 workaround shipped with.

use proptest::prelude::*;
use skyquery_core::{FederationConfig, ResultSet};
use skyquery_sim::{xmatch_query, FederationBuilder, TestFederation};

fn three_archive_sql() -> String {
    xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        3.5,
        None,
    )
}

fn run_with(fed: &TestFederation, sql: &str, config: FederationConfig) -> ResultSet {
    fed.portal.set_config(config);
    let (rs, _) = fed.portal.submit(sql).expect("query succeeds");
    rs
}

/// One federation reused across the sweep (building surveys dominates
/// test time; config is per-submit).
fn federation() -> TestFederation {
    FederationBuilder::paper_triple(500).build()
}

#[test]
fn pipelined_transfer_is_byte_identical_to_monolithic() {
    let fed = federation();
    let sql = three_archive_sql();
    // Reference: monolithic transfer (limit far above any message).
    let reference = run_with(&fed, &sql, FederationConfig::default());
    assert!(reference.row_count() > 0, "sweep needs matches to move");

    for workers in [1usize, 2, 8] {
        for zone_height_deg in [0.05f64, 0.1, 0.5, 5.0] {
            for max_message_bytes in [2_000usize, 20_000, 10_000_000] {
                let rs = run_with(
                    &fed,
                    &sql,
                    FederationConfig {
                        max_message_bytes,
                        chunking: true,
                        zone_chunking: true,
                        xmatch_workers: workers,
                        zone_height_deg,
                        ..FederationConfig::default()
                    },
                );
                assert_eq!(
                    rs, reference,
                    "workers={workers} height={zone_height_deg} budget={max_message_bytes}"
                );
            }
        }
    }
}

#[test]
fn legacy_byte_budget_chunking_still_byte_identical() {
    let fed = federation();
    let sql = three_archive_sql();
    let reference = run_with(&fed, &sql, FederationConfig::default());
    for workers in [1usize, 8] {
        let rs = run_with(
            &fed,
            &sql,
            FederationConfig {
                max_message_bytes: 4_000,
                chunking: true,
                zone_chunking: false, // pre-zone-aware plans
                xmatch_workers: workers,
                ..FederationConfig::default()
            },
        );
        assert_eq!(rs, reference, "legacy path, workers={workers}");
    }
}

#[test]
fn chunk_flow_metrics_record_the_pipelined_transfer() {
    let fed = federation();
    let sql = three_archive_sql();
    fed.portal.set_config(FederationConfig {
        max_message_bytes: 3_000,
        zone_chunking: true,
        ..FederationConfig::default()
    });
    fed.net.reset_metrics();
    fed.portal.submit(&sql).unwrap();
    let flows = fed.net.metrics();
    let total = flows.chunk_total();
    assert!(total.chunks > 1, "tiny budget must force chunked transfers");
    assert!(total.bytes > 0 && total.rows > 0);
    // Chunks flowed along the daisy chain (node→node), not just to the
    // portal: at least one inter-node link carries chunk traffic.
    let node_links = flows
        .chunk_flows()
        .iter()
        .filter(|((from, to), _)| from.contains("skyquery.net") && to.contains("skyquery.net"))
        .count();
    assert!(node_links >= 1, "flows: {:?}", flows.chunk_flows());

    // Monolithic budget: no chunk flows at all.
    fed.portal.set_config(FederationConfig::default());
    fed.net.reset_metrics();
    fed.portal.submit(&sql).unwrap();
    assert_eq!(fed.net.metrics().chunk_total().chunks, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized corner of the sweep: any (budget, height, workers)
    /// combination stays byte-identical to the monolithic reference.
    #[test]
    fn pipelined_parity_holds_for_random_configs(
        max_message_bytes in 1_500usize..60_000,
        zone_height_deg in 0.02f64..10.0,
        workers in 1usize..8,
        zone_chunking in any::<bool>(),
    ) {
        let fed = FederationBuilder::paper_triple(180).build();
        let sql = three_archive_sql();
        let reference = run_with(&fed, &sql, FederationConfig::default());
        let rs = run_with(&fed, &sql, FederationConfig {
            max_message_bytes,
            chunking: true,
            zone_chunking,
            xmatch_workers: workers,
            zone_height_deg,
            ..FederationConfig::default()
        });
        prop_assert_eq!(rs, reference);
    }
}
