//! Repro: attacker-controlled plan length drives unbounded recursion.

use skyquery_core::skynode::send_rpc;
use skyquery_core::{ExecutionPlan, PlanStep};
use skyquery_sim::FederationBuilder;
use skyquery_soap::{RpcCall, SoapValue};

#[test]
fn malicious_long_plan_overflows_stack() {
    let fed = FederationBuilder::paper_triple(10).build();
    let node = fed.node("SDSS").unwrap();
    let n = 50_000usize;
    let step = |_i: usize| PlanStep {
        alias: "O".into(),
        archive: "SDSS".into(),
        table: "Photo_Object".into(),
        url: node.url(),
        dropout: false,
        sigma_arcsec: 0.1,
        local_sql: None,
        carried: vec!["object_id".into()],
        residual_sql: vec![],
        count_estimate: None,
        shards: vec![],
    };
    let plan = ExecutionPlan {
        threshold: 3.0,
        region: None,
        steps: (0..n).map(step).collect(),
        select: vec![("O.object_id".into(), None)],
        order_by: vec![],
        limit: None,
        max_message_bytes: usize::MAX / 2,
        chunking: true,
        xmatch_workers: 1,
        zone_height_deg: skyquery_core::plan::DEFAULT_ZONE_HEIGHT_DEG,
        zone_chunking: true,
        kernel: Default::default(),
        retry: Default::default(),
        lease_ttl_s: skyquery_core::plan::DEFAULT_LEASE_TTL_S,
    };
    let res = send_rpc(
        &fed.net,
        "attacker",
        &node.url(),
        &RpcCall::new("CrossMatch")
            .param("plan", SoapValue::Xml(plan.to_element()))
            .param("step", SoapValue::Int(0)),
    );
    eprintln!("survived: {:?}", res.map(|_| ()).err());
}
