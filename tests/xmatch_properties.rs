//! Property tests for the distributed cross-match: against randomized
//! skies, the chained, pruned, HTM-backed evaluation must agree exactly
//! with the exhaustive centralized oracle, and the likelihood math must
//! respect its invariants.

use proptest::prelude::*;
use skyquery_core::baseline::naive_match;
use skyquery_core::TupleState;
use skyquery_core::{ArchiveInfo, FederationConfig, Portal, SkyNodeBuilder};
use skyquery_htm::{SkyPoint, Vec3};
use skyquery_net::{SimNetwork, Url};
use skyquery_storage::{Database, Value};

const ARCSEC: f64 = 1.0 / 3600.0;

/// Strategy: a cluster field — points scattered within a small window so
/// matches actually occur.
fn field(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec(
        (
            (180.0f64..180.002), // ~7 arcsec window
            (-0.001f64..0.001),
        ),
        0..n,
    )
}

fn build_node(
    net: &SimNetwork,
    portal: &Portal,
    name: &str,
    sigma_arcsec: f64,
    points: &[(f64, f64)],
) {
    let mut db = Database::new(name);
    db.create_table(skyquery_sim::survey::primary_schema("objects", 14))
        .unwrap();
    for (i, &(ra, dec)) in points.iter().enumerate() {
        db.insert(
            "objects",
            vec![
                Value::Id(i as u64 + 1),
                Value::Float(ra),
                Value::Float(dec),
                Value::Text("GALAXY".into()),
                Value::Float(1.0),
            ],
        )
        .unwrap();
    }
    let host = format!("{}.sky", name.to_lowercase());
    SkyNodeBuilder::new(
        ArchiveInfo {
            name: name.into(),
            sigma_arcsec,
            primary_table: "objects".into(),
            htm_depth: 14,
            extent: None,
        },
        db,
    )
    .start(net, host.clone());
    portal.register_node(&Url::new(host, "/soap")).unwrap();
}

fn to_vecs(points: &[(f64, f64)]) -> Vec<Vec3> {
    points
        .iter()
        .map(|&(ra, dec)| SkyPoint::from_radec_deg(ra, dec).to_vec3())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_equals_oracle_two_archives(
        a in field(25),
        b in field(25),
        sigma_a in 0.1f64..1.0,
        sigma_b in 0.1f64..1.0,
        threshold in 1.0f64..6.0,
    ) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let net = SimNetwork::new();
        let portal = Portal::start(&net, "portal", FederationConfig::default());
        build_node(&net, &portal, "A", sigma_a, &a);
        build_node(&net, &portal, "B", sigma_b, &b);
        let sql = format!(
            "SELECT A.object_id, B.object_id FROM A:objects A, B:objects B \
             WHERE XMATCH(A, B) < {threshold:?}"
        );
        let (result, _) = portal.submit(&sql).unwrap();
        let mut distributed: Vec<(u64, u64)> = result
            .rows
            .iter()
            .map(|r| (r[0].as_id().unwrap(), r[1].as_id().unwrap()))
            .collect();
        distributed.sort_unstable();
        let sigmas = [
            (sigma_a * ARCSEC).to_radians(),
            (sigma_b * ARCSEC).to_radians(),
        ];
        let mut oracle: Vec<(u64, u64)> =
            naive_match(&[to_vecs(&a), to_vecs(&b)], &sigmas, threshold)
                .into_iter()
                .map(|idx| (idx[0] as u64 + 1, idx[1] as u64 + 1))
                .collect();
        oracle.sort_unstable();
        prop_assert_eq!(distributed, oracle);
    }

    #[test]
    fn distributed_equals_oracle_three_archives(
        a in field(12),
        b in field(12),
        c in field(12),
        threshold in 1.5f64..5.0,
    ) {
        prop_assume!(!a.is_empty() && !b.is_empty() && !c.is_empty());
        let net = SimNetwork::new();
        let portal = Portal::start(&net, "portal", FederationConfig::default());
        build_node(&net, &portal, "A", 0.3, &a);
        build_node(&net, &portal, "B", 0.5, &b);
        build_node(&net, &portal, "C", 0.4, &c);
        let sql = format!(
            "SELECT A.object_id, B.object_id, C.object_id \
             FROM A:objects A, B:objects B, C:objects C \
             WHERE XMATCH(A, B, C) < {threshold:?}"
        );
        let (result, _) = portal.submit(&sql).unwrap();
        let mut distributed: Vec<(u64, u64, u64)> = result
            .rows
            .iter()
            .map(|r| {
                (
                    r[0].as_id().unwrap(),
                    r[1].as_id().unwrap(),
                    r[2].as_id().unwrap(),
                )
            })
            .collect();
        distributed.sort_unstable();
        let sigmas = [
            (0.3 * ARCSEC).to_radians(),
            (0.5 * ARCSEC).to_radians(),
            (0.4 * ARCSEC).to_radians(),
        ];
        let mut oracle: Vec<(u64, u64, u64)> =
            naive_match(&[to_vecs(&a), to_vecs(&b), to_vecs(&c)], &sigmas, threshold)
                .into_iter()
                .map(|idx| (idx[0] as u64 + 1, idx[1] as u64 + 1, idx[2] as u64 + 1))
                .collect();
        oracle.sort_unstable();
        prop_assert_eq!(distributed, oracle);
    }

    #[test]
    fn dropout_complements_mandatory(
        a in field(12),
        b in field(12),
        c in field(12),
    ) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let net = SimNetwork::new();
        let portal = Portal::start(&net, "portal", FederationConfig::default());
        build_node(&net, &portal, "A", 0.3, &a);
        build_node(&net, &portal, "B", 0.5, &b);
        build_node(&net, &portal, "C", 0.4, &c);
        let pairs = |sql: &str| -> Vec<(u64, u64)> {
            let (r, _) = portal.submit(sql).unwrap();
            let mut v: Vec<(u64, u64)> = r
                .rows
                .iter()
                .map(|row| (row[0].as_id().unwrap(), row[1].as_id().unwrap()))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let base = pairs(
            "SELECT A.object_id, B.object_id FROM A:objects A, B:objects B \
             WHERE XMATCH(A, B) < 3.0",
        );
        let with_c = pairs(
            "SELECT A.object_id, B.object_id FROM A:objects A, B:objects B, C:objects C \
             WHERE XMATCH(A, B, C) < 3.0",
        );
        let without_c = pairs(
            "SELECT A.object_id, B.object_id FROM A:objects A, B:objects B, C:objects C \
             WHERE XMATCH(A, B, !C) < 3.0",
        );
        // Every pair that matches with some C plus every pair that matches
        // with no C must cover the base pair set.
        let mut union = with_c.clone();
        union.extend(without_c.iter().copied());
        union.sort_unstable();
        union.dedup();
        prop_assert_eq!(union, base);
        for p in &with_c {
            prop_assert!(!without_c.contains(p));
        }
    }

    #[test]
    fn chi2_monotone_under_extension(
        points in proptest::collection::vec(((180.0f64..180.001), (-0.0005f64..0.0005)), 2..6),
        sigmas in proptest::collection::vec(0.1f64..1.0, 6),
    ) {
        let mut state: Option<TupleState> = None;
        let mut prev = 0.0;
        for (i, &(ra, dec)) in points.iter().enumerate() {
            let p = SkyPoint::from_radec_deg(ra, dec).to_vec3();
            let s = (sigmas[i % sigmas.len()] * ARCSEC).to_radians();
            state = Some(match state {
                None => TupleState::single(p, s),
                Some(st) => st.extended(p, s),
            });
            let chi2 = state.unwrap().chi2_min();
            // Allow the cancellation noise floor.
            prop_assert!(chi2 + 1e-3 >= prev, "chi2 decreased: {prev} -> {chi2}");
            prev = chi2;
        }
    }

    #[test]
    fn chi2_order_invariant(
        points in proptest::collection::vec(((180.0f64..180.001), (-0.0005f64..0.0005)), 3..6),
    ) {
        let sigma = (0.4 * ARCSEC).to_radians();
        let vecs: Vec<Vec3> = points
            .iter()
            .map(|&(ra, dec)| SkyPoint::from_radec_deg(ra, dec).to_vec3())
            .collect();
        let fwd = vecs
            .iter()
            .skip(1)
            .fold(TupleState::single(vecs[0], sigma), |s, &p| s.extended(p, sigma));
        let rev = vecs
            .iter()
            .rev()
            .skip(1)
            .fold(TupleState::single(*vecs.last().unwrap(), sigma), |s, &p| {
                s.extended(p, sigma)
            });
        prop_assert!((fwd.chi2_min() - rev.chi2_min()).abs() < 1e-3);
    }
}
