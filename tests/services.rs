//! Service-level conversations: the four SkyNode Web services plus WSDL,
//! spoken directly over SOAP/HTTP — the §5.1 contract each autonomous
//! node must honour.

use skyquery_core::meta::catalog_from_element;
use skyquery_core::skynode::send_rpc;
use skyquery_core::ArchiveInfo;
use skyquery_net::HttpRequest;
use skyquery_sim::FederationBuilder;
use skyquery_soap::{wsdl, RpcCall, RpcResponse, SoapValue};
use skyquery_xml::Element;

fn fed() -> skyquery_sim::TestFederation {
    FederationBuilder::paper_triple(200).build()
}

#[test]
fn information_service_returns_survey_constants() {
    let fed = fed();
    let node = fed.node("SDSS").unwrap();
    let resp = send_rpc(&fed.net, "probe", &node.url(), &RpcCall::new("Information")).unwrap();
    let info = ArchiveInfo::from_element(resp.require("info").unwrap().as_xml().unwrap()).unwrap();
    assert_eq!(info.name, "SDSS");
    assert!((info.sigma_arcsec - 0.1).abs() < 1e-12);
    assert_eq!(info.primary_table, "Photo_Object");
}

#[test]
fn metadata_service_describes_full_schema() {
    let fed = fed();
    let node = fed.node("TWOMASS").unwrap();
    let resp = send_rpc(&fed.net, "probe", &node.url(), &RpcCall::new("Metadata")).unwrap();
    let catalog = catalog_from_element(resp.require("catalog").unwrap().as_xml().unwrap()).unwrap();
    assert_eq!(catalog.database, "TWOMASS");
    let table = catalog.table("Photo_Primary").unwrap();
    assert!(table.row_count > 0);
    let names: Vec<&str> = table
        .schema
        .columns
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(names, vec!["object_id", "ra", "dec", "type", "i_flux"]);
    assert!(table.schema.position.is_some());
}

#[test]
fn query_service_answers_projections_and_counts() {
    let fed = fed();
    let node = fed.node("SDSS").unwrap();
    let count_resp = send_rpc(
        &fed.net,
        "probe",
        &node.url(),
        &RpcCall::new("Query").param(
            "sql",
            SoapValue::Str("SELECT count(*) FROM SDSS:Photo_Object O".into()),
        ),
    )
    .unwrap();
    let count = count_resp.require("count").unwrap().as_i64().unwrap();
    assert!(count > 0);

    let rows_resp = send_rpc(
        &fed.net,
        "probe",
        &node.url(),
        &RpcCall::new("Query").param(
            "sql",
            SoapValue::Str(
                "SELECT O.object_id, O.i_flux FROM SDSS:Photo_Object O WHERE O.i_flux > 500".into(),
            ),
        ),
    )
    .unwrap();
    let table = rows_resp.require("rows").unwrap().as_table().unwrap();
    assert!(table.row_count() < count as usize);
}

#[test]
fn unknown_service_faults_with_client_error() {
    let fed = fed();
    let node = fed.node("FIRST").unwrap();
    let err = send_rpc(
        &fed.net,
        "probe",
        &node.url(),
        &RpcCall::new("SelfDestruct"),
    )
    .unwrap_err();
    assert!(err.to_string().contains("unknown service"), "{err}");
}

#[test]
fn malformed_soap_gets_a_fault_not_a_crash() {
    let fed = fed();
    let node = fed.node("SDSS").unwrap();
    let resp = fed
        .net
        .send(
            "probe",
            &node.url(),
            HttpRequest::soap_post("/soap", "urn:garbage", "<not-even-soap"),
        )
        .unwrap();
    assert_eq!(resp.status.code(), 500);
    let parsed = RpcResponse::parse(std::str::from_utf8(&resp.body).unwrap())
        .unwrap()
        .unwrap_err();
    assert_eq!(parsed.code, "Client");
}

#[test]
fn wsdl_describes_all_services_with_endpoint() {
    let fed = fed();
    let node = fed.node("SDSS").unwrap();
    let doc = Element::parse(&node.wsdl()).unwrap();
    let ops = wsdl::operation_names(&doc).unwrap();
    for expected in [
        "Information",
        "Metadata",
        "Query",
        "CrossMatch",
        "FetchChunk",
    ] {
        assert!(ops.contains(&expected.to_string()), "missing {expected}");
    }
    assert_eq!(
        wsdl::endpoint_address(&doc).unwrap(),
        "http://sdss.skyquery.net/soap"
    );
}

#[test]
fn portal_registration_service_round_trip() {
    // Register the same node twice through the SOAP Registration service:
    // idempotent, and the catalog reflects the latest state.
    let fed = fed();
    let node = fed.node("FIRST").unwrap();
    let resp = send_rpc(
        &fed.net,
        node.host(),
        &fed.portal.url(),
        &RpcCall::new("Register").param("url", SoapValue::Str(node.url().to_string())),
    )
    .unwrap();
    assert_eq!(resp.require("archive").unwrap().as_str(), Some("FIRST"));
    assert_eq!(fed.portal.archives().len(), 3);
}

#[test]
fn skyquery_service_faults_on_unregistered_archive() {
    let fed = fed();
    let err = send_rpc(
        &fed.net,
        "client",
        &fed.portal.url(),
        &RpcCall::new("SkyQuery").param(
            "sql",
            SoapValue::Str(
                "SELECT H.x FROM HUBBLE:T H, SDSS:Photo_Object O WHERE XMATCH(H, O) < 3.0".into(),
            ),
        ),
    )
    .unwrap_err();
    assert!(err.to_string().contains("not registered"), "{err}");
}

#[test]
fn cross_match_call_with_bad_step_faults() {
    let fed = fed();
    let node = fed.node("SDSS").unwrap();
    // A plan whose step index is out of range.
    let plan = skyquery_core::ExecutionPlan {
        threshold: 3.0,
        region: None,
        steps: vec![skyquery_core::PlanStep {
            alias: "O".into(),
            archive: "SDSS".into(),
            table: "Photo_Object".into(),
            url: node.url(),
            dropout: false,
            sigma_arcsec: 0.1,
            local_sql: None,
            carried: vec!["object_id".into()],
            residual_sql: vec![],
            count_estimate: None,
            shards: vec![],
        }],
        select: vec![("O.object_id".into(), None)],
        order_by: vec![],
        limit: None,
        max_message_bytes: 10 * 1024 * 1024,
        chunking: true,
        xmatch_workers: 1,
        zone_height_deg: skyquery_core::plan::DEFAULT_ZONE_HEIGHT_DEG,
        zone_chunking: true,
        kernel: Default::default(),
        retry: Default::default(),
        lease_ttl_s: skyquery_core::plan::DEFAULT_LEASE_TTL_S,
    };
    let err = send_rpc(
        &fed.net,
        "probe",
        &node.url(),
        &RpcCall::new("CrossMatch")
            .param("plan", SoapValue::Xml(plan.to_element()))
            .param("step", SoapValue::Int(5)),
    )
    .unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
    // And a plan step addressed to the wrong archive is refused
    // (autonomy check).
    let err = send_rpc(
        &fed.net,
        "probe",
        &fed.node("TWOMASS").unwrap().url(),
        &RpcCall::new("CrossMatch")
            .param("plan", SoapValue::Xml(plan.to_element()))
            .param("step", SoapValue::Int(0)),
    )
    .unwrap_err();
    assert!(err.to_string().contains("this node is TWOMASS"), "{err}");
}

#[test]
fn uddi_discovery_lists_the_federation() {
    let fed = fed();
    let portals = fed.portal.discover("Portal");
    assert_eq!(portals.len(), 1);
    assert_eq!(portals[0].url.host, "portal.skyquery.net");
    let nodes = fed.portal.discover("SkyNode");
    assert_eq!(nodes.len(), 3);
    assert_eq!(nodes[0].provider, "FIRST");
    assert!(nodes.iter().any(|r| r.description.contains("Photo_Object")));
    // Unregistering an archive removes its discovery record.
    fed.portal.unregister("FIRST");
    assert_eq!(fed.portal.discover("SkyNode").len(), 2);
}
