//! The Query service as "a general-purpose database querying service"
//! (§5.1): aggregates, GROUP BY, ORDER BY, LIMIT at a single archive —
//! and ORDER BY / LIMIT applied by the Portal to federated cross-match
//! results.

use skyquery_core::query_exec::{execute_local, LocalQueryResult};
use skyquery_core::skynode::send_rpc;
use skyquery_sim::{FederationBuilder, QuerySpec};
use skyquery_soap::{RpcCall, SoapValue};
use skyquery_sql::parse_query;
use skyquery_storage::{ColumnDef, DataType, Database, TableSchema, Value};

fn stats_db() -> Database {
    let mut db = Database::new("SDSS");
    db.create_table(TableSchema::new(
        "obj",
        vec![
            ColumnDef::new("id", DataType::Id),
            ColumnDef::new("type", DataType::Text),
            ColumnDef::new("flux", DataType::Float).nullable(),
        ],
    ))
    .unwrap();
    let rows = [
        (1u64, "GALAXY", Some(10.0)),
        (2, "GALAXY", Some(30.0)),
        (3, "STAR", Some(5.0)),
        (4, "STAR", None),
        (5, "QSO", Some(100.0)),
    ];
    for (id, ty, flux) in rows {
        db.insert(
            "obj",
            vec![
                Value::Id(id),
                Value::Text(ty.into()),
                flux.map(Value::Float).unwrap_or(Value::Null),
            ],
        )
        .unwrap();
    }
    db
}

fn rows_of(db: &mut Database, sql: &str) -> skyquery_core::ResultSet {
    match execute_local(db, "SDSS", &parse_query(sql).unwrap()).unwrap() {
        LocalQueryResult::Rows(rs) => rs,
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn whole_table_aggregates() {
    let mut db = stats_db();
    let rs = rows_of(
        &mut db,
        "SELECT count(O.flux), min(O.flux), max(O.flux), sum(O.flux), avg(O.flux) \
         FROM SDSS:obj O",
    );
    assert_eq!(rs.row_count(), 1);
    // count skips the NULL flux.
    assert_eq!(rs.rows[0][0], Value::Int(4));
    assert_eq!(rs.rows[0][1], Value::Float(5.0));
    assert_eq!(rs.rows[0][2], Value::Float(100.0));
    assert_eq!(rs.rows[0][3], Value::Float(145.0));
    assert_eq!(rs.rows[0][4], Value::Float(145.0 / 4.0));
}

#[test]
fn aggregates_over_empty_input() {
    let mut db = stats_db();
    let rs = rows_of(
        &mut db,
        "SELECT count(O.flux), min(O.flux), sum(O.flux) FROM SDSS:obj O WHERE O.flux > 1000",
    );
    assert_eq!(rs.rows[0][0], Value::Int(0));
    assert_eq!(rs.rows[0][1], Value::Null);
    assert_eq!(rs.rows[0][2], Value::Null);
}

#[test]
fn group_by_with_ordering() {
    let mut db = stats_db();
    let rs = rows_of(
        &mut db,
        "SELECT O.type, count(*) AS n, max(O.flux) AS brightest \
         FROM SDSS:obj O GROUP BY O.type ORDER BY O.type",
    );
    assert_eq!(rs.row_count(), 3);
    assert_eq!(rs.columns[1].name, "n");
    // Alphabetical: GALAXY, QSO, STAR.
    assert_eq!(rs.rows[0][0], Value::Text("GALAXY".into()));
    assert_eq!(rs.rows[0][1], Value::Int(2));
    assert_eq!(rs.rows[0][2], Value::Float(30.0));
    assert_eq!(rs.rows[1][0], Value::Text("QSO".into()));
    assert_eq!(rs.rows[2][0], Value::Text("STAR".into()));
    // STAR group: one NULL flux — max over the non-null 5.0.
    assert_eq!(rs.rows[2][2], Value::Float(5.0));
}

#[test]
fn order_by_and_limit_plain_select() {
    let mut db = stats_db();
    let rs = rows_of(
        &mut db,
        "SELECT O.id, O.flux FROM SDSS:obj O ORDER BY O.flux DESC LIMIT 2",
    );
    assert_eq!(rs.row_count(), 2);
    assert_eq!(rs.rows[0][0], Value::Id(5)); // flux 100
    assert_eq!(rs.rows[1][0], Value::Id(2)); // flux 30
}

#[test]
fn order_by_nulls_and_asc() {
    let mut db = stats_db();
    let rs = rows_of(&mut db, "SELECT O.id FROM SDSS:obj O ORDER BY O.flux ASC");
    // key_cmp sorts NULL first ascending.
    assert_eq!(rs.rows[0][0], Value::Id(4));
    assert_eq!(rs.rows[1][0], Value::Id(3));
}

#[test]
fn aggregate_mode_validations() {
    let mut db = stats_db();
    // Non-aggregate item not in GROUP BY.
    let q = parse_query("SELECT O.id, count(*) FROM SDSS:obj O GROUP BY O.type").unwrap();
    assert!(execute_local(&mut db, "SDSS", &q).is_err());
    // ORDER BY non-key in aggregate mode.
    let q = parse_query("SELECT O.type, count(*) FROM SDSS:obj O GROUP BY O.type ORDER BY O.flux")
        .unwrap();
    assert!(execute_local(&mut db, "SDSS", &q).is_err());
}

#[test]
fn pure_count_star_still_fast_path() {
    let mut db = stats_db();
    let q = parse_query("SELECT count(*) FROM SDSS:obj O").unwrap();
    assert_eq!(
        execute_local(&mut db, "SDSS", &q).unwrap(),
        LocalQueryResult::Count(5)
    );
}

#[test]
fn print_parse_roundtrip_with_new_clauses() {
    for sql in [
        "SELECT O.type, count(*) FROM SDSS:obj O GROUP BY O.type ORDER BY O.type DESC LIMIT 5",
        "SELECT max(O.flux) AS m FROM SDSS:obj O",
        "SELECT O.id FROM SDSS:obj O ORDER BY O.flux, O.id DESC",
        "SELECT avg(O.flux) FROM SDSS:obj O WHERE O.type IN ('GALAXY')",
    ] {
        let q = parse_query(sql).unwrap();
        let back = parse_query(&q.to_string()).unwrap();
        assert_eq!(back, q, "{sql}");
    }
}

#[test]
fn aggregates_over_soap_query_service() {
    let fed = FederationBuilder::paper_triple(400).build();
    let node = fed.node("SDSS").unwrap();
    let resp = send_rpc(
        &fed.net,
        "probe",
        &node.url(),
        &RpcCall::new("Query").param(
            "sql",
            SoapValue::Str(
                "SELECT O.type, count(*) AS n, avg(O.i_flux) AS mean_flux \
                 FROM SDSS:Photo_Object O GROUP BY O.type ORDER BY O.type"
                    .into(),
            ),
        ),
    )
    .unwrap();
    let table = resp.require("rows").unwrap().as_table().unwrap();
    let rs = skyquery_core::ResultSet::from_votable(table).unwrap();
    assert_eq!(rs.row_count(), 2); // GALAXY + STAR
    let total: i64 = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
    assert_eq!(
        total as usize,
        node.with_db(|db| db.row_count("Photo_Object").unwrap())
    );
}

#[test]
fn federated_order_by_and_limit() {
    let fed = FederationBuilder::paper_triple(600).build();
    let sql = QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
        ],
        threshold: 3.5,
        area: None,
        polygon: None,
        predicates: vec![],
        select: vec!["O.object_id".into(), "O.i_flux".into()],
    }
    .to_sql()
        + " ORDER BY O.i_flux DESC LIMIT 5";
    let (result, _) = fed.portal.submit(&sql).unwrap();
    assert_eq!(result.row_count(), 5);
    // Rows are in descending flux order.
    let fluxes: Vec<f64> = result.rows.iter().map(|r| r[1].as_f64().unwrap()).collect();
    for w in fluxes.windows(2) {
        assert!(w[0] >= w[1], "not sorted: {fluxes:?}");
    }
    // And they are the global top-5: compare against the unlimited run.
    let unlimited = QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
        ],
        threshold: 3.5,
        area: None,
        polygon: None,
        predicates: vec![],
        select: vec!["O.object_id".into(), "O.i_flux".into()],
    }
    .to_sql();
    let (all, _) = fed.portal.submit(&unlimited).unwrap();
    let mut all_fluxes: Vec<f64> = all.rows.iter().map(|r| r[1].as_f64().unwrap()).collect();
    all_fluxes.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert_eq!(&fluxes[..], &all_fluxes[..5]);
}

#[test]
fn federated_aggregates_rejected() {
    let fed = FederationBuilder::paper_triple(100).build();
    let err = fed
        .portal
        .submit(
            "SELECT max(O.i_flux) FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T \
             WHERE XMATCH(O, T) < 3.5",
        )
        .unwrap_err();
    assert!(err.to_string().contains("aggregates"), "{err}");
    let err = fed
        .portal
        .submit(
            "SELECT O.object_id FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T \
             WHERE XMATCH(O, T) < 3.5 GROUP BY O.type",
        )
        .unwrap_err();
    assert!(err.to_string().contains("GROUP BY"), "{err}");
}

#[test]
fn explain_renders_the_plan_without_executing() {
    let fed = FederationBuilder::paper_triple(300).build();
    let sql = QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
            ("FIRST".into(), "Primary_Object".into(), "P".into(), true),
        ],
        threshold: 3.5,
        area: Some((185.0, -0.5, 30.0)),
        polygon: None,
        predicates: vec![
            "O.type = 'GALAXY'".into(),
            "(O.i_flux - T.i_flux) > 2".into(),
        ],
        select: vec!["O.object_id".into(), "T.object_id".into()],
    }
    .to_sql()
        + " ORDER BY O.object_id LIMIT 10";
    let text = fed.portal.explain(&sql).unwrap();
    assert!(text.contains("performance queries:"), "{text}");
    assert!(text.contains("AREA(185.0, -0.5, 30.0)"), "{text}");
    assert!(text.contains("!P"), "dropout marked: {text}");
    assert!(text.contains("local:    O.type = 'GALAXY'"), "{text}");
    assert!(text.contains("residual: O.i_flux - T.i_flux > 2"), "{text}");
    assert!(text.contains("order by: O.object_id"), "{text}");
    assert!(text.contains("limit: 10"), "{text}");
    // Only performance queries hit the wire: 2 mandatory archives × 1
    // round trip = 4 messages, no cross-match calls.
    fed.net.reset_metrics();
    fed.portal.explain(&sql).unwrap();
    assert_eq!(fed.net.metrics().total().messages, 4);
}

#[test]
fn equality_pushdown_uses_the_type_index() {
    // Surveys index `type`; a whole-sky equality query probes the B-tree
    // instead of scanning, which the buffer-cache accounting exposes.
    let fed = FederationBuilder::paper_triple(2000).build();
    let node = fed.node("SDSS").unwrap();
    let total = node.with_db(|db| db.row_count("Photo_Object").unwrap());
    let (galaxies, accesses) = node.with_db(|db| {
        db.reset_cache_stats();
        let q = parse_query("SELECT O.object_id FROM SDSS:Photo_Object O WHERE O.type = 'GALAXY'")
            .unwrap();
        let rs = match execute_local(db, "SDSS", &q).unwrap() {
            LocalQueryResult::Rows(rs) => rs,
            other => panic!("{other:?}"),
        };
        (rs.row_count(), db.cache_stats().accesses() as usize)
    });
    assert!(galaxies > 0 && galaxies < total);
    assert!(
        accesses < total,
        "index probe should touch fewer rows ({accesses}) than a scan ({total})"
    );
    // Same result as the scan path (predicate re-evaluated regardless).
    let via_scan = node.with_db(|db| {
        let q = parse_query(
            "SELECT O.object_id FROM SDSS:Photo_Object O WHERE O.type = GALAXY AND 1 = 1",
        )
        .unwrap();
        match execute_local(db, "SDSS", &q).unwrap() {
            LocalQueryResult::Rows(rs) => rs.row_count(),
            other => panic!("{other:?}"),
        }
    });
    assert_eq!(galaxies, via_scan);
}
