//! Survivable federated execution: the checkpointed chain, failover
//! re-planning, and lease-based reclamation.
//!
//! The invariants under test:
//!
//! * fault-free, the checkpointed chain returns a result byte-identical
//!   to the recursive daisy chain;
//! * a mid-chain outage of a mandatory archive is survived by deferring
//!   the step (`replan`) and resuming from the last good checkpoint —
//!   committed steps are never re-executed (asserted on the per-node
//!   step counters), and the result stays byte-identical;
//! * a failing drop-out archive is skipped with a `degraded` trace flag
//!   rather than failing the query;
//! * every checkpoint, transfer session, and exchange transaction is
//!   leased: renewals extend, the janitor reclaims expired orphans, and
//!   a stale id faults deterministically;
//! * a seeded chaos soak drains every node back to zero leases.

use skyquery_core::skynode::send_rpc;
use skyquery_core::transfer::renew_lease;
use skyquery_core::{
    ChainMode, ExecutionPlan, FederationConfig, FederationError, HostState, PlanStep, RetryPolicy,
};
use skyquery_net::{FaultKind, FaultPlan, FaultRule};
use skyquery_sim::{FederationBuilder, TestFederation};
use skyquery_soap::{RpcCall, SoapValue};

const SDSS_HOST: &str = "sdss.skyquery.net";
const TWOMASS_HOST: &str = "twomass.skyquery.net";
const FIRST_HOST: &str = "first.skyquery.net";
const PORTAL_HOST: &str = "portal.skyquery.net";

/// Three mandatory archives with a total ORDER BY, so equal match *sets*
/// render to equal bytes regardless of chain order.
fn ordered_three_sql() -> &'static str {
    "SELECT O.object_id, T.object_id, P.object_id \
     FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
     WHERE XMATCH(O, T, P) < 3.5 \
     ORDER BY O.object_id, T.object_id, P.object_id"
}

fn checkpointed(fed: &TestFederation) {
    fed.portal.set_config(FederationConfig {
        chain_mode: ChainMode::Checkpointed,
        ..fed.portal.config()
    });
}

/// Faults only the portal-driven step calls at `host`, leaving
/// performance queries and checkpoint fetches untouched.
fn step_outage(host: &str, times: u32) -> FaultPlan {
    FaultPlan::new().rule(
        FaultRule::new(FaultKind::HostDown)
            .host(host)
            .action("ExecuteStep")
            .times(times),
    )
}

fn executed_steps(fed: &TestFederation) -> Vec<(String, u64)> {
    ["SDSS", "TWOMASS", "FIRST"]
        .iter()
        .map(|a| (a.to_string(), fed.node(a).unwrap().executed_steps()))
        .collect()
}

fn assert_all_drained(fed: &TestFederation, label: &str) {
    for archive in ["SDSS", "TWOMASS", "FIRST"] {
        let node = fed.node(archive).unwrap();
        assert!(
            node.open_transfers().is_empty(),
            "{label}: {archive} leaked transfers {:?}",
            node.open_transfers()
        );
        assert!(
            node.pending_exchange_txns().is_empty(),
            "{label}: {archive} leaked exchange txns {:?}",
            node.pending_exchange_txns()
        );
        assert!(
            node.checkpoints().is_empty(),
            "{label}: {archive} leaked checkpoints {:?}",
            node.checkpoints()
        );
        assert_eq!(node.active_leases(), 0, "{label}: {archive} holds leases");
    }
}

#[test]
fn checkpointed_chain_matches_recursive_chain_byte_for_byte() {
    let fed = FederationBuilder::paper_triple(300).build();
    let (recursive, _) = fed.portal.submit(ordered_three_sql()).unwrap();
    assert!(recursive.row_count() > 0, "reference must match something");

    checkpointed(&fed);
    let (stepped, trace) = fed.portal.submit(ordered_three_sql()).unwrap();
    assert_eq!(stepped.to_ascii(), recursive.to_ascii());
    // A clean run neither re-plans nor degrades.
    assert!(!trace.contains_action("replan"));
    assert!(!trace.contains_action("degraded"));
    // Every committed checkpoint was released on the way out.
    fed.net.advance_clock(0.0);
    assert_all_drained(&fed, "clean checkpointed run");
}

#[test]
fn mid_chain_outage_replans_and_resumes_without_reexecution() {
    let fed = FederationBuilder::paper_triple(300).build();
    checkpointed(&fed);
    let (clean, _) = fed.portal.submit(ordered_three_sql()).unwrap();
    let before = executed_steps(&fed);

    // TWOMASS (mid-chain under count-star ordering) refuses exactly one
    // retry budget's worth of step calls, then recovers.
    fed.net.install_faults(step_outage(
        TWOMASS_HOST,
        RetryPolicy::default().max_attempts,
    ));
    let (survived, trace) = fed
        .portal
        .submit(ordered_three_sql())
        .expect("the re-planned chain must complete");
    assert_eq!(survived.to_ascii(), clean.to_ascii());

    // The portal re-planned once and resumed once, visibly.
    assert_eq!(trace.events_with_action("replan").len(), 1);
    assert_eq!(trace.events_with_action("resume").len(), 1);
    assert!(!trace.contains_action("degraded"));
    let m = fed.net.metrics();
    assert_eq!(m.node_event_count(PORTAL_HOST, "replan"), 1);
    assert_eq!(m.node_event_count(PORTAL_HOST, "resume"), 1);

    // No committed step ran twice: every node executed exactly one more
    // step than before the fault, despite the mid-chain failure.
    let after = executed_steps(&fed);
    for ((archive, b), (_, a)) in before.iter().zip(&after) {
        assert_eq!(
            *a,
            b + 1,
            "{archive} re-executed a committed step (before {b}, after {a})"
        );
    }
    // Recovery cleared the health mark.
    assert!(fed.portal.unhealthy_hosts().is_empty());
    assert_all_drained(&fed, "replanned run");
}

#[test]
fn failing_dropout_archive_degrades_instead_of_failing() {
    let fed = FederationBuilder::paper_triple(300).build();
    checkpointed(&fed);
    let dropout_sql = "SELECT O.object_id, T.object_id \
         FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
         WHERE XMATCH(O, T, !P) < 3.5 \
         ORDER BY O.object_id, T.object_id";
    let plain_sql = "SELECT O.object_id, T.object_id \
         FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T \
         WHERE XMATCH(O, T) < 3.5 \
         ORDER BY O.object_id, T.object_id";
    let (plain, _) = fed.portal.submit(plain_sql).unwrap();
    let (with_dropout, trace) = fed.portal.submit(dropout_sql).unwrap();
    assert!(!trace.contains_action("degraded"));
    assert!(
        with_dropout.row_count() < plain.row_count(),
        "the drop-out filter must exclude something for this test to bite"
    );

    // FIRST goes down for good: the optional anti-join is skipped and the
    // query completes as the plain two-way match, flagged degraded.
    fed.net.install_faults(step_outage(FIRST_HOST, u32::MAX));
    let (degraded, trace) = fed
        .portal
        .submit(dropout_sql)
        .expect("a failing drop-out archive must not fail the query");
    assert_eq!(degraded.to_ascii(), plain.to_ascii());
    assert_eq!(trace.events_with_action("degraded").len(), 1);
    assert!(!trace.contains_action("replan"));
    assert_eq!(
        fed.net.metrics().node_event_count(PORTAL_HOST, "degraded"),
        1
    );
    assert_eq!(fed.portal.unhealthy_hosts(), vec![FIRST_HOST.to_string()]);
}

#[test]
fn probe_moves_unhealthy_host_to_probation() {
    let fed = FederationBuilder::paper_triple(100).build();
    // TWOMASS eats exactly one retry budget, then recovers.
    fed.net.install_faults(
        FaultPlan::new().host_down_for(TWOMASS_HOST, RetryPolicy::default().max_attempts),
    );
    let err = fed.portal.submit(ordered_three_sql()).unwrap_err();
    assert!(matches!(err, FederationError::NodeUnhealthy { .. }));
    assert_eq!(fed.portal.unhealthy_hosts(), vec![TWOMASS_HOST.to_string()]);
    let report = fed.portal.health_report();
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].1.strikes, 1);
    assert_eq!(report[0].1.state, HostState::Unhealthy);

    // Half-open recovery: one cheap Information probe succeeds, moving
    // the host to probation — trusted again, history retained.
    let probed = fed.portal.probe_unhealthy_hosts();
    assert_eq!(probed, vec![(TWOMASS_HOST.to_string(), true)]);
    assert!(fed.portal.unhealthy_hosts().is_empty());
    let report = fed.portal.health_report();
    assert_eq!(report[0].1.state, HostState::Probation);
    assert_eq!(report[0].1.strikes, 1);

    // A real successful contact clears the history entirely.
    fed.portal.submit(ordered_three_sql()).unwrap();
    assert!(fed.portal.health_report().is_empty());
}

#[test]
fn failed_probe_adds_a_strike_and_keeps_the_host_unhealthy() {
    let fed = FederationBuilder::paper_triple(100).build();
    fed.net
        .install_faults(FaultPlan::new().host_down_for(TWOMASS_HOST, u32::MAX));
    let _ = fed.portal.submit(ordered_three_sql()).unwrap_err();
    let strikes = fed.portal.health_report()[0].1.strikes;
    assert!(!fed.portal.probe_host(TWOMASS_HOST));
    let report = fed.portal.health_report();
    assert_eq!(report[0].1.state, HostState::Unhealthy);
    assert_eq!(report[0].1.strikes, strikes + 1);
    // Probing a host nobody registered reports failure, not a panic.
    assert!(!fed.portal.probe_host("nowhere.skyquery.net"));
}

/// A one-step plan addressed at SDSS, for driving the checkpoint
/// services by hand.
fn seed_plan(fed: &TestFederation, lease_ttl_s: f64) -> ExecutionPlan {
    let node = fed.node("SDSS").unwrap();
    ExecutionPlan {
        threshold: 3.0,
        region: None,
        steps: vec![PlanStep {
            alias: "O".into(),
            archive: "SDSS".into(),
            table: "Photo_Object".into(),
            url: node.url(),
            dropout: false,
            sigma_arcsec: 0.1,
            local_sql: None,
            carried: vec!["object_id".into()],
            residual_sql: vec![],
            count_estimate: None,
            shards: vec![],
        }],
        select: vec![("O.object_id".into(), None)],
        order_by: vec![],
        limit: None,
        max_message_bytes: 10 * 1024 * 1024,
        chunking: true,
        xmatch_workers: 1,
        zone_height_deg: skyquery_core::plan::DEFAULT_ZONE_HEIGHT_DEG,
        zone_chunking: true,
        kernel: Default::default(),
        retry: RetryPolicy::none(),
        lease_ttl_s,
    }
}

#[test]
fn checkpoint_leases_renew_and_expire() {
    let fed = FederationBuilder::paper_triple(120).build();
    let node = fed.node("SDSS").unwrap();
    let plan = seed_plan(&fed, 50.0);
    let resp = send_rpc(
        &fed.net,
        "tester",
        &node.url(),
        &RpcCall::new("ExecuteStep")
            .param("plan", SoapValue::Xml(plan.to_element()))
            .param("step", SoapValue::Int(0)),
    )
    .expect("seed step executes");
    let cp = resp.require("checkpoint").unwrap().as_i64().unwrap() as u64;
    assert_eq!(node.checkpoints(), vec![cp]);
    assert!(node.active_leases() >= 1);

    // Renewal at t=40 extends the 50 s lease to t=90.
    fed.net.advance_clock(40.0);
    assert!(renew_lease(
        &fed.net,
        "tester",
        &node.url(),
        "checkpoint",
        cp,
        RetryPolicy::none()
    )
    .unwrap());
    fed.net.advance_clock(40.0); // t=80: past the original expiry
    assert_eq!(node.sweep_leases(&fed.net), 0);
    assert_eq!(node.checkpoints(), vec![cp]);

    // Unrenewed past t=90, the janitor reclaims the orphan.
    fed.net.advance_clock(60.0);
    assert_eq!(node.sweep_leases(&fed.net), 1);
    assert!(node.checkpoints().is_empty());
    assert_eq!(node.active_leases(), 0);
    assert!(
        fed.net
            .metrics()
            .node_event_count(SDSS_HOST, "lease-expired")
            >= 1
    );

    // A stale id faults deterministically — redo, don't retry.
    let err = match skyquery_core::transfer::open_checkpoint(
        &fed.net,
        "tester",
        &node.url(),
        &plan,
        cp,
    ) {
        Err(e) => e,
        Ok(_) => panic!("fetching a reclaimed checkpoint must fault"),
    };
    assert!(err.to_string().contains("is not leased"), "{err}");
    // Renewing it is a clean `false`, not a fault.
    assert!(!renew_lease(
        &fed.net,
        "tester",
        &node.url(),
        "checkpoint",
        cp,
        RetryPolicy::none()
    )
    .unwrap());
}

#[test]
fn abandoned_checkpoints_are_reclaimed_by_any_later_call() {
    let fed = FederationBuilder::paper_triple(120).build();
    let node = fed.node("SDSS").unwrap();
    let plan = seed_plan(&fed, 30.0);
    send_rpc(
        &fed.net,
        "tester",
        &node.url(),
        &RpcCall::new("ExecuteStep")
            .param("plan", SoapValue::Xml(plan.to_element()))
            .param("step", SoapValue::Int(0)),
    )
    .unwrap();
    assert_eq!(node.checkpoints().len(), 1);
    fed.net.advance_clock(31.0);
    // No explicit sweep: the janitor runs at the front of every service
    // call, so any traffic at the node reclaims the orphan.
    let _ = send_rpc(
        &fed.net,
        "tester",
        &node.url(),
        &RpcCall::new("Information"),
    )
    .unwrap();
    assert!(node.checkpoints().is_empty());
}

/// One seeded chaos round-trip: random step outages at random hosts,
/// asserting byte-identity whenever the query completes, then a full
/// lease drain across the federation.
fn chaos_soak(seed: u64) {
    let fed = FederationBuilder::paper_triple(200).build();
    fed.portal.set_config(FederationConfig {
        chain_mode: ChainMode::Checkpointed,
        lease_ttl_s: 40.0,
        ..fed.portal.config()
    });
    let (reference, _) = fed.portal.submit(ordered_three_sql()).unwrap();
    let reference = reference.to_ascii();

    // xorshift64* — a deterministic schedule without a rand dep.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let hosts = [SDSS_HOST, TWOMASS_HOST, FIRST_HOST];
    let (mut completed, mut failed) = (0u32, 0u32);
    for round in 0..12 {
        let host = hosts[(next() % hosts.len() as u64) as usize];
        let times = (next() % 5) as u32; // 0..=4 refused step calls
        fed.net.install_faults(step_outage(host, times));
        match fed.portal.submit(ordered_three_sql()) {
            Ok((result, _)) => {
                completed += 1;
                assert_eq!(
                    result.to_ascii(),
                    reference,
                    "seed {seed:#x} round {round}: survived result diverged \
                     ({times} outages at {host})"
                );
            }
            Err(e) => {
                failed += 1;
                assert!(
                    matches!(e, FederationError::NodeUnhealthy { .. }),
                    "seed {seed:#x} round {round}: expected a typed outage error, got {e}"
                );
            }
        }
    }
    assert!(completed > 0, "seed {seed:#x}: no round ever completed");
    let _ = failed; // some schedules never exhaust a budget — that's fine

    // Drain: everything leased during the soak (including checkpoints
    // orphaned by failed rounds) is reclaimed once its TTL passes.
    fed.net.advance_clock(fed.portal.config().lease_ttl_s + 1.0);
    for archive in ["SDSS", "TWOMASS", "FIRST"] {
        fed.node(archive).unwrap().sweep_leases(&fed.net);
    }
    assert_all_drained(&fed, &format!("soak seed {seed:#x}"));
}

#[test]
fn chaos_soak_seed_a() {
    chaos_soak(0x00C0_FFEE);
}

#[test]
fn chaos_soak_seed_b() {
    chaos_soak(0x0005_EED5);
}

/// Extra schedules via `SKYQUERY_SOAK_SEEDS=1,2,3` (comma-separated);
/// a no-op when unset, so CI can widen the sweep without a code change.
#[test]
fn chaos_soak_env_seeds() {
    let Ok(seeds) = std::env::var("SKYQUERY_SOAK_SEEDS") else {
        return;
    };
    for s in seeds.split(',').filter(|s| !s.trim().is_empty()) {
        let seed: u64 = s
            .trim()
            .parse()
            .expect("SKYQUERY_SOAK_SEEDS entries are u64");
        chaos_soak(seed);
    }
}
