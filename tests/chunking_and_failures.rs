//! The §6 message-size workaround and failure injection: chunked
//! transfers under small parser limits, the pre-workaround fault, node
//! outages, and malformed inputs.

use skyquery_core::skynode::send_rpc;
use skyquery_core::{ExecutionPlan, FederationConfig, FederationError, PlanStep};
use skyquery_sim::{xmatch_query, FederationBuilder, TestFederation};
use skyquery_soap::{ChunkManifest, RpcCall, SoapValue};

fn two_archive_sql() -> String {
    xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
        ],
        3.5,
        None,
    )
}

#[test]
fn chunked_transfer_preserves_results_under_tiny_limit() {
    let fed = FederationBuilder::paper_triple(600).build();
    let sql = two_archive_sql();
    // Reference run with the default 10 MB limit (no chunking needed).
    let (reference, _) = fed.portal.submit(&sql).unwrap();
    assert!(reference.row_count() > 0);

    // Now force a parser limit far below the partial-result size.
    fed.portal.set_config(FederationConfig {
        max_message_bytes: 20_000,
        chunking: true,
        ..FederationConfig::default()
    });
    fed.net.reset_metrics();
    let (chunked, _) = fed.portal.submit(&sql).unwrap();
    let key = |rs: &skyquery_core::ResultSet| {
        let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        rows
    };
    assert_eq!(key(&chunked), key(&reference));

    // The workaround multiplies messages: FetchChunk round trips appear.
    let m = fed.net.metrics();
    assert!(
        m.total().messages > 10,
        "expected chunk-fetch traffic, saw {} messages",
        m.total().messages
    );
    // And no single message exceeded the limit by an order of magnitude
    // (header overhead allows slack above the body budget).
    for ((_, _), stats) in m.links() {
        assert!(stats.bytes / stats.messages.max(1) < 40_000);
    }
}

#[test]
fn without_chunking_oversized_results_fault() {
    let fed = FederationBuilder::paper_triple(600).build();
    fed.portal.set_config(FederationConfig {
        max_message_bytes: 20_000,
        chunking: false, // the pre-workaround SOAP stack
        ..FederationConfig::default()
    });
    let err = fed.portal.submit(&two_archive_sql()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("exceeds parser limit") || msg.contains("bytes"),
        "unexpected error: {msg}"
    );
}

#[test]
fn small_results_never_chunk() {
    let fed = FederationBuilder::paper_triple(60).build();
    fed.portal.set_config(FederationConfig {
        max_message_bytes: 5 * 1024 * 1024,
        chunking: true,
        ..FederationConfig::default()
    });
    fed.net.reset_metrics();
    fed.portal.submit(&two_archive_sql()).unwrap();
    // Without chunking pressure the chain exchanges one call+response per
    // hop plus performance queries: a small, bounded message count.
    let m = fed.net.metrics().total();
    assert!(m.messages <= 12, "unexpected extra traffic: {}", m.messages);
}

/// Calls CrossMatch directly at a node with a single-step (seed-only)
/// plan and a tiny message budget, returning the transfer's manifest so
/// tests can drive the FetchChunk continuation by hand.
fn open_seed_transfer(fed: &TestFederation) -> ChunkManifest {
    let node = fed.node("SDSS").unwrap();
    let plan = ExecutionPlan {
        threshold: 3.0,
        region: None,
        steps: vec![PlanStep {
            alias: "O".into(),
            archive: "SDSS".into(),
            table: "Photo_Object".into(),
            url: node.url(),
            dropout: false,
            sigma_arcsec: 0.1,
            local_sql: None,
            carried: vec!["object_id".into()],
            residual_sql: vec![],
            count_estimate: None,
            shards: vec![],
        }],
        select: vec![("O.object_id".into(), None)],
        order_by: vec![],
        limit: None,
        max_message_bytes: 3_000,
        chunking: true,
        xmatch_workers: 1,
        zone_height_deg: skyquery_core::plan::DEFAULT_ZONE_HEIGHT_DEG,
        zone_chunking: true,
        kernel: Default::default(),
        retry: Default::default(),
        lease_ttl_s: skyquery_core::plan::DEFAULT_LEASE_TTL_S,
    };
    let resp = send_rpc(
        &fed.net,
        "tester",
        &node.url(),
        &RpcCall::new("CrossMatch")
            .param("plan", SoapValue::Xml(plan.to_element()))
            .param("step", SoapValue::Int(0)),
    )
    .expect("cross match succeeds");
    let manifest = resp
        .require("manifest")
        .expect("tiny budget forces a chunked reply")
        .as_xml()
        .expect("manifest is xml")
        .clone();
    ChunkManifest::from_element(&manifest).expect("manifest decodes")
}

fn fetch_chunk(
    fed: &TestFederation,
    transfer_id: u64,
    index: usize,
) -> Result<skyquery_soap::RpcResponse, FederationError> {
    let node = fed.node("SDSS").unwrap();
    send_rpc(
        &fed.net,
        "tester",
        &node.url(),
        &RpcCall::new("FetchChunk")
            .param("transfer_id", SoapValue::Int(transfer_id as i64))
            .param("index", SoapValue::Int(index as i64)),
    )
}

#[test]
fn fetch_chunk_with_missing_index_faults() {
    let fed = FederationBuilder::paper_triple(400).build();
    let manifest = open_seed_transfer(&fed);
    assert!(manifest.total_chunks() > 1, "budget must force chunking");
    let err = fetch_chunk(&fed, manifest.transfer_id, manifest.total_chunks() + 5).unwrap_err();
    assert!(err.to_string().contains("no chunk"), "{err}");
    // The bad index did not tear down the transfer: chunk 0 still serves.
    fetch_chunk(&fed, manifest.transfer_id, 0).expect("transfer survives a bad index");
}

#[test]
fn out_of_order_fetch_frees_transfer_after_last_chunk() {
    let fed = FederationBuilder::paper_triple(400).build();
    let manifest = open_seed_transfer(&fed);
    let last = manifest.total_chunks() - 1;
    assert!(last > 0, "budget must force multiple chunks");
    // Serving the final chunk frees the transfer — an out-of-order reader
    // that jumps to the end loses the rest.
    fetch_chunk(&fed, manifest.transfer_id, last).expect("last chunk serves");
    let err = fetch_chunk(&fed, manifest.transfer_id, 0).unwrap_err();
    assert!(err.to_string().contains("is not leased"), "{err}");
}

#[test]
fn transfer_freed_after_ordered_drain() {
    let fed = FederationBuilder::paper_triple(400).build();
    let manifest = open_seed_transfer(&fed);
    for index in 0..manifest.total_chunks() {
        let resp = fetch_chunk(&fed, manifest.transfer_id, index).expect("in-order fetch");
        assert_eq!(resp.require("index").unwrap().as_i64(), Some(index as i64));
    }
    // The node frees the transfer with the last chunk; re-fetching faults.
    let err = fetch_chunk(&fed, manifest.transfer_id, 0).unwrap_err();
    assert!(err.to_string().contains("is not leased"), "{err}");
}

#[test]
fn fetch_chunk_for_unknown_transfer_faults() {
    let fed = FederationBuilder::paper_triple(100).build();
    let err = fetch_chunk(&fed, 424242, 0).unwrap_err();
    assert!(err.to_string().contains("is not leased"), "{err}");
}

#[test]
fn offline_node_surfaces_as_unreachable() {
    let fed = FederationBuilder::paper_triple(100).build();
    // Take TWOMASS off the network after registration.
    fed.net.unbind("twomass.skyquery.net");
    // The portal retries the unreachable host until the budget runs out,
    // then reports the node unhealthy with the transport cause attached.
    let err = fed.portal.submit(&two_archive_sql()).unwrap_err();
    match err {
        FederationError::NodeUnhealthy { host, cause, .. } => {
            assert_eq!(host, "twomass.skyquery.net");
            match *cause {
                FederationError::Net(e) => assert!(e.to_string().contains("unreachable")),
                other => panic!("expected a network cause, got {other}"),
            }
        }
        other => panic!("expected NodeUnhealthy, got {other}"),
    }
    assert_eq!(
        fed.portal.unhealthy_hosts(),
        vec!["twomass.skyquery.net".to_string()]
    );
}

#[test]
fn mid_chain_node_failure_propagates_as_fault() {
    let fed = FederationBuilder::paper_triple(200).build();
    // Sabotage the seed archive (FIRST is smallest → seed): drop its
    // primary table so the seed step fails *inside* the chain.
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        3.5,
        None,
    );
    fed.node("FIRST")
        .unwrap()
        .with_db(|db| db.drop_table("Primary_Object"))
        .unwrap();
    let err = fed.portal.submit(&sql).unwrap_err();
    // The storage error at FIRST crosses two SOAP hops as a Fault.
    match err {
        FederationError::Fault(f) => {
            assert!(f.message.contains("unknown table"), "fault: {f}")
        }
        other => panic!("expected a SOAP fault, got {other}"),
    }
}

#[test]
fn malformed_sql_rejected_before_any_network_traffic() {
    let fed = FederationBuilder::paper_triple(100).build();
    fed.net.reset_metrics();
    assert!(fed.portal.submit("SELECT FROM WHERE").is_err());
    assert!(fed.portal.submit("").is_err());
    assert!(fed
        .portal
        .submit("SELECT O.a FROM SDSS:Photo_Object O") // no XMATCH
        .is_err());
    assert_eq!(fed.net.metrics().total().messages, 0);
}

#[test]
fn client_sees_faults_from_bad_queries() {
    let fed = FederationBuilder::paper_triple(100).build();
    let client = fed.client("user");
    let err = client.query("SELECT broken").unwrap_err();
    match err {
        FederationError::Fault(f) => assert_eq!(f.code, "Client"),
        other => panic!("expected fault, got {other}"),
    }
}

#[test]
fn query_on_nonexistent_table_fails_cleanly() {
    let fed = FederationBuilder::paper_triple(100).build();
    let err = fed
        .portal
        .submit(&xmatch_query(
            &[
                ("SDSS", "NoSuchTable", "O"),
                ("TWOMASS", "Photo_Primary", "T"),
            ],
            3.5,
            None,
        ))
        .unwrap_err();
    // The performance query reaches the SkyNode first, which faults with
    // its storage error ("unknown table"); if it didn't, the planner's
    // own catalog check ("has no table") would reject the plan.
    let msg = err.to_string();
    assert!(
        msg.contains("unknown table") || msg.contains("no table"),
        "{msg}"
    );
}
