//! The §6 message-size workaround and failure injection: chunked
//! transfers under small parser limits, the pre-workaround fault, node
//! outages, and malformed inputs.

use skyquery_core::{FederationConfig, FederationError};
use skyquery_sim::{xmatch_query, FederationBuilder};

fn two_archive_sql() -> String {
    xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
        ],
        3.5,
        None,
    )
}

#[test]
fn chunked_transfer_preserves_results_under_tiny_limit() {
    let fed = FederationBuilder::paper_triple(600).build();
    let sql = two_archive_sql();
    // Reference run with the default 10 MB limit (no chunking needed).
    let (reference, _) = fed.portal.submit(&sql).unwrap();
    assert!(reference.row_count() > 0);

    // Now force a parser limit far below the partial-result size.
    fed.portal.set_config(FederationConfig {
        max_message_bytes: 20_000,
        chunking: true,
        ..FederationConfig::default()
    });
    fed.net.reset_metrics();
    let (chunked, _) = fed.portal.submit(&sql).unwrap();
    let key = |rs: &skyquery_core::ResultSet| {
        let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        rows
    };
    assert_eq!(key(&chunked), key(&reference));

    // The workaround multiplies messages: FetchChunk round trips appear.
    let m = fed.net.metrics();
    assert!(
        m.total().messages > 10,
        "expected chunk-fetch traffic, saw {} messages",
        m.total().messages
    );
    // And no single message exceeded the limit by an order of magnitude
    // (header overhead allows slack above the body budget).
    for ((_, _), stats) in m.links() {
        assert!(stats.bytes / stats.messages.max(1) < 40_000);
    }
}

#[test]
fn without_chunking_oversized_results_fault() {
    let fed = FederationBuilder::paper_triple(600).build();
    fed.portal.set_config(FederationConfig {
        max_message_bytes: 20_000,
        chunking: false, // the pre-workaround SOAP stack
        ..FederationConfig::default()
    });
    let err = fed.portal.submit(&two_archive_sql()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("exceeds parser limit") || msg.contains("bytes"),
        "unexpected error: {msg}"
    );
}

#[test]
fn small_results_never_chunk() {
    let fed = FederationBuilder::paper_triple(60).build();
    fed.portal.set_config(FederationConfig {
        max_message_bytes: 5 * 1024 * 1024,
        chunking: true,
        ..FederationConfig::default()
    });
    fed.net.reset_metrics();
    fed.portal.submit(&two_archive_sql()).unwrap();
    // Without chunking pressure the chain exchanges one call+response per
    // hop plus performance queries: a small, bounded message count.
    let m = fed.net.metrics().total();
    assert!(m.messages <= 12, "unexpected extra traffic: {}", m.messages);
}

#[test]
fn offline_node_surfaces_as_unreachable() {
    let fed = FederationBuilder::paper_triple(100).build();
    // Take TWOMASS off the network after registration.
    fed.net.unbind("twomass.skyquery.net");
    let err = fed.portal.submit(&two_archive_sql()).unwrap_err();
    match err {
        FederationError::Net(e) => assert!(e.to_string().contains("unreachable")),
        other => panic!("expected a network error, got {other}"),
    }
}

#[test]
fn mid_chain_node_failure_propagates_as_fault() {
    let fed = FederationBuilder::paper_triple(200).build();
    // Sabotage the seed archive (FIRST is smallest → seed): drop its
    // primary table so the seed step fails *inside* the chain.
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        3.5,
        None,
    );
    fed.node("FIRST")
        .unwrap()
        .with_db(|db| db.drop_table("Primary_Object"))
        .unwrap();
    let err = fed.portal.submit(&sql).unwrap_err();
    // The storage error at FIRST crosses two SOAP hops as a Fault.
    match err {
        FederationError::Fault(f) => {
            assert!(f.message.contains("unknown table"), "fault: {f}")
        }
        other => panic!("expected a SOAP fault, got {other}"),
    }
}

#[test]
fn malformed_sql_rejected_before_any_network_traffic() {
    let fed = FederationBuilder::paper_triple(100).build();
    fed.net.reset_metrics();
    assert!(fed.portal.submit("SELECT FROM WHERE").is_err());
    assert!(fed.portal.submit("").is_err());
    assert!(fed
        .portal
        .submit("SELECT O.a FROM SDSS:Photo_Object O") // no XMATCH
        .is_err());
    assert_eq!(fed.net.metrics().total().messages, 0);
}

#[test]
fn client_sees_faults_from_bad_queries() {
    let fed = FederationBuilder::paper_triple(100).build();
    let client = fed.client("user");
    let err = client.query("SELECT broken").unwrap_err();
    match err {
        FederationError::Fault(f) => assert_eq!(f.code, "Client"),
        other => panic!("expected fault, got {other}"),
    }
}

#[test]
fn query_on_nonexistent_table_fails_cleanly() {
    let fed = FederationBuilder::paper_triple(100).build();
    let err = fed
        .portal
        .submit(&xmatch_query(
            &[
                ("SDSS", "NoSuchTable", "O"),
                ("TWOMASS", "Photo_Primary", "T"),
            ],
            3.5,
            None,
        ))
        .unwrap_err();
    // The performance query reaches the SkyNode first, which faults with
    // its storage error ("unknown table"); if it didn't, the planner's
    // own catalog check ("has no table") would reject the plan.
    let msg = err.to_string();
    assert!(
        msg.contains("unknown table") || msg.contains("no table"),
        "{msg}"
    );
}
