//! Figure 2 semantics: the XMATCH clause with and without drop-outs.
//!
//! The paper's figure shows two bodies: body *a* is observed by all three
//! archives O, T, P within 3.5σ of their mean; body *b*'s P-observation
//! is out of range. So `XMATCH(O, T, P) < 3.5` selects {a_O, a_T, a_P}
//! and `XMATCH(O, T, !P) < 3.5` selects {b_O, b_T}.

use skyquery_core::{ArchiveInfo, Portal, SkyNodeBuilder};
use skyquery_net::SimNetwork;
use skyquery_sim::{xmatch_query, QuerySpec};
use skyquery_storage::{Database, Value};

const ARCSEC: f64 = 1.0 / 3600.0;

/// Builds the three archives of Figure 2 with hand-placed objects.
///
/// Body a ≈ (185.0, -0.5): all three observations within tight range.
/// Body b ≈ (185.01, -0.49): O and T agree, P's observation is pushed
/// ~20σ away (far outside any 3.5σ bound).
fn figure2_federation() -> (SimNetwork, std::sync::Arc<Portal>) {
    let net = SimNetwork::new();
    let portal = Portal::start(&net, "portal", skyquery_core::FederationConfig::default());

    let mk = |name: &str, sigma: f64, objects: &[(u64, f64, f64)]| {
        let mut db = Database::new(name);
        db.create_table(skyquery_sim::survey::primary_schema("objects", 14))
            .unwrap();
        for &(id, ra, dec) in objects {
            db.insert(
                "objects",
                vec![
                    Value::Id(id),
                    Value::Float(ra),
                    Value::Float(dec),
                    Value::Text("GALAXY".into()),
                    Value::Float(1.0),
                ],
            )
            .unwrap();
        }
        let host = format!("{}.sky", name.to_lowercase());
        SkyNodeBuilder::new(
            ArchiveInfo {
                name: name.into(),
                sigma_arcsec: sigma,
                primary_table: "objects".into(),
                htm_depth: 14,
                extent: None,
            },
            db,
        )
        .start(&net, host.clone());
        portal
            .register_node(&skyquery_net::Url::new(host, "/soap"))
            .unwrap();
    };

    // a observations: tightly clustered around (185.0, -0.5).
    // b observations: O and T agree near (185.01, -0.49); P's is far off.
    mk(
        "O",
        0.2,
        &[
            (1, 185.0, -0.5),   // a_O
            (2, 185.01, -0.49), // b_O
        ],
    );
    mk(
        "T",
        0.2,
        &[
            (11, 185.0 + 0.1 * ARCSEC, -0.5),    // a_T
            (12, 185.01, -0.49 + 0.15 * ARCSEC), // b_T
        ],
    );
    mk(
        "P",
        0.2,
        &[
            (21, 185.0, -0.5 - 0.12 * ARCSEC),   // a_P (in range)
            (22, 185.01, -0.49 + 20.0 * ARCSEC), // b_P (out of range)
        ],
    );
    (net, portal)
}

#[test]
fn figure2_all_mandatory_selects_body_a() {
    let (_net, portal) = figure2_federation();
    let sql = xmatch_query(
        &[
            ("O", "objects", "O"),
            ("T", "objects", "T"),
            ("P", "objects", "P"),
        ],
        3.5,
        None,
    );
    let (result, _) = portal.submit(&sql).unwrap();
    assert_eq!(result.row_count(), 1, "only body a matches in all three");
    assert_eq!(result.rows[0][0], Value::Id(1)); // a_O
    assert_eq!(result.rows[0][1], Value::Id(11)); // a_T
    assert_eq!(result.rows[0][2], Value::Id(21)); // a_P
}

#[test]
fn figure2_dropout_selects_body_b() {
    let (_net, portal) = figure2_federation();
    let sql = QuerySpec {
        archives: vec![
            ("O".into(), "objects".into(), "O".into(), false),
            ("T".into(), "objects".into(), "T".into(), false),
            ("P".into(), "objects".into(), "P".into(), true),
        ],
        threshold: 3.5,
        area: None,
        polygon: None,
        predicates: vec![],
        select: vec![],
    }
    .to_sql();
    let (result, _) = portal.submit(&sql).unwrap();
    assert_eq!(
        result.row_count(),
        1,
        "only body b has no P counterpart within range"
    );
    assert_eq!(result.rows[0][0], Value::Id(2)); // b_O
    assert_eq!(result.rows[0][1], Value::Id(12)); // b_T
}

#[test]
fn dropout_and_mandatory_are_exclusive_partitions() {
    // Every (O, T) pair selected by XMATCH(O, T) splits between
    // XMATCH(O, T, P) (has P counterpart) and XMATCH(O, T, !P) (hasn't):
    // here pairs are checked by id.
    let (_net, portal) = figure2_federation();
    let pairs = |sql: &str| -> Vec<(u64, u64)> {
        let (r, _) = portal.submit(sql).unwrap();
        r.rows
            .iter()
            .map(|row| (row[0].as_id().unwrap(), row[1].as_id().unwrap()))
            .collect()
    };
    let base = pairs(
        &QuerySpec {
            archives: vec![
                ("O".into(), "objects".into(), "O".into(), false),
                ("T".into(), "objects".into(), "T".into(), false),
            ],
            threshold: 3.5,
            area: None,
            polygon: None,
            predicates: vec![],
            select: vec!["O.object_id".into(), "T.object_id".into()],
        }
        .to_sql(),
    );
    let with_p = pairs(
        &QuerySpec {
            archives: vec![
                ("O".into(), "objects".into(), "O".into(), false),
                ("T".into(), "objects".into(), "T".into(), false),
                ("P".into(), "objects".into(), "P".into(), false),
            ],
            threshold: 3.5,
            area: None,
            polygon: None,
            predicates: vec![],
            select: vec!["O.object_id".into(), "T.object_id".into()],
        }
        .to_sql(),
    );
    let without_p = pairs(
        &QuerySpec {
            archives: vec![
                ("O".into(), "objects".into(), "O".into(), false),
                ("T".into(), "objects".into(), "T".into(), false),
                ("P".into(), "objects".into(), "P".into(), true),
            ],
            threshold: 3.5,
            area: None,
            polygon: None,
            predicates: vec![],
            select: vec!["O.object_id".into(), "T.object_id".into()],
        }
        .to_sql(),
    );
    let mut union: Vec<(u64, u64)> = with_p.iter().chain(&without_p).copied().collect();
    union.sort_unstable();
    union.dedup();
    let mut base_sorted = base.clone();
    base_sorted.sort_unstable();
    assert_eq!(union, base_sorted, "partition must cover the base pairs");
    for p in &with_p {
        assert!(!without_p.contains(p), "partition must be disjoint");
    }
}

#[test]
fn dropout_with_local_predicate_only_considers_matching_rows() {
    // If the drop-out archive's counterpart fails P's local predicate, it
    // does not block the tuple.
    let (_net, portal) = figure2_federation();
    let sql = QuerySpec {
        archives: vec![
            ("O".into(), "objects".into(), "O".into(), false),
            ("T".into(), "objects".into(), "T".into(), false),
            ("P".into(), "objects".into(), "P".into(), true),
        ],
        threshold: 3.5,
        area: None,
        polygon: None,
        // No P object has flux > 100, so the drop-out never fires.
        predicates: vec!["P.i_flux > 100".into()],
        select: vec![],
    }
    .to_sql();
    let (result, _) = portal.submit(&sql).unwrap();
    assert_eq!(
        result.row_count(),
        2,
        "with the blocker filtered out, both bodies survive the drop-out"
    );
}
