//! Correctness oracle tests: the distributed chained execution must
//! produce exactly the match set an exhaustive centralized evaluation of
//! the same likelihood math produces — across seeds, thresholds, and
//! survey shapes.

use skyquery_core::baseline::naive_match;
use skyquery_htm::{SkyPoint, Vec3};
use skyquery_sim::{xmatch_query, CatalogParams, FederationBuilder, SurveyParams};
use skyquery_storage::Value;

/// Pulls `(object_id, position)` pairs straight out of a node's database.
fn objects_of(fed: &skyquery_sim::TestFederation, archive: &str) -> (Vec<u64>, Vec<Vec3>) {
    let node = fed.node(archive).unwrap();
    let table = node.info().primary_table.clone();
    node.with_db(|db| {
        let t = db.table(&table).unwrap();
        let mut ids = Vec::new();
        let mut pos = Vec::new();
        for (_, row) in t.iter() {
            ids.push(row[0].as_id().unwrap());
            pos.push(
                SkyPoint::from_radec_deg(row[1].as_f64().unwrap(), row[2].as_f64().unwrap())
                    .to_vec3(),
            );
        }
        (ids, pos)
    })
}

fn run_oracle(seed: u64, threshold: f64, bodies: usize) {
    let mut sdss = SurveyParams::sdss_like();
    sdss.seed = seed;
    let mut twomass = SurveyParams::twomass_like();
    twomass.seed = seed + 1;
    let fed = FederationBuilder::new()
        .catalog(CatalogParams {
            count: bodies,
            seed,
            ..CatalogParams::default()
        })
        .survey(sdss)
        .survey(twomass)
        .build();

    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
        ],
        threshold,
        None,
    );
    let (result, _) = fed.portal.submit(&sql).unwrap();
    let mut distributed: Vec<(u64, u64)> = result
        .rows
        .iter()
        .map(|r| (r[0].as_id().unwrap(), r[1].as_id().unwrap()))
        .collect();
    distributed.sort_unstable();

    // Exhaustive oracle over the same observations.
    let (ids_o, pos_o) = objects_of(&fed, "SDSS");
    let (ids_t, pos_t) = objects_of(&fed, "TWOMASS");
    let sigmas = [
        (0.1 / 3600.0_f64).to_radians(),
        (0.3 / 3600.0_f64).to_radians(),
    ];
    let mut brute: Vec<(u64, u64)> = naive_match(&[pos_o, pos_t], &sigmas, threshold)
        .into_iter()
        .map(|idx| (ids_o[idx[0]], ids_t[idx[1]]))
        .collect();
    brute.sort_unstable();

    assert_eq!(
        distributed, brute,
        "distributed != centralized for seed {seed}, threshold {threshold}"
    );
    assert!(
        !distributed.is_empty(),
        "oracle run should produce matches (seed {seed})"
    );
}

#[test]
fn oracle_seed_1() {
    run_oracle(11, 3.5, 250);
}

#[test]
fn oracle_seed_2() {
    run_oracle(12, 3.5, 250);
}

#[test]
fn oracle_seed_3_tight_threshold() {
    run_oracle(13, 1.5, 250);
}

#[test]
fn oracle_seed_4_loose_threshold() {
    run_oracle(14, 6.0, 200);
}

#[test]
fn oracle_dense_cluster() {
    // A dense field stresses the candidate search: many bodies within a
    // few σ of each other produce ambiguous multi-matches that both
    // evaluations must agree on.
    let mut sdss = SurveyParams::sdss_like();
    sdss.sigma_arcsec = 0.5;
    sdss.seed = 77;
    let mut twomass = SurveyParams::twomass_like();
    twomass.sigma_arcsec = 0.8;
    twomass.seed = 78;
    let fed = FederationBuilder::new()
        .catalog(CatalogParams {
            count: 300,
            radius_deg: 0.02, // everything packed into ~72 arcsec
            seed: 79,
            ..CatalogParams::default()
        })
        .survey(sdss)
        .survey(twomass)
        .build();
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
        ],
        3.0,
        None,
    );
    let (result, _) = fed.portal.submit(&sql).unwrap();
    let (ids_o, pos_o) = objects_of(&fed, "SDSS");
    let (ids_t, pos_t) = objects_of(&fed, "TWOMASS");
    let sigmas = [
        (0.5 / 3600.0_f64).to_radians(),
        (0.8 / 3600.0_f64).to_radians(),
    ];
    let brute = naive_match(&[pos_o.clone(), pos_t.clone()], &sigmas, 3.0);
    let mut brute_ids: Vec<(u64, u64)> = brute
        .into_iter()
        .map(|idx| (ids_o[idx[0]], ids_t[idx[1]]))
        .collect();
    brute_ids.sort_unstable();
    let mut distributed: Vec<(u64, u64)> = result
        .rows
        .iter()
        .map(|r| (r[0].as_id().unwrap(), r[1].as_id().unwrap()))
        .collect();
    distributed.sort_unstable();
    assert_eq!(distributed, brute_ids);
    // Density check: the ambiguous field should produce more matches
    // than bodies detected by both surveys would 1:1.
    assert!(distributed.len() > 100, "got {}", distributed.len());
}

#[test]
fn provenance_ground_truth_recall() {
    // Bodies detected by both surveys with tight errors should almost
    // all be recovered as cross matches (recall sanity, not exact).
    let fed = FederationBuilder::new()
        .catalog(CatalogParams {
            count: 500,
            seed: 5,
            ..CatalogParams::default()
        })
        .survey(SurveyParams::sdss_like())
        .survey(SurveyParams::twomass_like())
        .build();
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
        ],
        3.5,
        None,
    );
    let (result, _) = fed.portal.submit(&sql).unwrap();
    let matched: std::collections::HashSet<(u64, u64)> = result
        .rows
        .iter()
        .map(|r| (r[0].as_id().unwrap(), r[1].as_id().unwrap()))
        .collect();

    // Ground truth: bodies present in both provenance maps.
    let sdss_node = fed.node("SDSS").unwrap();
    let _ = sdss_node; // provenance lives in the Survey, rebuilt below
    let catalog = &fed.catalog;
    // Rebuild surveys deterministically to recover provenance.
    let s = skyquery_sim::Survey::observe(catalog, SurveyParams::sdss_like());
    let t = skyquery_sim::Survey::observe(catalog, SurveyParams::twomass_like());
    let mut both = 0;
    let mut recalled = 0;
    let t_by_body: std::collections::HashMap<u64, u64> =
        t.provenance.iter().map(|(o, b)| (*b, *o)).collect();
    for (o_id, body) in &s.provenance {
        if let Some(t_id) = t_by_body.get(body) {
            both += 1;
            if matched.contains(&(*o_id, *t_id)) {
                recalled += 1;
            }
        }
    }
    let recall = recalled as f64 / both as f64;
    // 3.5σ keeps ~99.8% of 2-D Gaussian pairs; allow generous slack.
    assert!(recall > 0.97, "recall {recall} ({recalled}/{both})");
}

#[test]
fn false_positive_rate_bounded() {
    // With well-separated bodies, spurious matches (different bodies
    // within 3.5σ) should be rare.
    let fed = FederationBuilder::new()
        .catalog(CatalogParams {
            count: 400,
            radius_deg: 1.0,
            seed: 21,
            ..CatalogParams::default()
        })
        .survey(SurveyParams::sdss_like())
        .survey(SurveyParams::twomass_like())
        .build();
    let (result, _) = fed
        .portal
        .submit(&xmatch_query(
            &[
                ("SDSS", "Photo_Object", "O"),
                ("TWOMASS", "Photo_Primary", "T"),
            ],
            3.5,
            None,
        ))
        .unwrap();
    let s = skyquery_sim::Survey::observe(&fed.catalog, SurveyParams::sdss_like());
    let t = skyquery_sim::Survey::observe(&fed.catalog, SurveyParams::twomass_like());
    let mut wrong = 0;
    for row in &result.rows {
        let o = row[0].as_id().unwrap();
        let tt = row[1].as_id().unwrap();
        match (s.provenance.get(&o), t.provenance.get(&tt)) {
            (Some(a), Some(b)) if a == b => {}
            _ => wrong += 1,
        }
    }
    let rate = wrong as f64 / result.row_count().max(1) as f64;
    assert!(rate < 0.05, "false-match rate {rate}");
}

/// Guard: chained results carry usable values (no NULL ids).
#[test]
fn result_values_well_formed() {
    let fed = FederationBuilder::paper_triple(300).build();
    let (result, _) = fed
        .portal
        .submit(&xmatch_query(
            &[
                ("SDSS", "Photo_Object", "O"),
                ("TWOMASS", "Photo_Primary", "T"),
            ],
            3.5,
            None,
        ))
        .unwrap();
    for row in &result.rows {
        for v in row {
            assert!(!matches!(v, Value::Null));
        }
    }
}

#[test]
fn oracle_clustered_sky() {
    // Galaxy-cluster fields pack many bodies within a few σ of each
    // other — the hardest case for pruning correctness.
    use skyquery_sim::CatalogParams;
    let mut sdss = SurveyParams::sdss_like();
    sdss.sigma_arcsec = 0.4;
    sdss.seed = 501;
    let mut twomass = SurveyParams::twomass_like();
    twomass.sigma_arcsec = 0.6;
    twomass.seed = 502;
    let fed = FederationBuilder::new()
        .catalog(CatalogParams {
            count: 400,
            cluster_fraction: 0.7,
            cluster_count: 4,
            cluster_radius_deg: 0.001, // ~3.6 arcsec clusters
            seed: 503,
            ..CatalogParams::default()
        })
        .survey(sdss)
        .survey(twomass)
        .build();
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
        ],
        3.0,
        None,
    );
    let (result, _) = fed.portal.submit(&sql).unwrap();
    let (ids_o, pos_o) = objects_of(&fed, "SDSS");
    let (ids_t, pos_t) = objects_of(&fed, "TWOMASS");
    let sigmas = [
        (0.4 / 3600.0_f64).to_radians(),
        (0.6 / 3600.0_f64).to_radians(),
    ];
    let mut brute: Vec<(u64, u64)> = naive_match(&[pos_o, pos_t], &sigmas, 3.0)
        .into_iter()
        .map(|idx| (ids_o[idx[0]], ids_t[idx[1]]))
        .collect();
    brute.sort_unstable();
    let mut distributed: Vec<(u64, u64)> = result
        .rows
        .iter()
        .map(|r| (r[0].as_id().unwrap(), r[1].as_id().unwrap()))
        .collect();
    distributed.sort_unstable();
    assert_eq!(distributed, brute);
    // Ambiguity check: clusters should force many-to-many matches.
    let distinct_o: std::collections::HashSet<u64> = distributed.iter().map(|(o, _)| *o).collect();
    assert!(
        distributed.len() > distinct_o.len(),
        "expected ambiguous multi-matches in clustered fields"
    );
}
