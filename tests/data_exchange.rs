//! The §6 data-exchange extension end to end: atomic table transfer
//! between archives over two-phase commit on stateless SOAP.

use skyquery_sim::FederationBuilder;

#[test]
fn transfer_copies_rows_atomically() {
    let fed = FederationBuilder::paper_triple(500).build();
    // Copy bright SDSS galaxies into a new table at TWOMASS.
    let report = fed
        .portal
        .transfer_table(
            "SDSS",
            "SELECT O.object_id, O.ra, O.dec, O.i_flux FROM SDSS:Photo_Object O \
             WHERE O.type = GALAXY AND O.i_flux > 100",
            "TWOMASS",
            "sdss_bright_galaxies",
        )
        .unwrap();
    assert!(report.rows_copied > 0);
    assert_eq!(report.destination, "TWOMASS");

    // The destination now has exactly that many rows, with real values.
    let twomass = fed.node("TWOMASS").unwrap();
    let n = twomass.with_db(|db| db.row_count("sdss_bright_galaxies").unwrap());
    assert_eq!(n, report.rows_copied);
    let all_positive = twomass.with_db(|db| {
        db.table("sdss_bright_galaxies")
            .unwrap()
            .rows()
            .iter()
            .all(|r| r[3].as_f64().unwrap() > 100.0)
    });
    assert!(all_positive);
    // No transaction left pending.
    assert!(twomass.pending_exchange_txns().is_empty());
}

#[test]
fn repeated_transfer_appends() {
    let fed = FederationBuilder::paper_triple(300).build();
    let sql = "SELECT O.object_id, O.i_flux FROM SDSS:Photo_Object O WHERE O.i_flux > 400";
    let r1 = fed
        .portal
        .transfer_table("SDSS", sql, "FIRST", "bright")
        .unwrap();
    let r2 = fed
        .portal
        .transfer_table("SDSS", sql, "FIRST", "bright")
        .unwrap();
    let n = fed
        .node("FIRST")
        .unwrap()
        .with_db(|db| db.row_count("bright").unwrap());
    assert_eq!(n, r1.rows_copied + r2.rows_copied);
    assert_ne!(r1.txn_id, r2.txn_id);
}

#[test]
fn incompatible_destination_schema_aborts_cleanly() {
    let fed = FederationBuilder::paper_triple(200).build();
    // Pre-create a conflicting destination table.
    fed.node("TWOMASS").unwrap().with_db(|db| {
        db.create_table(skyquery_storage::TableSchema::new(
            "conflicted",
            vec![skyquery_storage::ColumnDef::new(
                "different",
                skyquery_storage::DataType::Text,
            )],
        ))
        .unwrap();
    });
    let err = fed
        .portal
        .transfer_table(
            "SDSS",
            "SELECT O.object_id FROM SDSS:Photo_Object O",
            "TWOMASS",
            "conflicted",
        )
        .unwrap_err();
    assert!(err.to_string().contains("incompatible"), "{err}");
    // Prepare voted no: nothing staged, table unchanged.
    let node = fed.node("TWOMASS").unwrap();
    assert!(node.pending_exchange_txns().is_empty());
    assert_eq!(node.with_db(|db| db.row_count("conflicted").unwrap()), 0);
}

#[test]
fn unreachable_destination_means_no_transfer() {
    let fed = FederationBuilder::paper_triple(200).build();
    fed.net.unbind("twomass.skyquery.net");
    let err = fed
        .portal
        .transfer_table(
            "SDSS",
            "SELECT O.object_id FROM SDSS:Photo_Object O",
            "TWOMASS",
            "copy",
        )
        .unwrap_err();
    assert!(err.to_string().contains("unreachable"), "{err}");
}

#[test]
fn source_must_match_query() {
    let fed = FederationBuilder::paper_triple(100).build();
    // Query addresses TWOMASS but the declared source is SDSS.
    let err = fed
        .portal
        .transfer_table(
            "SDSS",
            "SELECT T.object_id FROM TWOMASS:Photo_Primary T",
            "FIRST",
            "copy",
        )
        .unwrap_err();
    assert!(err.to_string().contains("exactly SDSS"), "{err}");
    // Unregistered participants are refused outright.
    assert!(fed
        .portal
        .transfer_table("HUBBLE", "SELECT H.x FROM HUBBLE:T H", "SDSS", "t")
        .is_err());
    assert!(fed
        .portal
        .transfer_table(
            "SDSS",
            "SELECT O.object_id FROM SDSS:Photo_Object O",
            "HUBBLE",
            "t"
        )
        .is_err());
}

#[test]
fn transferred_rows_queryable_at_destination() {
    // The copied table becomes part of the destination's autonomous
    // database: its own Query service can select from it.
    let fed = FederationBuilder::paper_triple(300).build();
    fed.portal
        .transfer_table(
            "SDSS",
            "SELECT O.object_id, O.i_flux FROM SDSS:Photo_Object O WHERE O.i_flux > 200",
            "TWOMASS",
            "imported",
        )
        .unwrap();
    use skyquery_core::skynode::send_rpc;
    use skyquery_soap::{RpcCall, SoapValue};
    let node = fed.node("TWOMASS").unwrap();
    let resp = send_rpc(
        &fed.net,
        "tester",
        &node.url(),
        &RpcCall::new("Query").param(
            "sql",
            SoapValue::Str("SELECT count(*) FROM TWOMASS:imported I".into()),
        ),
    )
    .unwrap();
    let count = resp.require("count").unwrap().as_i64().unwrap();
    assert!(count > 0);
    let direct = node.with_db(|db| db.row_count("imported").unwrap());
    assert_eq!(count as usize, direct);
    // And its Meta-data service now advertises the new table.
    let meta = send_rpc(&fed.net, "tester", &node.url(), &RpcCall::new("Metadata")).unwrap();
    let catalog = skyquery_core::meta::catalog_from_element(
        meta.require("catalog").unwrap().as_xml().unwrap(),
    )
    .unwrap();
    assert!(catalog.table("imported").is_some());
}
