//! The fault matrix: every injected network fault kind crossed with
//! "recovers within the retry budget" and "exhausts the budget". The
//! invariants under test — the transfer layer's no-silent-failure
//! contract:
//!
//! * a recovered run returns a result byte-identical to the clean run;
//! * an exhausted budget returns a *typed* error (`NodeUnhealthy` with
//!   the transport cause attached), never a panic, never a partial
//!   result;
//! * every retry, backoff second, and fault event is visible in
//!   `NetworkMetrics`, and recovery shows up in the execution trace.

use skyquery_core::{
    transfer::{open_cross_match, IncomingPartial},
    ExecutionPlan, FederationConfig, FederationError, PlanStep, RetryPolicy,
};
use skyquery_net::{FaultKind, FaultPlan, FaultRule, NetError};
use skyquery_sim::{xmatch_query, FederationBuilder, TestFederation};

const PORTAL: &str = "portal.skyquery.net";
const SDSS: &str = "sdss.skyquery.net";
const TWOMASS: &str = "twomass.skyquery.net";

fn two_archive_sql() -> String {
    xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
        ],
        3.5,
        None,
    )
}

/// A federation plus the clean run's rendered result, for byte-identity
/// assertions after fault injection.
fn fed_with_reference(bodies: usize) -> (TestFederation, String) {
    let fed = FederationBuilder::paper_triple(bodies).build();
    let (clean, _) = fed.portal.submit(&two_archive_sql()).unwrap();
    assert!(clean.row_count() > 0, "reference run must match something");
    fed.net.reset_metrics();
    (fed, clean.to_ascii())
}

/// Asserts a submit under `plan` recovers to the byte-identical result,
/// with the expected fault label tallied and retries recorded.
fn assert_recovers(fed: &TestFederation, reference: &str, label: &str) {
    let (result, trace) = fed
        .portal
        .submit(&two_archive_sql())
        .unwrap_or_else(|e| panic!("{label}: expected recovery, got {e}"));
    assert_eq!(result.to_ascii(), reference, "{label}: result changed");
    let m = fed.net.metrics();
    assert!(m.retry_total().retries > 0, "{label}: no retries recorded");
    assert!(
        m.retry_total().backoff_seconds > 0.0,
        "{label}: no backoff recorded"
    );
    assert!(m.fault_total() > 0, "{label}: no fault events tallied");
    assert!(
        m.faults().iter().any(|((_, _, kind), _)| kind == label),
        "{label}: fault kind missing from tallies: {:?}",
        m.faults()
    );
    assert!(
        trace.events().iter().any(|e| e.action == "recovery"),
        "{label}: trace has no recovery event"
    );
    // A recovered node is not unhealthy.
    assert!(
        fed.portal.unhealthy_hosts().is_empty(),
        "{label}: {:?} left marked unhealthy after recovery",
        fed.portal.unhealthy_hosts()
    );
}

#[test]
fn host_down_recovers_on_second_attempt() {
    let (fed, reference) = fed_with_reference(200);
    fed.net.install_faults(FaultPlan::new().flaky_once(TWOMASS));
    assert_recovers(&fed, &reference, "host-down");
    assert_eq!(
        fed.net.metrics().fault_count(PORTAL, TWOMASS, "host-down"),
        1
    );
}

#[test]
fn server_errors_recover_within_budget() {
    let (fed, reference) = fed_with_reference(200);
    // Default budget is 3 attempts; two 500s leave one good attempt.
    fed.net
        .install_faults(FaultPlan::new().server_errors(TWOMASS, 2));
    assert_recovers(&fed, &reference, "http-500");
    assert_eq!(
        fed.net.metrics().fault_count(PORTAL, TWOMASS, "http-500"),
        2
    );
}

#[test]
fn truncated_body_recovers_within_budget() {
    let (fed, reference) = fed_with_reference(200);
    fed.net
        .install_faults(FaultPlan::new().truncated_bodies(TWOMASS, 1));
    assert_recovers(&fed, &reference, "truncated-body");
}

#[test]
fn garbage_body_recovers_within_budget() {
    let (fed, reference) = fed_with_reference(200);
    fed.net
        .install_faults(FaultPlan::new().garbage_bodies(TWOMASS, 2));
    assert_recovers(&fed, &reference, "garbage-body");
}

#[test]
fn host_down_exhausts_budget_into_node_unhealthy() {
    let (fed, _) = fed_with_reference(200);
    fed.net
        .install_faults(FaultPlan::new().host_down_for(TWOMASS, 1000));
    let err = fed.portal.submit(&two_archive_sql()).unwrap_err();
    match err {
        FederationError::NodeUnhealthy {
            host,
            attempts,
            cause,
        } => {
            assert_eq!(host, TWOMASS);
            assert_eq!(attempts, RetryPolicy::default().max_attempts);
            assert!(
                matches!(
                    *cause,
                    FederationError::Net(NetError::HostUnreachable { .. })
                ),
                "unexpected cause: {cause}"
            );
        }
        other => panic!("expected NodeUnhealthy, got {other}"),
    }
    assert_eq!(fed.portal.unhealthy_hosts(), vec![TWOMASS.to_string()]);
    // Budget of 3 attempts = 2 retries, all on the portal→twomass link.
    assert_eq!(fed.net.metrics().retry(PORTAL, TWOMASS).retries, 2);
}

#[test]
fn server_errors_exhaust_budget_with_http_cause() {
    let (fed, _) = fed_with_reference(200);
    fed.net
        .install_faults(FaultPlan::new().server_errors(TWOMASS, 1000));
    let err = fed.portal.submit(&two_archive_sql()).unwrap_err();
    match err {
        FederationError::NodeUnhealthy { cause, .. } => match *cause {
            FederationError::Http { status, ref host } => {
                assert_eq!(status, 500);
                assert_eq!(host, TWOMASS);
            }
            ref other => panic!("expected an HTTP cause, got {other}"),
        },
        other => panic!("expected NodeUnhealthy, got {other}"),
    }
}

#[test]
fn garbage_bodies_exhaust_budget_with_transport_cause() {
    let (fed, _) = fed_with_reference(200);
    fed.net
        .install_faults(FaultPlan::new().garbage_bodies(TWOMASS, 1000));
    let err = fed.portal.submit(&two_archive_sql()).unwrap_err();
    match err {
        FederationError::NodeUnhealthy { cause, .. } => assert!(
            matches!(*cause, FederationError::Net(NetError::BadFrame { .. })),
            "unexpected cause: {cause}"
        ),
        other => panic!("expected NodeUnhealthy, got {other}"),
    }
}

#[test]
fn truncated_bodies_exhaust_budget_with_decode_cause() {
    let (fed, _) = fed_with_reference(200);
    fed.net
        .install_faults(FaultPlan::new().truncated_bodies(TWOMASS, 1000));
    let err = fed.portal.submit(&two_archive_sql()).unwrap_err();
    match err {
        FederationError::NodeUnhealthy { cause, .. } => assert!(
            matches!(*cause, FederationError::Soap(_)),
            "unexpected cause: {cause}"
        ),
        other => panic!("expected NodeUnhealthy, got {other}"),
    }
}

#[test]
fn added_latency_is_never_an_error() {
    let (fed, reference) = fed_with_reference(200);
    fed.net
        .install_faults(FaultPlan::new().added_latency(TWOMASS, 0.5));
    let (result, _) = fed.portal.submit(&two_archive_sql()).unwrap();
    assert_eq!(result.to_ascii(), reference);
    let m = fed.net.metrics();
    // The free cost model charges nothing, so all simulated time on the
    // link is the injected delay.
    assert!(m.link(PORTAL, TWOMASS).sim_seconds >= 0.5);
    assert!(m.fault_count(PORTAL, TWOMASS, "latency") > 0);
    assert_eq!(
        m.retry_total().retries,
        0,
        "latency must not trigger retries"
    );
}

#[test]
fn single_attempt_policy_surfaces_the_raw_error() {
    let (fed, _) = fed_with_reference(200);
    fed.portal.set_config(FederationConfig {
        retry: RetryPolicy::none(),
        ..fed.portal.config()
    });
    fed.net.install_faults(FaultPlan::new().flaky_once(TWOMASS));
    // One attempt, no retries: the transport error arrives unwrapped.
    let err = fed.portal.submit(&two_archive_sql()).unwrap_err();
    assert!(
        matches!(err, FederationError::Net(NetError::HostUnreachable { .. })),
        "expected the raw transport error, got {err}"
    );
    assert_eq!(fed.net.metrics().retry_total().retries, 0);
}

#[test]
fn mid_chain_fault_recovers_on_the_inner_link() {
    let (fed, reference) = fed_with_reference(200);
    // Only the CrossMatch hop to TWOMASS fails (performance queries pass),
    // so the retry happens on the SDSS→TWOMASS link, not at the portal.
    fed.net.install_faults(
        FaultPlan::new().rule(
            FaultRule::new(FaultKind::HostDown)
                .host(TWOMASS)
                .action("CrossMatch")
                .times(1),
        ),
    );
    let (result, trace) = fed.portal.submit(&two_archive_sql()).unwrap();
    assert_eq!(result.to_ascii(), reference);
    let m = fed.net.metrics();
    assert_eq!(m.retry(SDSS, TWOMASS).retries, 1);
    assert_eq!(m.retry(PORTAL, SDSS).retries, 0);
    assert_eq!(m.fault_count(SDSS, TWOMASS, "host-down"), 1);
    // The portal still sees chain-wide recovery in its trace.
    assert!(trace.events().iter().any(|e| e.action == "recovery"));
}

#[test]
fn mid_chain_exhaustion_degrades_to_a_fault_upstream() {
    let (fed, _) = fed_with_reference(200);
    fed.net.install_faults(
        FaultPlan::new().rule(
            FaultRule::new(FaultKind::HostDown)
                .host(TWOMASS)
                .action("CrossMatch"),
        ),
    );
    let err = fed.portal.submit(&two_archive_sql()).unwrap_err();
    // SDSS exhausted its budget against TWOMASS and reported a SOAP
    // fault; at the portal that is a deterministic server answer, so the
    // chain is NOT re-retried end to end (no retry cascade).
    match &err {
        FederationError::Fault(f) => {
            assert!(f.message.contains("unhealthy"), "{}", f.message);
            assert!(f.message.contains(TWOMASS), "{}", f.message);
        }
        other => panic!("expected a SOAP fault upstream, got {other}"),
    }
    let m = fed.net.metrics();
    assert_eq!(
        m.retry(SDSS, TWOMASS).retries,
        u64::from(RetryPolicy::default().max_attempts) - 1
    );
    assert_eq!(m.retry(PORTAL, SDSS).retries, 0, "retry cascade detected");
}

#[test]
fn commit_failure_with_successful_abort_reports_commit_error() {
    let (fed, _) = fed_with_reference(200);
    fed.net.install_faults(
        FaultPlan::new().rule(
            FaultRule::new(FaultKind::ServerError)
                .host(TWOMASS)
                .action("CommitReceive"),
        ),
    );
    let err = fed
        .portal
        .transfer_table(
            "SDSS",
            "SELECT O.object_id FROM SDSS:Photo_Object O",
            "TWOMASS",
            "imported",
        )
        .unwrap_err();
    // The commit error surfaces; the abort worked, so no AbortFailed.
    assert!(
        matches!(err, FederationError::NodeUnhealthy { .. }),
        "expected the commit failure, got {err}"
    );
    let m = fed.net.metrics();
    assert_eq!(m.fault_count(PORTAL, TWOMASS, "exchange-abort"), 1);
    assert_eq!(m.fault_count(PORTAL, TWOMASS, "exchange-abort-failed"), 0);
    // The abort cleaned the participant: nothing published, nothing staged.
    let node = fed.node("TWOMASS").unwrap();
    assert!(node.pending_exchange_txns().is_empty());
    assert!(!node.with_db(|db| db.has_table("imported")));
}

#[test]
fn commit_and_abort_both_failing_reports_abort_failed() {
    let (fed, _) = fed_with_reference(200);
    fed.net.install_faults(
        FaultPlan::new()
            .rule(
                FaultRule::new(FaultKind::ServerError)
                    .host(TWOMASS)
                    .action("CommitReceive"),
            )
            .rule(
                FaultRule::new(FaultKind::ServerError)
                    .host(TWOMASS)
                    .action("AbortReceive"),
            ),
    );
    let err = fed
        .portal
        .transfer_table(
            "SDSS",
            "SELECT O.object_id FROM SDSS:Photo_Object O",
            "TWOMASS",
            "imported",
        )
        .unwrap_err();
    match &err {
        FederationError::AbortFailed {
            host,
            commit,
            abort,
            ..
        } => {
            assert_eq!(host, TWOMASS);
            assert!(commit.to_string().contains("unhealthy"), "{commit}");
            assert!(abort.to_string().contains("unhealthy"), "{abort}");
        }
        other => panic!("expected AbortFailed, got {other}"),
    }
    // The undecided transaction is reported, not silently dropped.
    assert!(err.to_string().contains("undecided"), "{err}");
    assert_eq!(
        fed.net
            .metrics()
            .fault_count(PORTAL, TWOMASS, "exchange-abort-failed"),
        1
    );
    // The participant really is left holding the staging table — exactly
    // what AbortFailed warns about.
    let node = fed.node("TWOMASS").unwrap();
    assert_eq!(node.pending_exchange_txns().len(), 1);
}

/// A single-step plan with a tiny message budget against the SDSS node,
/// for driving the chunk-stream lifecycle by hand.
fn tiny_budget_plan(fed: &TestFederation) -> ExecutionPlan {
    let node = fed.node("SDSS").unwrap();
    ExecutionPlan {
        threshold: 3.0,
        region: None,
        steps: vec![PlanStep {
            alias: "O".into(),
            archive: "SDSS".into(),
            table: "Photo_Object".into(),
            url: node.url(),
            dropout: false,
            sigma_arcsec: 0.1,
            local_sql: None,
            carried: vec!["object_id".into()],
            residual_sql: vec![],
            count_estimate: None,
            shards: vec![],
        }],
        select: vec![("O.object_id".into(), None)],
        order_by: vec![],
        limit: None,
        max_message_bytes: 3_000,
        chunking: true,
        xmatch_workers: 1,
        zone_height_deg: skyquery_core::plan::DEFAULT_ZONE_HEIGHT_DEG,
        zone_chunking: true,
        kernel: Default::default(),
        retry: Default::default(),
        lease_ttl_s: skyquery_core::plan::DEFAULT_LEASE_TTL_S,
    }
}

#[test]
fn dropped_chunk_stream_aborts_the_sender_session() {
    let fed = FederationBuilder::paper_triple(400).build();
    let node = fed.node("SDSS").unwrap();
    let plan = tiny_budget_plan(&fed);
    let (incoming, _) = open_cross_match(&fed.net, "tester", &node.url(), &plan, 0).unwrap();
    let mut stream = match incoming {
        IncomingPartial::Chunked(s) => s,
        IncomingPartial::Inline(_) => panic!("tiny budget must force chunking"),
    };
    assert!(stream.manifest().total_chunks() > 1);
    assert_eq!(node.open_transfers().len(), 1, "sender session open");
    // Pull one chunk, then walk away mid-transfer.
    stream.fetch_next().unwrap().expect("first chunk");
    drop(stream);
    // Drop sent AbortTransfer: the sender session is freed, not leaked.
    assert!(node.open_transfers().is_empty(), "sender session leaked");
    assert_eq!(
        fed.net
            .metrics()
            .fault_count("tester", SDSS, "transfer-abort"),
        1
    );
}

#[test]
fn explicit_abort_is_observable_and_idempotent() {
    let fed = FederationBuilder::paper_triple(400).build();
    let node = fed.node("SDSS").unwrap();
    let plan = tiny_budget_plan(&fed);
    let (incoming, _) = open_cross_match(&fed.net, "tester", &node.url(), &plan, 0).unwrap();
    let mut stream = match incoming {
        IncomingPartial::Chunked(s) => s,
        IncomingPartial::Inline(_) => panic!("tiny budget must force chunking"),
    };
    stream.abort().unwrap();
    assert!(node.open_transfers().is_empty());
    // Idempotent: aborting again (and dropping after) does nothing more.
    stream.abort().unwrap();
    drop(stream);
    assert_eq!(
        fed.net
            .metrics()
            .fault_count("tester", SDSS, "transfer-abort"),
        1
    );
}

#[test]
fn fully_drained_stream_sends_no_abort() {
    let fed = FederationBuilder::paper_triple(400).build();
    let node = fed.node("SDSS").unwrap();
    let plan = tiny_budget_plan(&fed);
    let (incoming, _) = open_cross_match(&fed.net, "tester", &node.url(), &plan, 0).unwrap();
    let stream = match incoming {
        IncomingPartial::Chunked(s) => s,
        IncomingPartial::Inline(_) => panic!("tiny budget must force chunking"),
    };
    let set = stream.collect_set().unwrap();
    assert!(set.tuples.len() > 0);
    // The sender freed the transfer on the last chunk; no abort traffic.
    assert!(node.open_transfers().is_empty());
    assert_eq!(
        fed.net
            .metrics()
            .fault_count("tester", SDSS, "transfer-abort"),
        0
    );
}
