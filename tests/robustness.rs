//! Robustness: hostile/broken peers and concurrent clients. A federation
//! of autonomous archives must survive nodes that answer garbage, and a
//! Portal must serve many astronomers at once.

use std::sync::Arc;

use skyquery_core::{FederationError, Portal};
use skyquery_net::{Endpoint, HttpRequest, HttpResponse, SimNetwork, Url};
use skyquery_sim::{xmatch_query, FederationBuilder};

/// An endpoint that answers every request with the given body.
struct CannedEndpoint(&'static str);

impl Endpoint for CannedEndpoint {
    fn handle(&self, _net: &SimNetwork, _req: HttpRequest) -> HttpResponse {
        HttpResponse::ok(self.0)
    }
}

#[test]
fn node_answering_garbage_xml_yields_protocol_error() {
    let fed = FederationBuilder::paper_triple(150).build();
    // Replace a registered node with one speaking broken XML.
    fed.net.bind(
        "twomass.skyquery.net",
        Arc::new(CannedEndpoint("<<<this is not xml")),
    );
    let err = fed
        .portal
        .submit(&xmatch_query(
            &[
                ("SDSS", "Photo_Object", "O"),
                ("TWOMASS", "Photo_Primary", "T"),
            ],
            3.5,
            None,
        ))
        .unwrap_err();
    // A garbage reply is indistinguishable from wire damage, so it is
    // retried; the canned endpoint keeps answering garbage, the budget
    // runs out, and the SOAP decode failure surfaces as the cause.
    match err {
        FederationError::NodeUnhealthy { cause, .. } => match *cause {
            FederationError::Soap(_) => {}
            other => panic!("expected a SOAP-layer cause, got {other}"),
        },
        other => panic!("expected NodeUnhealthy, got {other}"),
    }
}

#[test]
fn node_answering_wrong_message_type_yields_protocol_error() {
    let fed = FederationBuilder::paper_triple(150).build();
    // Valid SOAP, but a call where a response belongs.
    let canned = skyquery_soap::RpcCall::new("Query").to_xml();
    let leaked: &'static str = Box::leak(canned.into_boxed_str());
    fed.net
        .bind("twomass.skyquery.net", Arc::new(CannedEndpoint(leaked)));
    let err = fed
        .portal
        .submit(&xmatch_query(
            &[
                ("SDSS", "Photo_Object", "O"),
                ("TWOMASS", "Photo_Primary", "T"),
            ],
            3.5,
            None,
        ))
        .unwrap_err();
    assert!(
        err.to_string().contains("neither a Response nor a Fault"),
        "{err}"
    );
}

#[test]
fn registration_of_a_garbage_endpoint_fails_without_cataloging() {
    let net = SimNetwork::new();
    let portal = Portal::start(&net, "portal", skyquery_core::FederationConfig::default());
    net.bind("rogue", Arc::new(CannedEndpoint("total nonsense")));
    assert!(portal.register_node(&Url::new("rogue", "/soap")).is_err());
    assert!(portal.archives().is_empty());
}

#[test]
fn response_missing_required_results_is_an_error() {
    let fed = FederationBuilder::paper_triple(150).build();
    // A well-formed QueryResponse that lacks the `count` result.
    let canned = skyquery_soap::RpcResponse::new("Query").to_xml();
    let leaked: &'static str = Box::leak(canned.into_boxed_str());
    fed.net
        .bind("sdss.skyquery.net", Arc::new(CannedEndpoint(leaked)));
    let err = fed
        .portal
        .submit(&xmatch_query(
            &[
                ("SDSS", "Photo_Object", "O"),
                ("TWOMASS", "Photo_Primary", "T"),
            ],
            3.5,
            None,
        ))
        .unwrap_err();
    assert!(err.to_string().contains("missing"), "{err}");
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let fed = FederationBuilder::paper_triple(500).build();
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
        ],
        3.5,
        None,
    );
    // Reference answer.
    let (reference, _) = fed.portal.submit(&sql).unwrap();
    let ref_rows = {
        let mut v: Vec<String> = reference.rows.iter().map(|r| format!("{r:?}")).collect();
        v.sort();
        v
    };
    // 8 clients × 3 queries each, all in flight together.
    crossbeam::thread::scope(|scope| {
        for c in 0..8 {
            let portal = fed.portal.clone();
            let sql = sql.clone();
            let ref_rows = ref_rows.clone();
            scope.spawn(move |_| {
                for _ in 0..3 {
                    let (result, _) = portal.submit(&sql).unwrap();
                    let mut rows: Vec<String> =
                        result.rows.iter().map(|r| format!("{r:?}")).collect();
                    rows.sort();
                    assert_eq!(rows, ref_rows, "client {c} saw a different answer");
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn concurrent_queries_and_transfers_coexist() {
    let fed = FederationBuilder::paper_triple(300).build();
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("FIRST", "Primary_Object", "P"),
        ],
        3.5,
        None,
    );
    crossbeam::thread::scope(|scope| {
        let portal = fed.portal.clone();
        let q = sql.clone();
        scope.spawn(move |_| {
            for _ in 0..5 {
                portal.submit(&q).unwrap();
            }
        });
        let portal = fed.portal.clone();
        scope.spawn(move |_| {
            for i in 0..3 {
                portal
                    .transfer_table(
                        "SDSS",
                        "SELECT O.object_id FROM SDSS:Photo_Object O WHERE O.i_flux > 500",
                        "TWOMASS",
                        &format!("copy_{i}"),
                    )
                    .unwrap();
            }
        });
    })
    .unwrap();
    let node = fed.node("TWOMASS").unwrap();
    for i in 0..3 {
        assert!(node.with_db(|db| db.has_table(&format!("copy_{i}"))));
    }
}
