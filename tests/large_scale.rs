//! Large-scale confidence runs. These push the federation well past the
//! sizes the fast suite uses; they run in seconds in release mode but
//! tens of seconds in debug, so they are `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release --test large_scale -- --ignored
//! ```

use skyquery_sim::{xmatch_query, FederationBuilder};

#[test]
#[ignore = "large-scale run; invoke with --ignored (ideally --release)"]
fn twenty_thousand_bodies_end_to_end() {
    let fed = FederationBuilder::paper_triple(20_000).build();
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        3.5,
        None,
    );
    let (result, trace) = fed.portal.submit(&sql).unwrap();
    // FIRST detects ~15%, and triple coincidences survive at high rate
    // with these σ's: expect thousands of matches.
    assert!(
        result.row_count() > 1500,
        "only {} matches at 20k bodies",
        result.row_count()
    );
    // Pruning keeps the intermediate sets at the FIRST-sized scale.
    let max_intermediate = trace
        .events()
        .iter()
        .filter(|e| e.action == "cross match step")
        .filter_map(|e| {
            e.detail
                .rsplit_once("tuples out ")
                .and_then(|(_, n)| n.parse::<usize>().ok())
        })
        .max()
        .unwrap();
    assert!(
        max_intermediate < 6000,
        "intermediate set exploded: {max_intermediate}"
    );
}

#[test]
#[ignore = "large-scale run; invoke with --ignored (ideally --release)"]
fn chunking_at_scale_matches_unchunked() {
    let fed = FederationBuilder::paper_triple(10_000).build();
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
        ],
        3.5,
        None,
    );
    let (reference, _) = fed.portal.submit(&sql).unwrap();
    fed.portal.set_config(skyquery_core::FederationConfig {
        max_message_bytes: 100_000,
        ..skyquery_core::FederationConfig::default()
    });
    let (chunked, _) = fed.portal.submit(&sql).unwrap();
    assert_eq!(reference.row_count(), chunked.row_count());
}

#[test]
#[ignore = "large-scale run; invoke with --ignored (ideally --release)"]
fn ten_archive_federation() {
    let mut builder = FederationBuilder::new().catalog(skyquery_sim::CatalogParams {
        count: 2_000,
        ..skyquery_sim::CatalogParams::default()
    });
    for i in 0..10 {
        builder = builder.survey(skyquery_sim::SurveyParams {
            name: format!("S{i}"),
            sigma_arcsec: 0.2 + 0.1 * (i % 3) as f64,
            detection_fraction: 0.85,
            false_detections_per_1000: 2,
            flux_scale: 1.0,
            table: "Objects".into(),
            htm_depth: 13,
            seed: 7000 + i,
        });
    }
    let fed = builder.build();
    let names: Vec<String> = (0..10).map(|i| format!("S{i}")).collect();
    let aliases: Vec<String> = (0..10).map(|i| format!("A{i}")).collect();
    let refs: Vec<(&str, &str, &str)> = names
        .iter()
        .zip(&aliases)
        .map(|(n, a)| (n.as_str(), "Objects", a.as_str()))
        .collect();
    // A 10-tuple's χ²_min has ~2(N−1)=18 degrees of freedom, so the
    // threshold must sit well above √18 ≈ 4.2σ for true matches to pass.
    let (result, _) = fed.portal.submit(&xmatch_query(&refs, 8.0, None)).unwrap();
    // ~0.85^10 ≈ 20% of bodies detected everywhere.
    assert!(
        result.row_count() > 200,
        "only {} ten-way matches",
        result.row_count()
    );
    assert_eq!(result.columns.len(), 10);
}
