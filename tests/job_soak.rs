//! Multi-tenant soak for the job service: hundreds of simulated clients
//! with skewed per-tenant load, mixed priorities and quota classes, over
//! a faulty network — submitted in bursts while the scheduler pumps.
//!
//! The invariants under test:
//!
//! * every accepted job reaches a terminal state — nothing wedges, even
//!   with step outages injected mid-chain and owners cancelling jobs at
//!   random;
//! * admission stays fair: among tenants that experienced sustained
//!   contention, no one is starved, and the spread of weight-normalized
//!   contended-win shares is bounded;
//! * the books balance: accepted = succeeded + failed + cancelled +
//!   expired, with rejections tallied separately;
//! * after the storm, every lease in the system — job records, held
//!   results, pagination sessions, node checkpoints, transfers, exchange
//!   transactions — drains back to zero.
//!
//! Extra schedules via `SKYQUERY_SOAK_SEEDS=1,2,3` (comma-separated); a
//! no-op when unset, so CI can widen the sweep without a code change.

use skyquery_core::{ChainMode, FederationConfig, FederationError};
use skyquery_jobs::{JobClient, JobService, JobServiceConfig, QuotaClass};
use skyquery_net::{FaultKind, FaultPlan, FaultRule};
use skyquery_sim::FederationBuilder;

const HOSTS: [&str; 3] = [
    "sdss.skyquery.net",
    "twomass.skyquery.net",
    "first.skyquery.net",
];

/// Ten tenants with skewed submission frequency (earlier tenants submit
/// more) and mixed quota classes.
const TENANTS: [(&str, QuotaClass, u64); 10] = [
    ("argus", QuotaClass::Premium, 8),
    ("brahe", QuotaClass::Standard, 6),
    ("cassini", QuotaClass::Standard, 5),
    ("draper", QuotaClass::Free, 4),
    ("eddington", QuotaClass::Premium, 3),
    ("flamsteed", QuotaClass::Free, 3),
    ("galle", QuotaClass::Standard, 2),
    ("halley", QuotaClass::Free, 2),
    ("ixion", QuotaClass::Standard, 1),
    ("janssen", QuotaClass::Free, 1),
];

/// Query templates: different radii and orders, all fully ordered so
/// results are deterministic.
const QUERIES: [&str; 4] = [
    "SELECT O.object_id, T.object_id, P.object_id \
     FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
     WHERE XMATCH(O, T, P) < 3.5 \
     ORDER BY O.object_id, T.object_id, P.object_id",
    "SELECT O.object_id, T.object_id, P.object_id \
     FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
     WHERE XMATCH(O, T, P) < 2.0 \
     ORDER BY O.object_id, T.object_id, P.object_id",
    "SELECT O.object_id, T.object_id \
     FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T \
     WHERE XMATCH(O, T) < 3.0 \
     ORDER BY O.object_id, T.object_id",
    "SELECT T.object_id, P.object_id \
     FROM TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
     WHERE XMATCH(T, P) < 4.0 \
     ORDER BY T.object_id, P.object_id",
];

fn step_outage(host: &str, times: u32) -> FaultPlan {
    FaultPlan::new().rule(
        FaultRule::new(FaultKind::HostDown)
            .host(host)
            .action("ExecuteStep")
            .times(times),
    )
}

fn soak(seed: u64) {
    let fed = FederationBuilder::paper_triple(120).build();
    fed.portal.set_config(FederationConfig {
        chain_mode: ChainMode::Checkpointed,
        ..fed.portal.config()
    });
    let config = JobServiceConfig {
        max_running: 3,
        tenant_max_running: 2,
        tenant_max_queued: 24,
        max_queued: 160,
        // Short result TTL so early winners' unfetched results expire
        // *during* the soak, exercising the Succeeded → Expired decay
        // under load.
        result_ttl_s: 6.0,
        record_ttl_s: 10_000.0,
    };
    let svc = JobService::start(&fed.net, "jobs.skyquery.net", fed.portal.clone(), config);
    let cli = JobClient::new(&fed.net, "soak-driver", svc.url());

    // xorshift64* — a deterministic schedule without a rand dep.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };

    // Skewed client population: each tenant appears in the draw pool in
    // proportion to its submission frequency.
    let pool: Vec<usize> = TENANTS
        .iter()
        .enumerate()
        .flat_map(|(i, (_, _, freq))| std::iter::repeat_n(i, *freq as usize))
        .collect();

    let target_jobs = 520usize;
    let mut accepted: Vec<u64> = Vec::new();
    let mut rejected = 0u64;
    let mut cancel_attempts = 0u64;
    let mut submitted = 0usize;
    while submitted < target_jobs {
        // A burst of submissions from random tenants.
        let burst = 4 + (next() % 8) as usize;
        for _ in 0..burst.min(target_jobs - submitted) {
            let (tenant, class, _) = TENANTS[pool[(next() % pool.len() as u64) as usize]];
            let sql = QUERIES[(next() % QUERIES.len() as u64) as usize];
            let priority = (next() % 11) as i64 - 5;
            match cli.submit_with(tenant, sql, priority, class, None) {
                Ok((id, _)) => accepted.push(id),
                Err(FederationError::Fault(f)) => {
                    assert_eq!(f.code, "Client", "rejection must be a Client fault");
                    rejected += 1;
                }
                Err(other) => panic!("seed {seed:#x}: unexpected submit error {other}"),
            }
            submitted += 1;
        }
        // Occasionally a tenant cancels one of its jobs, whatever state
        // it is in.
        if next() % 4 == 0 && !accepted.is_empty() {
            let id = accepted[(next() % accepted.len() as u64) as usize];
            cancel_attempts += 1;
            // Both answers are legal (the job may already be terminal);
            // the call must never error while the record lease lives.
            let _ = cli.cancel(id).unwrap();
        }
        // Fresh trouble: a step outage at a random archive — usually
        // shallow enough for retries and re-planning to ride out,
        // occasionally deep enough to exhaust a job's recovery budget.
        if next() % 3 == 0 {
            let host = HOSTS[(next() % HOSTS.len() as u64) as usize];
            fed.net
                .install_faults(step_outage(host, (next() % 24) as u32));
        }
        // Let the scheduler work through part of the backlog while the
        // clock moves — waits accumulate, early results expire.
        fed.net.advance_clock(0.5);
        for _ in 0..9 + (next() % 6) {
            svc.pump();
        }
    }

    // Storm over: clear the fault schedule and drain the backlog.
    fed.net.install_faults(FaultPlan::new());
    let quanta = svc.run_until_idle(1_000_000);
    assert!(
        quanta < 1_000_000,
        "seed {seed:#x}: scheduler failed to quiesce"
    );

    // Every accepted job reached a terminal state.
    assert!(
        accepted.len() >= 300,
        "seed {seed:#x}: too few accepted jobs"
    );
    for (id, job_state) in svc.job_states() {
        assert!(
            job_state.is_terminal(),
            "seed {seed:#x}: job {id} wedged in {job_state}"
        );
    }
    let m = fed.net.metrics();
    let totals = m.job_total();
    assert_eq!(totals.submitted, accepted.len() as u64, "seed {seed:#x}");
    assert_eq!(totals.rejected, rejected, "seed {seed:#x}");
    assert_eq!(
        totals.terminal(),
        accepted.len() as u64,
        "seed {seed:#x}: accepted jobs must balance terminal outcomes \
         ({} succeeded, {} failed, {} cancelled, {} expired)",
        totals.succeeded,
        totals.failed,
        totals.cancelled,
        totals.expired
    );
    assert!(
        totals.succeeded > 0,
        "seed {seed:#x}: nothing ever succeeded"
    );
    let _ = cancel_attempts;

    // Fairness: among tenants that saw sustained contention, nobody was
    // starved, and weight-normalized contended-win shares stay within a
    // bounded spread.
    let mut normalized: Vec<(String, f64)> = Vec::new();
    for (tenant, class, _) in TENANTS {
        let s = m.job_stats(tenant);
        if s.contended_rounds >= 30 {
            assert!(
                s.admitted_contended > 0,
                "seed {seed:#x}: {tenant} lost all {} contended rounds",
                s.contended_rounds
            );
            let share = s.contended_share().unwrap();
            normalized.push((tenant.to_string(), share / class.weight()));
        }
    }
    assert!(
        normalized.len() >= 2,
        "seed {seed:#x}: the soak never produced sustained contention"
    );
    let max = normalized.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let min = normalized.iter().map(|(_, v)| *v).fold(f64::MAX, f64::min);
    assert!(
        max / min <= 10.0,
        "seed {seed:#x}: weight-normalized contended shares spread too far: {normalized:?}"
    );

    // Drain: fetch a few surviving results, then let every TTL lapse.
    let mut fetched = 0;
    for (id, job_state) in svc.job_states() {
        if job_state == skyquery_jobs::JobState::Succeeded && fetched < 5 {
            cli.fetch(id).unwrap();
            fetched += 1;
        }
    }
    fed.net
        .advance_clock(config.result_ttl_s + config.record_ttl_s + 1.0);
    svc.sweep_leases();
    assert_eq!(
        svc.active_leases(),
        0,
        "seed {seed:#x}: job service leaked leases"
    );
    assert!(
        svc.job_states().is_empty(),
        "seed {seed:#x}: job records survived their TTL"
    );
    fed.net.advance_clock(fed.portal.config().lease_ttl_s + 1.0);
    for node in &fed.nodes {
        node.sweep_leases(&fed.net);
        let name = &node.info().name;
        assert!(
            node.checkpoints().is_empty(),
            "seed {seed:#x}: {name} leaked checkpoints"
        );
        assert!(
            node.open_transfers().is_empty(),
            "seed {seed:#x}: {name} leaked transfers"
        );
        assert!(
            node.pending_exchange_txns().is_empty(),
            "seed {seed:#x}: {name} leaked exchange txns"
        );
        assert_eq!(
            node.active_leases(),
            0,
            "seed {seed:#x}: {name} holds leases"
        );
    }
}

#[test]
fn multi_tenant_soak_seed_a() {
    soak(0x0000_0B5E_55ED_5EED);
}

#[test]
fn multi_tenant_soak_seed_b() {
    soak(0x0000_7E4A_47_BEEF);
}

/// Extra schedules via `SKYQUERY_SOAK_SEEDS=1,2,3`.
#[test]
fn multi_tenant_soak_env_seeds() {
    let Ok(seeds) = std::env::var("SKYQUERY_SOAK_SEEDS") else {
        return;
    };
    for s in seeds.split(',').filter(|s| !s.trim().is_empty()) {
        let seed: u64 = s
            .trim()
            .parse()
            .expect("SKYQUERY_SOAK_SEEDS entries are u64");
        soak(seed);
    }
}
